//! Regenerates the content of **Fig. 3** of the paper — the extended
//! framework for relaxed targets with confined benign races — as a
//! table of DRF-guarantee checks (Lem. 16 / Thm. 15):
//!
//! * the TTAS lock (Fig. 10) and the Treiber stack (§2.4) with DRF
//!   clients: premises hold and `P_tso ⊑′ P_sc`;
//! * negative controls: unconfined racy clients (the SB litmus), where
//!   the premises fail and TSO exhibits non-SC behaviour; and an
//!   intentionally broken lock (no-op acquire), where
//!   the object no longer refines its specification.
//!
//! Run with: `cargo run -p ccc-bench --bin fig3_extended`

use ccc_core::mem::{GlobalEnv, Val};
use ccc_core::refine::ExploreCfg;
use ccc_machine::{AsmFunc, AsmModule, Instr, MemArg, Operand, Reg};
use ccc_sync::drf_guarantee::{check_drf_guarantee, SyncObject};
use ccc_sync::lock::{lock_impl, lock_spec};
use ccc_sync::stack::stack_object;
use std::time::Instant;

fn lock_object() -> SyncObject {
    let (spec, spec_ge) = lock_spec("L");
    let (impl_asm, impl_ge) = lock_impl("L");
    SyncObject {
        spec,
        spec_ge,
        impl_asm,
        impl_ge,
    }
}

/// A lock whose acquire is a no-op: mutual exclusion is gone, so the
/// TSO program exhibits lost updates (both clients print 0) that the
/// atomic specification cannot — the refinement fails.
///
/// (A lock that merely *deadlocks* — e.g. a release writing the wrong
/// value — is NOT caught by `⊑′`: the paper's refinement is explicitly
/// termination-insensitive, §7.3.)
fn broken_lock_object() -> SyncObject {
    let mut obj = lock_object();
    obj.impl_asm.funcs.insert(
        "lock".into(),
        AsmFunc {
            code: vec![Instr::Mov(Reg::Eax, Operand::Imm(0)), Instr::Ret],
            frame_slots: 0,
            arity: 0,
        },
    );
    obj
}

fn counter_clients() -> (AsmModule, GlobalEnv, Vec<String>) {
    let client = AsmFunc {
        code: vec![
            Instr::Call("lock".into(), 0),
            Instr::Load(Reg::Ecx, MemArg::Global("x".into(), 0)),
            Instr::Mov(Reg::Ebx, Operand::Reg(Reg::Ecx)),
            Instr::Add(Reg::Ebx, Operand::Imm(1)),
            Instr::Store(MemArg::Global("x".into(), 0), Operand::Reg(Reg::Ebx)),
            Instr::Call("unlock".into(), 0),
            Instr::Print(Reg::Ecx),
            Instr::Mov(Reg::Eax, Operand::Imm(0)),
            Instr::Ret,
        ],
        frame_slots: 0,
        arity: 0,
    };
    let mut ge = GlobalEnv::new();
    ge.define("x", Val::Int(0));
    (
        AsmModule::new([("t1", client.clone()), ("t2", client)]),
        ge,
        vec!["t1".into(), "t2".into()],
    )
}

fn stack_clients() -> (AsmModule, GlobalEnv, Vec<String>) {
    let client = |v: i64| AsmFunc {
        code: vec![
            Instr::Mov(Reg::Edi, Operand::Imm(v)),
            Instr::Call("push".into(), 1),
            Instr::Call("pop".into(), 0),
            Instr::Print(Reg::Eax),
            Instr::Mov(Reg::Eax, Operand::Imm(0)),
            Instr::Ret,
        ],
        frame_slots: 0,
        arity: 0,
    };
    (
        AsmModule::new([("t1", client(1)), ("t2", client(2))]),
        GlobalEnv::new(),
        vec!["t1".into(), "t2".into()],
    )
}

fn sb_clients() -> (AsmModule, GlobalEnv, Vec<String>) {
    let mk = |mine: &str, theirs: &str| AsmFunc {
        code: vec![
            Instr::Store(MemArg::Global(mine.into(), 0), Operand::Imm(1)),
            Instr::Load(Reg::Ecx, MemArg::Global(theirs.into(), 0)),
            Instr::Print(Reg::Ecx),
            Instr::Mov(Reg::Eax, Operand::Imm(0)),
            Instr::Ret,
        ],
        frame_slots: 0,
        arity: 0,
    };
    let mut ge = GlobalEnv::new();
    ge.define("sbx", Val::Int(0));
    ge.define("sby", Val::Int(0));
    (
        AsmModule::new([("t1", mk("sbx", "sby")), ("t2", mk("sby", "sbx"))]),
        ge,
        vec!["t1".into(), "t2".into()],
    )
}

fn main() {
    let cfg = ExploreCfg {
        fuel: 300,
        max_states: 4_000_000,
        ..Default::default()
    };
    type Row = (
        &'static str,
        AsmModule,
        GlobalEnv,
        Vec<String>,
        SyncObject,
        bool,
    );
    let rows: Vec<Row> = {
        let (cc, cge, ce) = counter_clients();
        let (sc, sge, se) = stack_clients();
        let (bb, bge, be) = sb_clients();
        let (cc2, cge2, ce2) = counter_clients();
        vec![
            (
                "TTAS lock + counter clients",
                cc,
                cge,
                ce,
                lock_object(),
                true,
            ),
            (
                "Treiber stack + push/pop clients",
                sc,
                sge,
                se,
                stack_object(),
                true,
            ),
            (
                "SB litmus (unconfined races)",
                bb,
                bge,
                be,
                lock_object(),
                false,
            ),
            (
                "broken lock (no-op acquire)",
                cc2,
                cge2,
                ce2,
                broken_lock_object(),
                false,
            ),
        ]
    };

    println!("Fig. 3 — extended framework: the strengthened DRF guarantee (Lem. 16)\n");
    println!(
        "{:<34} {:>8} {:>8} {:>10} {:>8} {:>8} {:>8}",
        "configuration", "Safe(Psc)", "DRF(Psc)", "Ptso⊑′Psc", "scTr", "tsoTr", "time(s)"
    );
    println!("{}", "-".repeat(92));
    for (name, clients, ge, entries, obj, expect) in rows {
        let start = Instant::now();
        let r = check_drf_guarantee(&clients, &ge, &entries, &obj, &cfg).expect("check");
        println!(
            "{:<34} {:>8} {:>8} {:>10} {:>8} {:>8} {:>8.2}",
            name,
            r.safe_sc,
            r.drf_sc,
            r.refines,
            r.sc_traces,
            r.tso_traces,
            start.elapsed().as_secs_f64()
        );
        assert_eq!(
            r.holds(),
            expect,
            "{name}: expected holds={expect}, got {r:?}"
        );
    }
    println!("{}", "-".repeat(92));
    println!(
        "\nShape (as in the paper): confined benign races refine their race-free\n\
         abstractions; unconfined races and broken objects are rejected."
    );
}
