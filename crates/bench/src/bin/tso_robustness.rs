//! Static TSO-robustness analysis vs exhaustive trace exploration.
//!
//! For every litmus program in the fixed corpus, two ways to answer
//! "are the TSO behaviours SC-equal?":
//!
//! * **static** — the Shasha–Snir critical-cycle analysis of
//!   `ccc_analysis::tso_robust::analyze`, straight off the program
//!   text;
//! * **dynamic** — collect the full trace sets under both `X86Sc` and
//!   `X86Tso` with `collect_traces` and compare with `trace_equiv`.
//!
//! The two verdicts must agree on every corpus program (on this corpus
//! the may-analysis is exact), and the point of the table is the cost
//! gap: the analysis touches each instruction a handful of times while
//! the exploration enumerates every interleaving *and* every buffer
//! flush point.
//!
//! Also reported: the fences `insert_fences` places to repair the
//! non-robust programs, re-checked dynamically.
//!
//! Run with: `cargo run --release -p ccc-bench --bin tso_robustness`
//! (`--smoke` restricts to the spin-free tests for CI).

use ccc_analysis::tso_robust::{analyze, insert_fences};
use ccc_core::lang::Prog;
use ccc_core::refine::{collect_traces, trace_equiv, ExploreCfg, Preemptive, TraceSet};
use ccc_core::world::Loaded;
use ccc_machine::{litmus, Litmus, X86Sc, X86Tso};
use std::time::{Duration, Instant};

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

fn explore(l: &Litmus, modified: Option<&ccc_machine::AsmModule>, tso: bool) -> TraceSet {
    let cfg = ExploreCfg {
        fuel: 200,
        max_states: 4_000_000,
        ..Default::default()
    };
    let module = modified.unwrap_or(&l.module).clone();
    let ts = if tso {
        let p = Loaded::new(Prog::new(
            X86Tso,
            vec![(module, l.ge.clone())],
            l.entries.clone(),
        ))
        .expect("links");
        collect_traces(&Preemptive(&p), &cfg).expect("traces")
    } else {
        let p = Loaded::new(Prog::new(
            X86Sc,
            vec![(module, l.ge.clone())],
            l.entries.clone(),
        ))
        .expect("links");
        collect_traces(&Preemptive(&p), &cfg).expect("traces")
    };
    assert!(!ts.truncated, "{}: exploration truncated", l.name);
    ts
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // The observer threads of R and 2+2W spin, which makes their state
    // spaces by far the largest; --smoke keeps CI fast without them.
    let corpus: Vec<Litmus> = litmus::corpus()
        .into_iter()
        .filter(|l| !smoke || !matches!(l.name, "R" | "2+2W"))
        .collect();

    println!("TSO robustness: static critical-cycle analysis vs exhaustive exploration");
    println!(
        "({} litmus programs{})\n",
        corpus.len(),
        if smoke { ", smoke subset" } else { "" }
    );
    println!(
        "{:<10} {:<13} {:>5} {:>7} {:>10} | {:>9} {:>11} | {:>9}",
        "test", "static", "pairs", "cycles", "t_static", "tso_exp", "t_explore", "speedup"
    );
    println!("{}", "-".repeat(84));

    let (mut t_stat_tot, mut t_dyn_tot) = (Duration::ZERO, Duration::ZERO);
    let mut fences_needed = 0usize;
    for l in &corpus {
        let t = Instant::now();
        let report = analyze(&l.module, &l.entries);
        let t_static = t.elapsed();

        let t = Instant::now();
        let sc = explore(l, None, false);
        let tso = explore(l, None, true);
        let sc_equal = trace_equiv(&sc, &tso);
        let t_dyn = t.elapsed();

        assert_eq!(
            report.is_robust(),
            sc_equal,
            "{}: static and dynamic verdicts disagree",
            l.name
        );

        // Repair the non-robust programs and re-check dynamically.
        if !report.is_robust() {
            let fenced = insert_fences(&l.module, &l.entries);
            assert!(fenced.complete);
            fences_needed += fenced.inserted.len();
            let sc_f = explore(l, Some(&fenced.module), false);
            let tso_f = explore(l, Some(&fenced.module), true);
            assert!(
                trace_equiv(&sc_f, &tso_f),
                "{}: fenced program still TSO-distinguishable",
                l.name
            );
        }

        t_stat_tot += t_static;
        t_dyn_tot += t_dyn;
        println!(
            "{:<10} {:<13} {:>5} {:>7} {:>8.3}ms | {:>9} {:>9.2}ms | {:>8.0}x",
            l.name,
            if report.is_robust() {
                "Robust"
            } else {
                "MayViolateSC"
            },
            report.pairs.len(),
            report.witnesses().len(),
            ms(t_static),
            tso.expansions,
            ms(t_dyn),
            t_dyn.as_secs_f64() / t_static.as_secs_f64().max(1e-9),
        );
    }
    println!("{}", "-".repeat(84));
    println!(
        "{:<10} {:<13} {:>5} {:>7} {:>8.2}ms | {:>9} {:>9.2}ms | {:>8.0}x",
        "total",
        "",
        "",
        "",
        ms(t_stat_tot),
        "",
        ms(t_dyn_tot),
        t_dyn_tot.as_secs_f64() / t_stat_tot.as_secs_f64().max(1e-9),
    );
    println!(
        "\nStatic and dynamic verdicts agreed on all {} programs; {} fence(s)",
        corpus.len(),
        fences_needed
    );
    println!("repaired every non-robust one (re-verified by exhaustive exploration).");
}
