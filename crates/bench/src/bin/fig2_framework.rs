//! Regenerates the content of **Fig. 2** of the paper as a table: every
//! arrow of the basic framework, validated over a corpus of concurrent
//! DRF Clight programs compiled with the full pipeline and linked with
//! the CImp lock object.
//!
//! For each program the harness reports the per-arrow verdicts and the
//! state-space sizes behind them (the quantitative reason the framework
//! routes the proof through non-preemptive semantics).
//!
//! Run with: `cargo run -p ccc-bench --bin fig2_framework`

use ccc_bench::corpus::{concurrent_source, concurrent_target};
use ccc_compiler::driver::compile;
use ccc_core::framework::validate_fig2;
use ccc_core::refine::{count_states, ExploreCfg, NonPreemptive, Preemptive};
use std::time::Instant;

fn main() {
    let cfg = ExploreCfg {
        fuel: 300,
        max_states: 2_000_000,
        ..Default::default()
    };
    println!("Fig. 2 — framework arrows over compiled lock-synchronized clients\n");
    println!(
        "{:<5} {:>5} {:>6} {:>6} {:>6} {:>6} {:>5} {:>5} {:>4} {:>8} {:>8} {:>8}",
        "seed",
        "DRF",
        "NPDRFs",
        "NPDRFt",
        "npEq_s",
        "npEq_t",
        "np⊑",
        "np≈",
        "≈",
        "Pstates",
        "NPstate",
        "time(s)"
    );
    println!("{}", "-".repeat(88));
    let mut all_ok = true;
    for seed in 0..6u64 {
        let start = Instant::now();
        let (src, client, ge, entries) = concurrent_source(seed, 2);
        let asm = compile(&client).expect("compiles");
        let tgt = concurrent_target(asm, ge, entries);
        let report = validate_fig2(&src, &tgt, &cfg).expect("validate");
        let p = count_states(&Preemptive(&src), &cfg).expect("p");
        let np = count_states(&NonPreemptive(&src), &cfg).expect("np");
        println!(
            "{:<5} {:>5} {:>6} {:>6} {:>6} {:>6} {:>5} {:>5} {:>4} {:>8} {:>8} {:>8.2}",
            seed,
            report.drf_src,
            report.npdrf_src,
            report.npdrf_tgt,
            report.src_np_equiv,
            report.tgt_np_equiv,
            report.np_refines,
            report.np_equiv,
            report.preemptive_equiv,
            p.states,
            np.states,
            start.elapsed().as_secs_f64()
        );
        all_ok &= report.all_hold();
    }
    println!("{}", "-".repeat(88));
    println!(
        "\nAll arrows hold on the corpus: {all_ok}  (expected: true — the paper's\n\
         Thm. 14 instantiated on generated programs)."
    );
    assert!(all_ok);
}
