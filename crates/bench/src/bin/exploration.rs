//! Exploration-engine evaluation: exhaustive enumeration vs the
//! footprint-directed ample-set reduction vs the parallel frontier.
//!
//! Every program is explored four ways:
//!
//! * **naive** — `Reduction::Off`, the exhaustive oracle;
//! * **ample** — `Reduction::Ample` with state interning: threads whose
//!   next steps are all silent and scoped to their own free-list region
//!   are expanded alone;
//! * **absint** — the ample reduction plus escape-analysis hints
//!   ([`ccc_analysis::ample_hints`]): globals the abstract
//!   interpretation proves thread-local count as private, so grinds on
//!   them collapse too (the engine monitors the hints and falls back on
//!   any violation);
//! * **par** — the work-stealing parallel frontier with the ample
//!   reduction running *inside* each worker (shared fingerprint visited
//!   set, interned thread/memory components, memoised per-`(thread,
//!   memory)` expansions, early exit on the first race witness),
//!   measured at 1, 2, and 4 workers.
//!
//! The verdicts must be identical everywhere — the reduction preserves
//! race reachability and trace sets, and the parallel merge is
//! commutative — so the table is purely about cost: states visited and
//! wall-clock. On the 4-thread private-prefix programs the ample
//! reduction must visit at least 5x fewer states than the oracle, for
//! both `check_drf` and `collect_traces`; on every race-free program
//! the hinted reduction must visit no more states than the plain one,
//! and at least one program must improve by 2x or better. The parallel
//! engine must beat the exhaustive oracle on wall-clock on every row,
//! stay within 10x of the sequential ample state count (the reduction
//! composes with the parallel frontier instead of being lost to it),
//! and beat the sequential ample engine by 2x on the 4-thread atomic
//! family; the run aborts otherwise.
//!
//! Run with: `cargo run --release -p ccc-bench --bin exploration`
//! (`--smoke` shrinks the corpus for CI; `--workers N` replaces the
//! default 1/2/4 worker ladder with the single count `N`). Results are
//! also written to `BENCH_exploration.json` in the current directory.

use ccc_analysis::{ample_hints, infer_lock_model, LockModel};
use ccc_bench::corpus::concurrent_source_with;
use ccc_clight::ast::{Expr, Function, Stmt};
use ccc_clight::{ClightLang, ClightModule};
use ccc_core::lang::{Lang, Prog};
use ccc_core::mem::{GlobalEnv, Val};
use ccc_core::race::{
    check_drf, check_drf_hinted, check_drf_par, check_npdrf, check_npdrf_par, collect_footprints,
    collect_footprints_hinted, collect_footprints_par,
};
use ccc_core::refine::{collect_traces_preemptive, ExploreCfg};
use ccc_core::toy::{toy_globals, toy_module, ToyInstr, ToyLang};
use ccc_core::world::Loaded;
use ccc_core::{AmpleHints, Reduction};
use ccc_machine::{litmus, X86Tso};
use ccc_sync::lock::lock_spec;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured exploration: distinct states (or expansions) and time.
#[derive(Clone, Copy)]
struct Run {
    states: usize,
    ms: f64,
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let v = f();
    (v, t.elapsed().as_secs_f64() * 1000.0)
}

/// Per-program results, serialized into `BENCH_exploration.json`.
struct Row {
    name: String,
    threads: usize,
    drf: bool,
    drf_naive: Run,
    drf_ample: Run,
    drf_absint: Run,
    /// POR-composed work-stealing runs, one per worker count in the
    /// ladder; `drf_par` in the JSON is the last (widest) entry.
    par_workers: Vec<(usize, Run)>,
    traces: Option<(Run, Run)>, // (naive, ample), toy programs only
    npdrf: Option<(Run, Run)>,  // (serial, par), corpus programs only
}

impl Row {
    /// The widest-ladder parallel run (the headline `drf_par` figure).
    fn par(&self) -> &Run {
        &self.par_workers.last().expect("non-empty worker ladder").1
    }

    fn json(&self) -> String {
        let mut s = String::new();
        let run = |r: &Run| format!("{{\"states\": {}, \"ms\": {:.3}}}", r.states, r.ms);
        let per_worker: Vec<String> = self
            .par_workers
            .iter()
            .map(|(w, r)| {
                format!(
                    "{{\"workers\": {w}, \"states\": {}, \"ms\": {:.3}}}",
                    r.states, r.ms
                )
            })
            .collect();
        write!(
            s,
            "    {{\"name\": \"{}\", \"threads\": {}, \"drf\": {}, \
             \"drf_naive\": {}, \"drf_ample\": {}, \"drf_absint\": {}, \"drf_par\": {}, \
             \"drf_par_workers\": [{}], \"par_vs_naive_x\": {:.2}, \
             \"drf_reduction_x\": {:.2}, \"absint_reduction_x\": {:.2}",
            self.name,
            self.threads,
            self.drf,
            run(&self.drf_naive),
            run(&self.drf_ample),
            run(&self.drf_absint),
            run(self.par()),
            per_worker.join(", "),
            self.drf_naive.ms / self.par().ms.max(1e-6),
            self.drf_naive.states as f64 / self.drf_ample.states.max(1) as f64,
            self.drf_ample.states as f64 / self.drf_absint.states.max(1) as f64,
        )
        .unwrap();
        if let Some((n, a)) = &self.traces {
            write!(
                s,
                ", \"traces_naive\": {}, \"traces_ample\": {}, \"traces_reduction_x\": {:.2}",
                run(n),
                run(a),
                n.states as f64 / a.states.max(1) as f64,
            )
            .unwrap();
        }
        if let Some((ser, par)) = &self.npdrf {
            write!(s, ", \"npdrf\": {}, \"npdrf_par\": {}", run(ser), run(par)).unwrap();
        }
        s.push('}');
        s
    }
}

/// Each thread allocates a private cell, grinds on it for `depth`
/// rounds, then bumps a shared global — atomically when `sync`, racily
/// otherwise. The silent private prefixes are exactly what the ample
/// reduction collapses; the shared suffix keeps the program honest
/// (races must survive the reduction).
fn toy_private(threads: usize, depth: usize, sync: bool) -> Loaded<ToyLang> {
    let names: Vec<String> = (0..threads).map(|i| format!("t{i}")).collect();
    let mut funcs = Vec::new();
    for i in 0..threads {
        let mut body = vec![
            ToyInstr::AllocLocal,
            ToyInstr::Const(i as i64),
            ToyInstr::StoreL(0),
        ];
        for _ in 0..depth {
            body.push(ToyInstr::LoadL(0));
            body.push(ToyInstr::Add(1));
            body.push(ToyInstr::StoreL(0));
        }
        if sync {
            body.push(ToyInstr::EntAtom);
        }
        body.push(ToyInstr::LoadG("x".into()));
        body.push(ToyInstr::Add(1));
        body.push(ToyInstr::StoreG("x".into()));
        if sync {
            body.push(ToyInstr::ExtAtom);
        }
        body.push(ToyInstr::Ret(0));
        funcs.push(body);
    }
    let pairs: Vec<(&str, Vec<ToyInstr>)> = names
        .iter()
        .map(|n| n.as_str())
        .zip(funcs.iter().cloned())
        .collect();
    let (m, _) = toy_module(&pairs, &[]);
    Loaded::new(Prog::new(
        ToyLang,
        vec![(m, toy_globals(&[("x", 0)]))],
        names,
    ))
    .expect("toy links")
}

/// A Clight client whose threads grind on their *own* named global —
/// invisible to the plain ample reduction (globals are never in a
/// thread's free list) but proven thread-local by the escape analysis,
/// so the hinted reduction collapses the grinds. A final read of the
/// shared `s0` keeps every thread honest (read-read, so still DRF).
fn clight_private(threads: usize, depth: usize) -> (Loaded<ClightLang>, AmpleHints) {
    let mut ge = GlobalEnv::new();
    ge.define("s0", Val::Int(0));
    let mut funcs = Vec::new();
    let mut entries = Vec::new();
    for t in 0..threads {
        let p = format!("p{t}");
        ge.define(p.clone(), Val::Int(0));
        let mut body = Vec::new();
        for _ in 0..depth {
            body.push(Stmt::Assign(
                Expr::var(p.clone()),
                Expr::add(Expr::var(p.clone()), Expr::Const(1)),
            ));
        }
        body.push(Stmt::Set("o".into(), Expr::var("s0")));
        body.push(Stmt::Return(None));
        let name = format!("w{t}");
        funcs.push((name.clone(), Function::simple(Stmt::seq(body))));
        entries.push(name);
    }
    let client = ClightModule::new(funcs);
    let hints = ample_hints(&client, &entries, &LockModel::default(), &ge);
    assert!(
        hints.private.iter().all(|s| s.len() == 1),
        "escape analysis must prove every p{{t}} thread-local"
    );
    let loaded =
        Loaded::new(Prog::new(ClightLang, vec![(client, ge)], entries)).expect("client links");
    (loaded, hints)
}

/// Runs the four DRF explorations (plus optional trace / NPDRF runs)
/// on one program and cross-checks every verdict. `hints` feeds the
/// absint run; pass empty hints for programs without escape results
/// (the hinted engine then coincides with the plain ample one).
fn measure<L>(
    name: &str,
    loaded: &Loaded<L>,
    cfg: &ExploreCfg,
    ladder: &[usize],
    hints: &AmpleHints,
    with_traces: bool,
    with_npdrf: bool,
) -> Row
where
    L: Lang + Sync,
    L::Module: Sync,
    L::Core: Send + Sync,
{
    let naive_cfg = ExploreCfg {
        reduction: Reduction::Off,
        threads: 1,
        ..*cfg
    };
    let ample_cfg = ExploreCfg {
        reduction: Reduction::Ample,
        ..naive_cfg
    };
    // The parallel engine composes the same ample reduction with the
    // work-stealing frontier and the compact fingerprint visited set.
    let par_cfg = |w: usize| ExploreCfg {
        reduction: Reduction::Ample,
        threads: w,
        ..naive_cfg
    };
    let top = *ladder.last().expect("non-empty worker ladder");

    let (naive, t_naive) = timed(|| check_drf(loaded, &naive_cfg).expect("loads"));
    let (ample, t_ample) = timed(|| check_drf(loaded, &ample_cfg).expect("loads"));
    let (absint, t_absint) = timed(|| check_drf_hinted(loaded, &ample_cfg, hints).expect("loads"));
    assert!(
        !naive.truncated && !ample.truncated && !absint.truncated,
        "{name}: exploration truncated; raise max_states"
    );
    assert_eq!(
        naive.is_drf(),
        ample.is_drf(),
        "{name}: ample reduction changed the DRF verdict"
    );
    assert_eq!(
        naive.is_drf(),
        absint.is_drf(),
        "{name}: hinted reduction changed the DRF verdict"
    );

    let mut par_workers = Vec::new();
    for &w in ladder {
        let (par, t_par) = timed(|| check_drf_par(loaded, &par_cfg(w)).expect("loads"));
        assert!(
            !par.truncated,
            "{name}: parallel exploration truncated at {w} workers"
        );
        assert_eq!(
            naive.is_drf(),
            par.is_drf(),
            "{name}: parallel frontier changed the DRF verdict at {w} workers"
        );
        par_workers.push((
            w,
            Run {
                states: par.states,
                ms: t_par,
            },
        ));
    }

    // Footprint unions must also survive every engine.
    let (fp_naive, _) = timed(|| collect_footprints(loaded, &naive_cfg).expect("loads"));
    let (fp_ample, _) = timed(|| collect_footprints(loaded, &ample_cfg).expect("loads"));
    let (fp_absint, _) =
        timed(|| collect_footprints_hinted(loaded, &ample_cfg, hints).expect("loads"));
    let (fp_par, _) = timed(|| collect_footprints_par(loaded, &par_cfg(top)).expect("loads"));
    assert_eq!(
        fp_naive.fps, fp_ample.fps,
        "{name}: footprint unions differ (ample)"
    );
    assert_eq!(
        fp_naive.fps, fp_absint.fps,
        "{name}: footprint unions differ (absint)"
    );
    assert_eq!(
        fp_naive.fps, fp_par.fps,
        "{name}: footprint unions differ (par)"
    );

    let traces = with_traces.then(|| {
        let (ts_naive, t_tn) =
            timed(|| collect_traces_preemptive(loaded, &naive_cfg).expect("loads"));
        let (ts_ample, t_ta) =
            timed(|| collect_traces_preemptive(loaded, &ample_cfg).expect("loads"));
        assert!(
            !ts_naive.truncated && !ts_ample.truncated,
            "{name}: traces truncated"
        );
        assert_eq!(
            ts_naive.traces, ts_ample.traces,
            "{name}: ample reduction changed the trace set"
        );
        (
            Run {
                states: ts_naive.expansions,
                ms: t_tn,
            },
            Run {
                states: ts_ample.expansions,
                ms: t_ta,
            },
        )
    });

    let npdrf = with_npdrf.then(|| {
        let (np_ser, t_s) = timed(|| check_npdrf(loaded, &naive_cfg).expect("loads"));
        let (np_par, t_p) = timed(|| check_npdrf_par(loaded, &par_cfg(top)).expect("loads"));
        assert_eq!(
            np_ser.is_drf(),
            np_par.is_drf(),
            "{name}: parallel frontier changed the NPDRF verdict"
        );
        (
            Run {
                states: np_ser.states,
                ms: t_s,
            },
            Run {
                states: np_par.states,
                ms: t_p,
            },
        )
    });

    Row {
        name: name.to_string(),
        threads: loaded.prog.entries.len(),
        drf: naive.is_drf(),
        drf_naive: Run {
            states: naive.states,
            ms: t_naive,
        },
        drf_ample: Run {
            states: ample.states,
            ms: t_ample,
        },
        drf_absint: Run {
            states: absint.states,
            ms: t_absint,
        },
        par_workers,
        traces,
        npdrf,
    }
}

fn main() {
    let mut smoke = false;
    let mut ladder: Vec<usize> = vec![1, 2, 4];
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--workers" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers takes a positive integer");
                assert!(n > 0, "--workers takes a positive integer");
                ladder = vec![n];
            }
            other => panic!("unknown flag {other:?} (expected --smoke or --workers N)"),
        }
    }
    let cfg = ExploreCfg {
        fuel: 400,
        max_states: 8_000_000,
        ..Default::default()
    };

    println!(
        "Exploration engines: naive vs ample vs escape-hinted ample vs work-stealing parallel (workers: {ladder:?})"
    );
    println!(
        "{:<22} {:>3} {:>5} | {:>9} {:>9} {:>7} | {:>9} {:>6} | {:>9} {:>9} | {:>9} {:>9}",
        "program",
        "thr",
        "drf",
        "st_naive",
        "st_ample",
        "red_x",
        "st_abs",
        "abs_x",
        "ms_naive",
        "ms_ample",
        "st_par",
        "ms_par"
    );
    println!("{}", "-".repeat(126));

    let mut rows = Vec::new();

    // Toy private-prefix programs: the reduction's home turf. Trace
    // sets are small enough to compare exhaustively.
    let toy_specs: &[(usize, usize, bool)] = if smoke {
        &[(2, 3, true), (3, 2, true), (4, 2, true), (4, 2, false)]
    } else {
        &[
            (2, 4, true),
            (3, 3, true),
            (4, 2, true),
            (4, 3, true),
            (2, 4, false),
            (4, 2, false),
        ]
    };
    for &(threads, depth, sync) in toy_specs {
        let name = format!(
            "toy/{}t-d{}-{}",
            threads,
            depth,
            if sync { "atomic" } else { "racy" }
        );
        let loaded = toy_private(threads, depth, sync);
        let with_traces = sync; // racy trace sets include every abort interleaving
        rows.push(measure(
            &name,
            &loaded,
            &cfg,
            &ladder,
            &AmpleHints::default(),
            with_traces,
            false,
        ));
    }

    // Private-global Clight clients: the escape analysis proves each
    // thread's grind global thread-local, so only the hinted engine
    // collapses the prefixes (plain ample never treats globals as
    // private).
    let absint_specs: &[(usize, usize)] = if smoke {
        &[(3, 2)]
    } else {
        &[(2, 4), (3, 3), (4, 2)]
    };
    for &(threads, depth) in absint_specs {
        let name = format!("absint/{threads}t-d{depth}");
        let (loaded, hints) = clight_private(threads, depth);
        rows.push(measure(&name, &loaded, &cfg, &ladder, &hints, false, false));
    }

    // Generated Clight clients + the CImp lock object: cross-language
    // corpus programs with real call/lock traffic. Hints come from the
    // same escape analysis, against the inferred lock protocol — a
    // shared global only one thread happens to touch still counts.
    let (lock_obj, _) = lock_spec("L");
    let lock_model = infer_lock_model(&lock_obj);
    let corpus_specs: &[(u64, usize, bool)] = if smoke {
        &[(0, 3, false)]
    } else {
        &[(0, 3, false), (1, 3, false), (0, 3, true)]
    };
    for &(seed, threads, racy) in corpus_specs {
        let name = format!(
            "clight/s{}-{}t{}",
            seed,
            threads,
            if racy { "-racy" } else { "" }
        );
        let (loaded, client, ge, entries) = concurrent_source_with(seed, threads, racy);
        let hints = ample_hints(&client, &entries, &lock_model, &ge);
        rows.push(measure(&name, &loaded, &cfg, &ladder, &hints, false, true));
    }

    // x86-TSO litmus tests: the store-buffered machine is the weakest
    // semantics the engines explore (the TSO-robustness checks lean on
    // it), and its buffer contents defeat the ample condition — the
    // parallel rows here measure the frontier on reduction-hostile
    // state spaces.
    let litmus_names: &[&str] = if smoke { &["SB"] } else { &["SB", "MP", "LB"] };
    for l in litmus::corpus()
        .into_iter()
        .filter(|l| litmus_names.contains(&l.name))
    {
        let loaded = Loaded::new(Prog::new(X86Tso, vec![(l.module, l.ge)], l.entries))
            .expect("litmus links");
        rows.push(measure(
            &format!("tso/{}", l.name),
            &loaded,
            &cfg,
            &ladder,
            &AmpleHints::default(),
            false,
            false,
        ));
    }

    for r in &rows {
        println!(
            "{:<22} {:>3} {:>5} | {:>9} {:>9} {:>6.1}x | {:>9} {:>5.1}x | {:>8.2} {:>8.2} | {:>9} {:>8.2}",
            r.name,
            r.threads,
            r.drf,
            r.drf_naive.states,
            r.drf_ample.states,
            r.drf_naive.states as f64 / r.drf_ample.states.max(1) as f64,
            r.drf_absint.states,
            r.drf_ample.states as f64 / r.drf_absint.states.max(1) as f64,
            r.drf_naive.ms,
            r.drf_ample.ms,
            r.par().states,
            r.par().ms,
        );
    }
    println!("{}", "-".repeat(126));

    // Acceptance gate: on the race-free 4-thread private-prefix
    // programs (racy runs early-exit at the first witness, so their
    // state counts measure luck, not reduction) the reduction must
    // visit >= 5x fewer states, for the DRF check and for trace
    // collection, without losing to the oracle on wall-clock.
    for r in rows
        .iter()
        .filter(|r| r.name.starts_with("toy/4t") && r.drf)
    {
        assert!(
            r.drf_naive.states >= 5 * r.drf_ample.states,
            "{}: check_drf reduction only {}/{} states",
            r.name,
            r.drf_ample.states,
            r.drf_naive.states
        );
        assert!(
            r.drf_ample.ms < r.drf_naive.ms,
            "{}: reduced check_drf slower than naive ({:.2}ms vs {:.2}ms)",
            r.name,
            r.drf_ample.ms,
            r.drf_naive.ms
        );
        if let Some((n, a)) = &r.traces {
            assert!(
                n.states >= 5 * a.states,
                "{}: collect_traces reduction only {}/{} expansions",
                r.name,
                a.states,
                n.states
            );
            assert!(
                a.ms < n.ms,
                "{}: reduced collect_traces slower than naive ({:.2}ms vs {:.2}ms)",
                r.name,
                a.ms,
                n.ms
            );
        }
    }
    println!("4-thread private-prefix programs: >=5x state reduction confirmed");

    // Escape-analysis gate: on race-free programs (racy explorations
    // early-exit at the first witness, so their counts measure search
    // order, not reduction) the hints must never cost states, and the
    // private-global family must improve on plain ample by >= 2x
    // somewhere.
    for r in rows.iter().filter(|r| r.drf) {
        assert!(
            r.drf_absint.states <= r.drf_ample.states,
            "{}: escape hints cost states ({} vs {})",
            r.name,
            r.drf_absint.states,
            r.drf_ample.states
        );
    }
    assert!(
        rows.iter()
            .any(|r| r.drf && r.drf_ample.states >= 2 * r.drf_absint.states),
        "no program improved >= 2x under escape-analysis hints"
    );
    println!("escape hints: never more states than plain ample, >=2x on the private-global family");

    // Parallel-engine gates. The POR-composed frontier must (a) never
    // lose to the exhaustive oracle on wall-clock (small slack absorbs
    // timer noise on sub-millisecond rows), and (b) keep its state
    // count within 10x of the sequential ample engine on every row —
    // i.e. the reduction survives the parallel decomposition instead of
    // degenerating into the naive frontier.
    for r in &rows {
        assert!(
            r.par().ms <= r.drf_naive.ms * 1.05 + 0.25,
            "{}: parallel check_drf lost to the naive oracle ({:.2}ms vs {:.2}ms)",
            r.name,
            r.par().ms,
            r.drf_naive.ms
        );
        for (w, run) in &r.par_workers {
            assert!(
                run.states <= 10 * r.drf_ample.states,
                "{}: {w}-worker frontier visited {} states, >10x the ample {}",
                r.name,
                run.states,
                r.drf_ample.states
            );
        }
    }
    println!("parallel frontier: never slower than naive, state counts within 10x of ample");

    // Speedup gate: with the full ladder, the memoised work-stealing
    // engine must halve the sequential ample wall-clock on the 4-thread
    // atomic family (the expansion-bound rows where the per-(thread,
    // memory) cache pays off).
    if ladder.last() == Some(&4) {
        for r in rows
            .iter()
            .filter(|r| r.name.starts_with("toy/4t") && r.name.ends_with("atomic"))
        {
            assert!(
                2.0 * r.par().ms <= r.drf_ample.ms,
                "{}: 4-worker frontier only {:.2}ms vs sequential ample {:.2}ms (<2x)",
                r.name,
                r.par().ms,
                r.drf_ample.ms
            );
        }
        println!("4-worker frontier: >=2x over sequential ample on the 4-thread atomic family");
    }
    println!("all verdicts, footprint unions, and trace sets identical across engines");

    let mut json = String::from("{\n");
    write!(
        json,
        "  \"bench\": \"exploration\",\n  \"smoke\": {smoke},\n  \"workers\": {ladder:?},\n  \"programs\": [\n"
    )
    .unwrap();
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&r.json());
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_exploration.json", &json).expect("write BENCH_exploration.json");
    println!("wrote BENCH_exploration.json ({} programs)", rows.len());
}
