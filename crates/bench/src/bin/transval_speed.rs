//! Static translation validation vs differential co-execution, per
//! pass: how much cheaper is discharging the symbolic simulation
//! obligations of `ccc_analysis::transval` than co-executing the two
//! IRs under the footprint-preserving simulation of
//! `ccc_compiler::verif`?
//!
//! For every pipeline pass — front end, mid end and back end — each
//! generated module's pass run is checked twice: once by the symbolic
//! validator, once by the differential checker restricted to exactly
//! that pass. Both sides must accept. The run aborts unless the median
//! per-pass speedup is at least 10x, both overall and over the
//! newly-covered cross-IR stages (the economics the
//! `Validation::Static` fuzzing mode relies on), and unless
//! `validate_artifacts` covers every pass with no `Unsupported`
//! verdict — the CI gate against any stage silently falling back to
//! the differential oracle.
//!
//! Run with: `cargo run --release -p ccc-bench --bin transval_speed`
//! (`--smoke` shrinks the seed count for CI). Results are written to
//! `BENCH_transval.json` in the current directory.

use ccc_analysis::transval::{backend, frontend, passes as tv, Verdict};
use ccc_analysis::{validate_artifacts, SimWitness};
use ccc_clight::ast::{Binop, Expr as E, Function, Stmt};
use ccc_clight::ClightModule;
use ccc_compiler::compile_with_artifacts_mutated;
use ccc_compiler::driver::CompilationArtifacts;
use ccc_compiler::verif::verify_passes_filtered;
use ccc_core::mem::{GlobalEnv, Val};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// A module whose `f` runs a few thousand loop iterations: the
/// differential checker co-executes every one of them (twice, plus the
/// rely perturbations), while the symbolic validator's cost depends
/// only on the code size. The `seed` varies the constants and the loop
/// body shape so no two modules are identical.
fn bench_module(seed: u64, iters: i64) -> (ClightModule, GlobalEnv) {
    let k = (seed % 5) as i64 + 1;
    let body = if seed.is_multiple_of(2) {
        Stmt::Assign(
            E::var("acc"),
            E::add(E::var("acc"), E::bin(Binop::Mul, E::temp("n"), E::Const(k))),
        )
    } else {
        Stmt::Assign(
            E::var("acc"),
            E::bin(Binop::Xor, E::var("acc"), E::add(E::temp("n"), E::Const(k))),
        )
    };
    let f = Function {
        params: vec![],
        vars: vec!["acc".into()],
        body: Stmt::seq([
            Stmt::Assign(E::var("acc"), E::Const(k)),
            Stmt::Set("n".into(), E::Const(iters + (seed % 7) as i64)),
            Stmt::while_loop(
                E::bin(Binop::Lt, E::Const(0), E::temp("n")),
                Stmt::seq([
                    body,
                    Stmt::Assign(E::var("g"), E::var("acc")),
                    Stmt::Set("n".into(), E::bin(Binop::Sub, E::temp("n"), E::Const(1))),
                ]),
            ),
            Stmt::Call(Some("t".into()), "h".into(), vec![E::var("acc")]),
            Stmt::Print(E::temp("t")),
            Stmt::Return(Some(E::temp("t"))),
        ]),
    };
    let h = Function {
        params: vec!["x".into()],
        vars: vec![],
        body: Stmt::Return(Some(E::bin(Binop::Sub, E::temp("x"), E::Const(k * 3)))),
    };
    let mut ge = GlobalEnv::new();
    ge.define("g", Val::Int(0));
    (ClightModule::new([("f", f), ("h", h)]), ge)
}

/// A pass's symbolic-validator entry point over the artifacts.
type Validator = fn(&CompilationArtifacts) -> SimWitness;

/// Every pipeline pass in order, with its validator entry point and
/// whether it is one of the newly-covered cross-IR stages (the
/// original validator handled only the seven RTL-family passes).
const PASSES: [(&str, Validator, bool); 12] = [
    (
        "Cshmgen/Cminorgen",
        |a| frontend::validate_cminorgen(&a.clight, &a.cminor),
        true,
    ),
    (
        "Selection",
        |a| frontend::validate_selection(&a.cminor, &a.cminorsel),
        true,
    ),
    (
        "RTLgen",
        |a| backend::validate_rtlgen(&a.cminorsel, &a.rtl),
        true,
    ),
    (
        "Tailcall",
        |a| tv::validate_tailcall(&a.rtl, &a.rtl_tailcall),
        false,
    ),
    (
        "Renumber",
        |a| tv::validate_renumber(&a.rtl_tailcall, &a.rtl_renumber),
        false,
    ),
    (
        "Constprop",
        |a| tv::validate_constprop(&a.rtl_renumber, a.rtl_constprop.as_ref().expect("extended")),
        false,
    ),
    (
        "Allocation",
        |a| tv::validate_allocation(a.rtl_constprop.as_ref().expect("extended"), &a.ltl),
        false,
    ),
    (
        "Tunneling",
        |a| tv::validate_tunneling(&a.ltl, &a.ltl_tunneled),
        false,
    ),
    (
        "Linearize",
        |a| tv::validate_linearize(&a.ltl_tunneled, &a.linear),
        false,
    ),
    (
        "CleanupLabels",
        |a| tv::validate_cleanup(&a.linear, &a.linear_clean),
        false,
    ),
    (
        "Stacking",
        |a| backend::validate_stacking(&a.linear_clean, &a.mach),
        true,
    ),
    (
        "Asmgen",
        |a| backend::validate_asmgen(&a.mach, &a.asm),
        true,
    ),
];

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (seeds, iters): (u64, i64) = if smoke { (4, 2_000) } else { (12, 10_000) };

    println!("translation validation: symbolic vs differential, per pass");
    println!("({seeds} loop-heavy modules of ~{iters} iterations, both checkers must accept)\n");

    let modules: Vec<_> = (0..seeds)
        .map(|seed| {
            let (m, ge) = bench_module(seed, iters);
            // The extended pipeline, so the Constprop stage is present.
            let arts = compile_with_artifacts_mutated(&m, None).expect("compiles");
            (arts, ge)
        })
        .collect();

    // The no-silent-fallback gate: the full pipeline validator must
    // report a verdict for every pass, none of them `Unsupported`, so
    // `Validation::Static` never quietly re-runs the dynamic oracle.
    for (seed, (arts, _)) in modules.iter().enumerate() {
        let w = validate_artifacts(arts);
        assert!(
            w.unsupported_passes().is_empty(),
            "seed {seed}: stages silently fall back to differential: {:?}",
            w.unsupported_passes()
        );
    }

    let mut rows = Vec::new();
    for (pass, validate, new_stage) in PASSES {
        let mut t_static = Duration::ZERO;
        let mut t_diff = Duration::ZERO;
        for (seed, (arts, ge)) in modules.iter().enumerate() {
            let t = Instant::now();
            let w = validate(arts);
            t_static += t.elapsed();
            assert!(
                w.verdict == Verdict::Validated,
                "seed {seed}: static validator rejected {pass}:\n{w}"
            );

            let t = Instant::now();
            let pv = verify_passes_filtered(arts, ge, "f", &|p| p == pass);
            t_diff += t.elapsed();
            assert!(pv.ok(), "seed {seed}: differential check failed {pass}");
        }
        let speedup = t_diff.as_secs_f64() / t_static.as_secs_f64();
        println!(
            "  {pass:<17} static {:>9.3} ms   differential {:>9.3} ms   {speedup:>7.1}x{}",
            ms(t_static),
            ms(t_diff),
            if new_stage { "   (new)" } else { "" }
        );
        rows.push((pass, ms(t_static), ms(t_diff), speedup, new_stage));
    }

    let median_of = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let median = median_of(rows.iter().map(|r| r.3).collect());
    let median_new = median_of(rows.iter().filter(|r| r.4).map(|r| r.3).collect());
    println!("\nmedian speedup: {median:.1}x (newly covered stages: {median_new:.1}x)");

    let mut json = String::from("{\n");
    write!(
        json,
        "  \"bench\": \"transval\",\n  \"smoke\": {smoke},\n  \"seeds\": {seeds},\n  \
         \"median_speedup\": {median:.2},\n  \"median_speedup_new_stages\": {median_new:.2},\n  \
         \"passes\": [\n"
    )
    .unwrap();
    for (i, (pass, st, df, sp, new_stage)) in rows.iter().enumerate() {
        write!(
            json,
            "    {{\"pass\": \"{pass}\", \"static_ms\": {st:.4}, \
             \"differential_ms\": {df:.4}, \"speedup\": {sp:.2}, \"new_stage\": {new_stage}}}"
        )
        .unwrap();
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_transval.json", &json).expect("write BENCH_transval.json");
    println!(
        "wrote BENCH_transval.json ({} passes, {seeds} modules)",
        rows.len()
    );

    assert!(
        median >= 10.0,
        "median static-vs-differential speedup {median:.1}x below the 10x bar"
    );
    assert!(
        median_new >= 10.0,
        "median speedup on newly covered stages {median_new:.1}x below the 10x bar"
    );
}
