//! Differential-fuzzer evaluation: clean-pipeline throughput and the
//! mutation-kill scoreboard.
//!
//! Two measurements:
//!
//! * **throughput** — a window of the deterministic input stream is run
//!   through the clean differential oracle (`check_program` with no
//!   mutant); every input must pass, and the wall-clock gives the
//!   inputs/second figure the evaluation quotes;
//! * **scoreboard** — each pipeline mutant first replays its own
//!   entries from the persisted regression corpus (`tests/corpus/`),
//!   then faces the shared random stream until the oracle kills it or
//!   the per-mutant budget runs out. The run aborts unless *every*
//!   mutant is killed — a surviving mutant means a checker lost its
//!   teeth. Corpus seeding keeps the board deterministic for mutants
//!   whose killing shape the generator rarely produces (e.g. an
//!   interval-decided but not constant-decided branch).
//!
//! With `--corpus <dir>` each killing input is additionally shrunk via
//! delta debugging and written as a corpus entry (the regression files
//! replayed by `cargo test -p ccc-tests`).
//!
//! Run with: `cargo run --release -p ccc-bench --bin fuzz_throughput`
//! (`--smoke` shrinks the budgets for CI). Results are also written to
//! `BENCH_fuzz.json` in the current directory.

use ccc_fuzz::mutation::stream_input;
use ccc_fuzz::{
    check_program, run_scoreboard_seeded, shrink_to_entry, static_board_markdown,
    transval_corpus_board, CorpusEntry, OracleCfg,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Loads every mutant-tagged entry of the persisted regression corpus
/// (skipping `none` entries and unparsable files). The directory is
/// resolved relative to the workspace so the bin works from any cwd.
fn load_corpus_seeds() -> Vec<CorpusEntry> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus");
    let mut seeds = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return seeds;
    };
    let mut paths: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.extension() != Some(std::ffi::OsStr::new("txt")) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        if let Ok(entry) = CorpusEntry::from_text(&text) {
            if entry.mutant.is_some() {
                seeds.push(entry);
            }
        }
    }
    seeds
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let corpus_dir = args
        .iter()
        .position(|a| a == "--corpus")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let (clean_inputs, budget, shrink_budget) = if smoke {
        (40usize, 60usize, 200usize)
    } else {
        (200usize, 200usize, 800usize)
    };
    let cfg = OracleCfg::default();

    // Throughput: the clean pipeline over the shared stream.
    println!("clean-pipeline differential oracle over {clean_inputs} inputs...");
    let mut seq = 0usize;
    let mut conc = 0usize;
    let t = Instant::now();
    for i in 0..clean_inputs {
        let p = stream_input(i);
        if p.is_sequential() {
            seq += 1;
        } else {
            conc += 1;
        }
        if let Err(e) = check_program(&p, None, &cfg) {
            panic!(
                "clean pipeline failed the oracle on stream input {i}: {e}\n{}",
                ccc_fuzz::program_to_text(&p)
            );
        }
    }
    let secs = t.elapsed().as_secs_f64();
    let throughput = clean_inputs as f64 / secs;
    println!(
        "  {clean_inputs} inputs ({seq} sequential, {conc} concurrent) in {secs:.1}s \
         = {throughput:.1} inputs/s, 0 disagreements"
    );

    // Scoreboard: every mutant first replays its corpus witnesses,
    // then faces the same stream.
    let seeds = load_corpus_seeds();
    println!(
        "mutation-kill scoreboard (budget {budget} inputs per mutant, \
         seeded with {} corpus witnesses)...",
        seeds.len()
    );
    let t = Instant::now();
    let sb = run_scoreboard_seeded(budget, &cfg, &seeds);
    let sb_secs = t.elapsed().as_secs_f64();
    print!("{}", sb.to_markdown());
    println!("scoreboard wall-clock: {sb_secs:.1}s");

    let survivors: Vec<_> = sb.survivors().collect();
    assert!(
        survivors.is_empty(),
        "surviving mutants: {survivors:?} — a checker lost its teeth"
    );

    // Static-only board: the symbolic validator alone over each
    // mutant's killing input — which mutants die without executing?
    println!("symbolic-validator-only board (same killing inputs):");
    let witnesses: Vec<_> = sb
        .scores
        .iter()
        .map(|s| {
            let w = s.witness.clone().expect("every mutant was killed above");
            (s.mutant, w)
        })
        .collect();
    let board = transval_corpus_board(&witnesses);
    print!("{}", static_board_markdown(&board));

    // Optionally shrink each killing input into a corpus entry.
    if let Some(dir) = &corpus_dir {
        std::fs::create_dir_all(dir).expect("create corpus dir");
        for s in &sb.scores {
            let p = s.witness.clone().expect("every mutant was killed above");
            let entry = shrink_to_entry(&p, Some(s.mutant), shrink_budget, &cfg);
            let path = format!("{dir}/kill_{:?}.txt", s.mutant).to_lowercase();
            std::fs::write(&path, entry.to_text()).expect("write corpus entry");
            println!(
                "  {path}: shrunk {} -> {} statements",
                p.size(),
                entry.program.size()
            );
        }
    }

    let mut json = String::from("{\n");
    write!(
        json,
        "  \"bench\": \"fuzz\",\n  \"smoke\": {smoke},\n  \"throughput\": {{\
         \"inputs\": {clean_inputs}, \"sequential\": {seq}, \"concurrent\": {conc}, \
         \"secs\": {secs:.3}, \"inputs_per_sec\": {throughput:.2}}},\n  \"scoreboard\": {{\
         \"budget\": {budget}, \"kill_rate\": {:.4}, \"mean_inputs_to_kill\": {:.2}, \
         \"secs\": {sb_secs:.3}, \"mutants\": [\n",
        sb.kill_rate(),
        sb.mean_inputs_to_kill(),
    )
    .unwrap();
    for (i, s) in sb.scores.iter().enumerate() {
        let at = s
            .kill
            .as_ref()
            .map_or("null".to_string(), |f| format!("\"{}\"", f.stage));
        write!(
            json,
            "    {{\"mutant\": \"{:?}\", \"pass\": \"{}\", \"killed\": {}, \
             \"static_kill\": {}, \"inputs\": {}, \"localized_at\": {at}}}",
            s.mutant,
            s.mutant.pass_name(),
            s.killed(),
            s.static_kill(),
            s.inputs,
        )
        .unwrap();
        json.push_str(if i + 1 < sb.scores.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]}\n}\n");
    std::fs::write("BENCH_fuzz.json", &json).expect("write BENCH_fuzz.json");
    println!(
        "wrote BENCH_fuzz.json ({} mutants, {clean_inputs} clean inputs)",
        sb.scores.len()
    );
}
