//! Static rely-guarantee certification vs whole-program exploration.
//!
//! Two measurements:
//!
//! 1. **Static vs exploration**: over a corpus of concurrent clients
//!    (lock-disciplined and racy, single- and multi-module), the full
//!    static path — per-module certificate inference, the trusted
//!    re-check, and the pairwise link-time compatibility check — is
//!    timed against `check_drf_par`'s exhaustive exploration of the
//!    same linked program. Soundness is asserted on every row (a
//!    certified-stable program must never explore to a race: zero
//!    false negatives); static false positives are counted and
//!    reported honestly. An aborting gate requires the **median
//!    speedup on certifiable programs to be ≥ 10x**.
//! 2. **Incremental certification**: a 20-module program's
//!    certificates are built through the witness cache, one module is
//!    edited, and the rebuild must re-infer exactly 1 certificate (19
//!    re-checked hits) plus the link check — no whole-program
//!    re-exploration, enforced by aborting asserts.
//!
//! Run with: `cargo run --release -p ccc-bench --bin rg_cert`
//! (`--smoke` shrinks the corpus and exploration budgets for CI).
//! Results are written to `BENCH_rgcert.json` in the current
//! directory.

use ccc_analysis::rg_cert::CertOutcome;
use ccc_analysis::sepcomp::SepUnit;
use ccc_analysis::{
    infer_lock_model, infer_rg_cert, rg_cert_cached, rg_cert_violation, rg_incompatibilities,
    LockModel, RgCert,
};
use ccc_clight::gen::gen_concurrent_client;
use ccc_clight::ClightModule;
use ccc_compiler::cache::CompileCache;
use ccc_core::mem::GlobalEnv;
use ccc_core::race::check_drf_par;
use ccc_core::refine::ExploreCfg;
use ccc_fuzz::link::load_client;
use ccc_fuzz::spec::lower_prefixed;
use ccc_fuzz::{gen_program, FuzzProgram};
use ccc_sync::lock::lock_spec;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// One corpus program: named modules (with their entries and globals)
/// whose merge is explored dynamically and certified statically.
struct Row {
    name: String,
    units: Vec<(String, ClightModule, GlobalEnv, Vec<String>)>,
}

impl Row {
    fn single(name: &str, m: ClightModule, ge: GlobalEnv, entries: Vec<String>) -> Row {
        Row {
            name: name.to_string(),
            units: vec![("m0".to_string(), m, ge, entries)],
        }
    }

    fn merged(&self) -> (ClightModule, GlobalEnv, Vec<String>) {
        let module = ClightModule::new(
            self.units
                .iter()
                .flat_map(|(_, m, _, _)| m.funcs.iter())
                .map(|(n, f)| (n.clone(), f.clone())),
        );
        let ge = GlobalEnv::link(self.units.iter().map(|(_, _, ge, _)| ge))
            .expect("unit environments link");
        let entries = self
            .units
            .iter()
            .flat_map(|(_, _, _, e)| e.iter().cloned())
            .collect();
        (module, ge, entries)
    }
}

fn sequential_programs(n: usize, size: u32, skip: usize) -> Vec<FuzzProgram> {
    let mut out = Vec::new();
    let mut seed = 0u64;
    let mut skipped = 0;
    while out.len() < n {
        let p = gen_program(seed, size);
        seed += 1;
        if p.is_sequential() {
            if skipped < skip {
                skipped += 1;
            } else {
                out.push(p);
            }
        }
    }
    out
}

fn units_of(programs: &[FuzzProgram]) -> Vec<SepUnit> {
    programs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let (module, ge, entries) =
                lower_prefixed(p, &format!("m{i}_"), 0x2000 + 0x100 * i as u64);
            SepUnit {
                name: format!("m{i}"),
                module,
                ge,
                entries,
            }
        })
        .collect()
}

fn corpus(smoke: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    let seeds: u64 = if smoke { 4 } else { 12 };
    for seed in 0..seeds {
        let threads = 2 + (seed as usize % 2);
        let (m, ge, entries) = gen_concurrent_client(seed, threads, &["s0", "s1"], false);
        rows.push(Row::single(
            &format!("locked{threads}_{seed}"),
            m,
            ge,
            entries,
        ));
        let (m, ge, entries) = gen_concurrent_client(seed, threads, &["s0"], true);
        rows.push(Row::single(
            &format!("racy{threads}_{seed}"),
            m,
            ge,
            entries,
        ));
    }
    // Multi-module compositions: 3 separately certified sequential
    // units, the shape `build_program_certified` serves.
    let size = if smoke { 6 } else { 10 };
    for k in 0..if smoke { 2 } else { 4 } {
        let units = units_of(&sequential_programs(3, size, 3 * k));
        rows.push(Row {
            name: format!("sep3_{k}"),
            units: units
                .into_iter()
                .map(|u| (u.name, u.module, u.ge, u.entries))
                .collect(),
        });
    }
    rows
}

/// The full static path, returning the whole-program verdict: per-unit
/// inference + trusted re-check + pairwise link compatibility.
fn static_verdict(row: &Row, model: &LockModel) -> (Vec<RgCert>, bool) {
    let certs: Vec<RgCert> = row
        .units
        .iter()
        .map(|(name, m, _, entries)| {
            let cert = infer_rg_cert(name, m, entries, model);
            assert!(
                rg_cert_violation(&cert, m, entries, model).is_none(),
                "fresh certificate rejected for {name}"
            );
            cert
        })
        .collect();
    let stable = certs.iter().all(RgCert::is_stable) && rg_incompatibilities(&certs).is_empty();
    (certs, stable)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    if xs.is_empty() {
        0.0
    } else {
        xs[xs.len() / 2]
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let explore_cfg = ExploreCfg {
        max_states: if smoke { 60_000 } else { 400_000 },
        threads: 2,
        ..ExploreCfg::default()
    };
    let (lock, _lock_ge) = lock_spec("L");
    let model = infer_lock_model(&lock);

    println!("static rely-guarantee certification vs whole-program exploration\n");
    println!(
        "  {:<14} {:>7} {:>9} {:>12} {:>10} {:>9}   verdicts",
        "program", "threads", "static", "explore", "states", "speedup"
    );

    let mut rows_json = Vec::new();
    let mut speedups_certifiable = Vec::new();
    let (mut certifiable, mut false_positives) = (0usize, 0usize);
    for row in corpus(smoke) {
        // Static side: min over reps (it is microseconds — timer noise
        // dominates a single rep).
        let reps = 5;
        let mut static_t = std::time::Duration::MAX;
        let mut verdict = None;
        for _ in 0..reps {
            let t = Instant::now();
            let v = static_verdict(&row, &model);
            static_t = static_t.min(t.elapsed());
            verdict = Some(v);
        }
        let (certs, stable) = verdict.expect("at least one rep");
        let guarantee_actions: usize = certs.iter().map(|c| c.guarantee.len()).sum();

        // Dynamic side: exhaustive exploration of the merged program.
        let (module, ge, entries) = row.merged();
        let threads = entries.len();
        let loaded = load_client(module, ge, entries);
        let t = Instant::now();
        let drf = check_drf_par(&loaded, &explore_cfg).expect("program loads");
        let explore_t = t.elapsed();
        let explored = if drf.is_drf() {
            if drf.truncated {
                None
            } else {
                Some(true)
            }
        } else {
            Some(false)
        };

        // Soundness: zero false negatives, on every row.
        assert!(
            !(stable && explored == Some(false)),
            "{}: certified stable but exploration found a race",
            row.name
        );
        if stable {
            certifiable += 1;
            speedups_certifiable.push(explore_t.as_secs_f64() / static_t.as_secs_f64());
        } else if explored == Some(true) {
            false_positives += 1;
        }

        let speedup = explore_t.as_secs_f64() / static_t.as_secs_f64();
        let verdicts = format!(
            "static {} / explored {}",
            if stable { "stable" } else { "may-interfere" },
            match explored {
                Some(true) => "drf",
                Some(false) => "race",
                None => "inconclusive",
            }
        );
        println!(
            "  {:<14} {threads:>7} {:>7.1}us {:>10.2}ms {:>10} {:>8.0}x   {verdicts}",
            row.name,
            static_t.as_secs_f64() * 1e6,
            explore_t.as_secs_f64() * 1e3,
            drf.states,
            speedup
        );
        let mut r = String::from("    {");
        write!(
            r,
            "\"name\": \"{}\", \"threads\": {threads}, \"guarantee_actions\": {guarantee_actions}, \
             \"certified_stable\": {stable}, \"explored\": \"{}\", \"static_us\": {:.2}, \
             \"explore_ms\": {:.3}, \"explored_states\": {}, \"speedup\": {speedup:.1}}}",
            row.name,
            match explored {
                Some(true) => "drf",
                Some(false) => "race",
                None => "inconclusive",
            },
            static_t.as_secs_f64() * 1e6,
            explore_t.as_secs_f64() * 1e3,
            drf.states,
        )
        .unwrap();
        rows_json.push(r);
    }
    let median_speedup = median(speedups_certifiable.clone());
    println!(
        "\n  {certifiable} certifiable programs, median speedup {median_speedup:.0}x, \
         {false_positives} static false positives, 0 false negatives (asserted)"
    );

    // --- Incremental certification through the witness cache.
    const MODULES: usize = 20;
    const EDITED: usize = 7;
    let size = if smoke { 6 } else { 10 };
    let programs = sequential_programs(MODULES, size, 0);
    let units = units_of(&programs);
    let disk_dir = Path::new("target").join("ccc-rgcert-cache");
    let _ = std::fs::remove_dir_all(&disk_dir);
    let cache = CompileCache::new()
        .with_disk(&disk_dir)
        .expect("create disk tier");

    let certify_all = |units: &[SepUnit]| -> (Vec<RgCert>, Vec<CertOutcome>) {
        units
            .iter()
            .map(|u| rg_cert_cached(&u.name, &u.module, &u.entries, &model, &cache))
            .unzip()
    };
    let t = Instant::now();
    let (cold_certs, cold_outcomes) = certify_all(&units);
    let link_bad = rg_incompatibilities(&cold_certs);
    let cold_t = t.elapsed();
    assert!(
        cold_outcomes.iter().all(|o| *o == CertOutcome::Miss),
        "cold build must infer every certificate"
    );
    assert!(link_bad.is_empty(), "corpus must be rely-compatible");

    let mut edited_programs = programs;
    edited_programs[EDITED] = sequential_programs(1, size, MODULES).remove(0);
    let edited_units = units_of(&edited_programs);
    cache.reset_stats();
    let t = Instant::now();
    let (incr_certs, incr_outcomes) = certify_all(&edited_units);
    let incr_bad = rg_incompatibilities(&incr_certs);
    let incr_t = t.elapsed();
    let stats = cache.stats();
    assert_eq!(stats.cert_misses, 1, "{stats:?}");
    assert_eq!(stats.cert_hits, (MODULES - 1) as u64, "{stats:?}");
    for (i, o) in incr_outcomes.iter().enumerate() {
        let expect = if i == EDITED {
            CertOutcome::Miss
        } else {
            CertOutcome::Hit
        };
        assert_eq!(*o, expect, "module m{i}");
    }
    assert!(incr_bad.is_empty(), "edited corpus must stay compatible");
    let incr_speedup = cold_t.as_secs_f64() / incr_t.as_secs_f64();
    println!(
        "\nincremental certification: {MODULES} modules, 1 edited\n  \
         cold certify   {:>8.2} ms\n  \
         rebuild        {:>8.2} ms   (1 re-inferred, {} re-checked hits + link check)   {incr_speedup:.1}x",
        cold_t.as_secs_f64() * 1e3,
        incr_t.as_secs_f64() * 1e3,
        MODULES - 1
    );

    // --- Report + gates.
    let mut json = String::from("{\n");
    write!(
        json,
        "  \"bench\": \"rgcert\",\n  \"smoke\": {smoke},\n  \"rows\": [\n{}\n  ],\n  \
         \"certifiable_rows\": {certifiable},\n  \"false_positives\": {false_positives},\n  \
         \"false_negatives\": 0,\n  \"median_speedup_certifiable\": {median_speedup:.1},\n  \
         \"incremental\": {{\"modules\": {MODULES}, \"cold_ms\": {:.3}, \"rebuild_ms\": {:.3}, \
         \"cert_hits\": {}, \"cert_misses\": 1, \"rebuild_speedup\": {incr_speedup:.2}}}\n}}\n",
        rows_json.join(",\n"),
        cold_t.as_secs_f64() * 1e3,
        incr_t.as_secs_f64() * 1e3,
        MODULES - 1,
    )
    .unwrap();
    std::fs::write("BENCH_rgcert.json", &json).expect("write BENCH_rgcert.json");
    println!("\nwrote BENCH_rgcert.json");

    assert!(
        certifiable >= 3,
        "only {certifiable} certifiable programs — corpus too weak for the gate"
    );
    assert!(
        median_speedup >= 10.0,
        "median static-vs-exploration speedup {median_speedup:.1}x below the 10x bar"
    );
}
