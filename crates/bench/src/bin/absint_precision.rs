//! Precision and cost evaluation of the abstract-interpretation
//! framework (`ccc-analysis::absint`).
//!
//! Three measurements:
//!
//! 1. **RTL interval precision** — run the widened fixpoint
//!    ([`analyze_rtl_intervals`]) over the compiled generated corpus and
//!    count what it proves: program points covered, register facts,
//!    bounded (non-TOP) and singleton facts, and two-way branches whose
//!    outcome the intervals decide statically. The closure check
//!    ([`interval_facts_violation`]) re-validates every result, so the
//!    cost column includes what the translation validator pays.
//!
//! 2. **Lockset sharpening** — compare the baseline lockset analysis
//!    against the interval-sharpened variant
//!    ([`check_static_race_sharp`]) on generated clients plus a
//!    dead-branch family: race pairs before/after, false positives
//!    pruned, and the escape classification of every named global.
//!
//! 3. **Exploration impact** — states explored by the ample-set
//!    reduction with and without escape-analysis hints
//!    ([`ample_hints`]) on private-global clients: the "states
//!    before/after" effect of consuming absint results in the
//!    partial-order reduction.
//!
//! Run with: `cargo run --release -p ccc-bench --bin absint_precision`
//! (`--smoke` shrinks the corpus for CI). Results are also written to
//! `BENCH_absint.json` in the current directory.

use ccc_analysis::absint::ival_edges;
use ccc_analysis::{
    ample_hints, analyze_rtl_intervals, check_static_race, check_static_race_sharp,
    interval_facts_violation, LockModel, Sharing, StaticVerdict,
};
use ccc_clight::ast::{Binop, Expr, Function, Stmt};
use ccc_clight::gen::{gen_concurrent_client, gen_module, GenCfg};
use ccc_clight::{ClightLang, ClightModule};
use ccc_compiler::driver::compile_with_artifacts;
use ccc_compiler::rtl::Instr;
use ccc_core::lang::Prog;
use ccc_core::mem::{GlobalEnv, Val};
use ccc_core::race::{check_drf, check_drf_hinted};
use ccc_core::refine::ExploreCfg;
use ccc_core::world::Loaded;
use ccc_core::{AmpleHints, Interval, Reduction};
use ccc_sync::lock::lock_spec;
use std::fmt::Write as _;
use std::time::Instant;

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1000.0
}

#[derive(Default)]
struct RtlStats {
    funcs: usize,
    nodes: usize,
    facts: usize,
    bounded: usize,
    singleton: usize,
    cond_total: usize,
    cond_decided: usize,
    analyze_ms: f64,
    validate_ms: f64,
}

/// The dead-branch client of the lockset tests: thread 1's write to the
/// shared `s` hides in a branch its temp arithmetic rules out.
fn dead_branch_client() -> (ClightModule, Vec<String>) {
    let t0 = Function::simple(Stmt::Assign(Expr::var("s"), Expr::Const(1)));
    let t1 = Function::simple(Stmt::seq([
        Stmt::Set("t".into(), Expr::Const(3)),
        Stmt::If(
            Expr::bin(Binop::Lt, Expr::temp("t"), Expr::Const(2)),
            Box::new(Stmt::Assign(Expr::var("s"), Expr::Const(2))),
            Box::new(Stmt::Skip),
        ),
    ]));
    let m = ClightModule::new([("t0", t0), ("t1", t1)]);
    (m, vec!["t0".to_string(), "t1".to_string()])
}

/// Private-global client: each thread grinds its own global, then reads
/// the shared `s0` (same family as the `exploration` bench).
fn private_client(threads: usize, depth: usize) -> (Loaded<ClightLang>, AmpleHints) {
    let mut ge = GlobalEnv::new();
    ge.define("s0", Val::Int(0));
    let mut funcs = Vec::new();
    let mut entries = Vec::new();
    for t in 0..threads {
        let p = format!("p{t}");
        ge.define(p.clone(), Val::Int(0));
        let mut body = Vec::new();
        for _ in 0..depth {
            body.push(Stmt::Assign(
                Expr::var(p.clone()),
                Expr::add(Expr::var(p.clone()), Expr::Const(1)),
            ));
        }
        body.push(Stmt::Set("o".into(), Expr::var("s0")));
        body.push(Stmt::Return(None));
        let name = format!("w{t}");
        funcs.push((name.clone(), Function::simple(Stmt::seq(body))));
        entries.push(name);
    }
    let client = ClightModule::new(funcs);
    let hints = ample_hints(&client, &entries, &LockModel::default(), &ge);
    let loaded =
        Loaded::new(Prog::new(ClightLang, vec![(client, ge)], entries)).expect("client links");
    (loaded, hints)
}

fn pairs_of(v: &StaticVerdict) -> usize {
    match v {
        StaticVerdict::StaticDrf => 0,
        StaticVerdict::MayRace(ps) => ps.len(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // -----------------------------------------------------------------
    // 1. RTL interval precision over the compiled generated corpus.
    // -----------------------------------------------------------------
    let seeds = if smoke { 8 } else { 40 };
    let mut rtl = RtlStats::default();
    for seed in 0..seeds {
        let (m, _) = gen_module(seed, &GenCfg::default());
        let arts = compile_with_artifacts(&m).expect("compiles");
        for f in arts.rtl_renumber.funcs.values() {
            let t = Instant::now();
            let facts = analyze_rtl_intervals(f);
            rtl.analyze_ms += ms(t);
            let t = Instant::now();
            assert_eq!(
                interval_facts_violation(f, &facts),
                None,
                "seed {seed}: analysis not edge-closed"
            );
            rtl.validate_ms += ms(t);
            rtl.funcs += 1;
            rtl.nodes += facts.len();
            for (n, env) in &facts {
                rtl.facts += env.len();
                rtl.bounded += env.values().filter(|iv| **iv != Interval::TOP).count();
                rtl.singleton += env.values().filter(|iv| iv.as_const().is_some()).count();
                if let Some(i @ (Instr::Cond(..) | Instr::CondImm(..))) = f.code.get(n) {
                    rtl.cond_total += 1;
                    if ival_edges(i, env).len() == 1 {
                        rtl.cond_decided += 1;
                    }
                }
            }
        }
    }
    println!(
        "RTL interval analysis ({seeds} generated modules, {} functions)",
        rtl.funcs
    );
    println!(
        "  {} program points, {} register facts ({} bounded, {} singleton)",
        rtl.nodes, rtl.facts, rtl.bounded, rtl.singleton
    );
    println!(
        "  {}/{} two-way branches statically decided",
        rtl.cond_decided, rtl.cond_total
    );
    println!(
        "  analyze {:.2} ms, closure re-validation {:.2} ms\n",
        rtl.analyze_ms, rtl.validate_ms
    );
    assert!(rtl.bounded > 0, "interval analysis proved nothing");

    // -----------------------------------------------------------------
    // 2. Lockset sharpening: pairs before/after, false positives pruned.
    // -----------------------------------------------------------------
    let (lock_obj, _) = lock_spec("L");
    let lock_model = ccc_analysis::infer_lock_model(&lock_obj);
    let client_seeds = if smoke { 4 } else { 10 };
    let (mut base_pairs, mut sharp_pairs, mut pruned) = (0usize, 0usize, 0usize);
    let (mut base_ms, mut sharp_ms) = (0f64, 0f64);
    let mut escape_hist = [0usize; 4]; // thread-local, lock-protected, atomic-only, shared-free
    let mut programs = 0usize;
    let mut lockset_rows: Vec<(String, usize, usize, usize)> = Vec::new();
    let mut run_lockset =
        |name: String, client: &ClightModule, entries: &[String], model: &LockModel| {
            let t = Instant::now();
            let base = check_static_race(client, entries, model);
            base_ms += ms(t);
            let t = Instant::now();
            let sharp = check_static_race_sharp(client, entries, model);
            sharp_ms += ms(t);
            let (b, s, p) = (
                pairs_of(&base.verdict),
                pairs_of(&sharp.report.verdict),
                sharp.pruned.len(),
            );
            assert!(s <= b, "{name}: sharpening added pairs");
            base_pairs += b;
            sharp_pairs += s;
            pruned += p;
            for class in sharp.escape.globals.values() {
                let i = match class {
                    Sharing::ThreadLocal(_) => 0,
                    Sharing::LockProtected(_) => 1,
                    Sharing::AtomicOnly => 2,
                    Sharing::SharedFree => 3,
                };
                escape_hist[i] += 1;
            }
            programs += 1;
            lockset_rows.push((name, b, s, p));
        };
    for seed in 0..client_seeds {
        for racy in [false, true] {
            let (client, _, entries) = gen_concurrent_client(seed, 2, &["s0", "s1"], racy);
            let tag = if racy { "racy" } else { "locked" };
            run_lockset(format!("gen/s{seed}-{tag}"), &client, &entries, &lock_model);
        }
    }
    let (dead, dead_entries) = dead_branch_client();
    run_lockset(
        "dead-branch".to_string(),
        &dead,
        &dead_entries,
        &LockModel::default(),
    );
    println!("Lockset sharpening ({programs} programs)");
    println!(
        "  race pairs: {base_pairs} baseline -> {sharp_pairs} sharp ({pruned} false positives pruned)"
    );
    println!(
        "  escape classes: {} thread-local, {} lock-protected, {} atomic-only, {} shared-free",
        escape_hist[0], escape_hist[1], escape_hist[2], escape_hist[3]
    );
    println!("  baseline {base_ms:.2} ms, sharp {sharp_ms:.2} ms\n");
    assert!(pruned > 0, "the dead-branch family must prune a pair");

    // -----------------------------------------------------------------
    // 3. Exploration impact: ample states with and without hints.
    // -----------------------------------------------------------------
    let cfg = ExploreCfg {
        fuel: 400,
        max_states: 2_000_000,
        reduction: Reduction::Ample,
        threads: 1,
        ..Default::default()
    };
    let specs: &[(usize, usize)] = if smoke {
        &[(3, 2)]
    } else {
        &[(2, 4), (3, 3), (4, 2)]
    };
    let mut explore_rows = Vec::new();
    println!("Exploration impact (ample reduction, states before/after hints)");
    for &(threads, depth) in specs {
        let (loaded, hints) = private_client(threads, depth);
        let t = Instant::now();
        let plain = check_drf(&loaded, &cfg).expect("loads");
        let plain_ms = ms(t);
        let t = Instant::now();
        let hinted = check_drf_hinted(&loaded, &cfg, &hints).expect("loads");
        let hinted_ms = ms(t);
        assert!(plain.is_drf() && hinted.is_drf(), "family must be DRF");
        assert!(
            hinted.states <= plain.states,
            "{threads}t-d{depth}: hints cost states"
        );
        println!(
            "  {threads}t-d{depth}: {} -> {} states ({:.1}x), {plain_ms:.2} -> {hinted_ms:.2} ms",
            plain.states,
            hinted.states,
            plain.states as f64 / hinted.states.max(1) as f64,
        );
        explore_rows.push((
            threads,
            depth,
            plain.states,
            hinted.states,
            plain_ms,
            hinted_ms,
        ));
    }

    // -----------------------------------------------------------------
    // JSON artifact.
    // -----------------------------------------------------------------
    let mut json = String::from("{\n");
    write!(json, "  \"bench\": \"absint\",\n  \"smoke\": {smoke},\n").unwrap();
    writeln!(
        json,
        "  \"rtl_intervals\": {{\"seeds\": {}, \"funcs\": {}, \"nodes\": {}, \"facts\": {}, \
         \"bounded\": {}, \"singleton\": {}, \"branches\": {}, \"branches_decided\": {}, \
         \"analyze_ms\": {:.3}, \"validate_ms\": {:.3}}},",
        seeds,
        rtl.funcs,
        rtl.nodes,
        rtl.facts,
        rtl.bounded,
        rtl.singleton,
        rtl.cond_total,
        rtl.cond_decided,
        rtl.analyze_ms,
        rtl.validate_ms
    )
    .unwrap();
    writeln!(
        json,
        "  \"lockset\": {{\"programs\": {programs}, \"base_pairs\": {base_pairs}, \
         \"sharp_pairs\": {sharp_pairs}, \"pruned\": {pruned}, \
         \"escape\": {{\"thread_local\": {}, \"lock_protected\": {}, \"atomic_only\": {}, \
         \"shared_free\": {}}}, \"base_ms\": {base_ms:.3}, \"sharp_ms\": {sharp_ms:.3}, \
         \"rows\": [",
        escape_hist[0], escape_hist[1], escape_hist[2], escape_hist[3]
    )
    .unwrap();
    for (i, (name, b, s, p)) in lockset_rows.iter().enumerate() {
        write!(
            json,
            "    {{\"name\": \"{name}\", \"base_pairs\": {b}, \"sharp_pairs\": {s}, \"pruned\": {p}}}{}",
            if i + 1 < lockset_rows.len() { ",\n" } else { "\n" }
        )
        .unwrap();
    }
    json.push_str("  ]},\n  \"exploration\": [\n");
    for (i, (t, d, before, after, bms, ams)) in explore_rows.iter().enumerate() {
        write!(
            json,
            "    {{\"name\": \"absint/{t}t-d{d}\", \"states_before\": {before}, \
             \"states_after\": {after}, \"reduction_x\": {:.2}, \
             \"ms_before\": {bms:.3}, \"ms_after\": {ams:.3}}}{}",
            *before as f64 / (*after).max(1) as f64,
            if i + 1 < explore_rows.len() {
                ",\n"
            } else {
                "\n"
            }
        )
        .unwrap();
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_absint.json", &json).expect("write BENCH_absint.json");
    println!("\nwrote BENCH_absint.json");
}
