//! Static analysis vs dynamic semantics, head to head.
//!
//! Two comparisons over the generated corpus:
//!
//! 1. **Footprints (sequential)** — the instrumented interpreter runs
//!    each generated module and accumulates its concrete footprint; the
//!    static analyses ([`infer_clight`], [`infer_rtl`]) infer abstract
//!    footprints for the same code without running it. We check the
//!    soundness contract (dynamic ⊆ static) and compare the costs.
//!
//! 2. **Races (concurrent)** — for locked and racy generated clients,
//!    the lockset analysis produces a `StaticDrf`/`MayRace` verdict from
//!    the program text, while `check_drf` explores every interleaving of
//!    the instrumented semantics. We check that the verdicts agree and
//!    compare analysis time against exhaustive exploration.
//!
//! Run with: `cargo run --release -p ccc-bench --bin static_vs_dynamic`

use ccc_analysis::{check_static_race, infer_clight, infer_lock_model, infer_rtl};
use ccc_bench::corpus::concurrent_source_with;
use ccc_clight::gen::{gen_module, GenCfg};
use ccc_clight::ClightLang;
use ccc_compiler::driver::compile_with_artifacts;
use ccc_core::race::check_drf;
use ccc_core::refine::ExploreCfg;
use ccc_core::world::run_main_traced;
use std::time::{Duration, Instant};

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

fn main() {
    const SEQ_SEEDS: u64 = 20;
    println!("Footprints: static inference vs instrumented execution");
    println!("({SEQ_SEEDS} generated sequential modules)\n");
    let (mut t_infer, mut t_exec) = (Duration::ZERO, Duration::ZERO);
    let mut dynamic_cells = 0usize;
    for seed in 0..SEQ_SEEDS {
        let (m, ge) = gen_module(seed, &GenCfg::default());
        let arts = compile_with_artifacts(&m).expect("compiles");

        let t = Instant::now();
        let cs = infer_clight(&m);
        let rs = infer_rtl(&arts.rtl);
        t_infer += t.elapsed();

        let t = Instant::now();
        let (_, _, _, fp) =
            run_main_traced(&ClightLang, &m, &ge, "f", &[], 1_000_000).expect("terminates");
        t_exec += t.elapsed();

        dynamic_cells += fp.locs().len();
        let c = cs.footprint("f").expect("clight summary");
        let r = rs.footprint("f").expect("rtl summary");
        assert!(c.covers(&ge, &fp), "seed {seed}: Clight footprint unsound");
        assert!(r.covers(&ge, &fp), "seed {seed}: RTL footprint unsound");
    }
    println!(
        "  static inference (Clight + RTL): {:>8.2} ms total",
        ms(t_infer)
    );
    println!(
        "  instrumented execution:          {:>8.2} ms total",
        ms(t_exec)
    );
    println!("  dynamic ⊆ static held on all {SEQ_SEEDS} seeds ({dynamic_cells} concrete cells checked)\n");

    const RACE_SEEDS: u64 = 6;
    const THREADS: usize = 2;
    println!("Races: lockset analysis vs exhaustive interleaving exploration");
    println!("({RACE_SEEDS} seeds × {{locked, racy}}, {THREADS} threads)\n");
    println!(
        "{:<6} {:<7} | {:<10} {:>11} | {:<10} {:>8} {:>11} | {:>8}",
        "seed", "client", "static", "t_static", "dynamic", "states", "t_explore", "speedup"
    );
    println!("{}", "-".repeat(88));
    let cfg = ExploreCfg::default();
    let (mut t_stat_tot, mut t_dyn_tot) = (Duration::ZERO, Duration::ZERO);
    for seed in 0..RACE_SEEDS {
        for racy in [false, true] {
            let (loaded, client, _ge, entries) = concurrent_source_with(seed, THREADS, racy);
            let (lock, _) = ccc_sync::lock::lock_spec("L");

            let t = Instant::now();
            let model = infer_lock_model(&lock);
            let report = check_static_race(&client, &entries, &model);
            let t_static = t.elapsed();

            let t = Instant::now();
            let drf = check_drf(&loaded, &cfg).expect("source loads");
            let t_dyn = t.elapsed();

            assert!(!drf.truncated, "seed {seed}: exploration truncated");
            assert_eq!(
                report.is_drf(),
                drf.is_drf(),
                "seed {seed} racy={racy}: verdicts disagree"
            );
            t_stat_tot += t_static;
            t_dyn_tot += t_dyn;
            println!(
                "{:<6} {:<7} | {:<10} {:>9.3}ms | {:<10} {:>8} {:>9.2}ms | {:>7.0}x",
                seed,
                if racy { "racy" } else { "locked" },
                if report.is_drf() {
                    "StaticDrf"
                } else {
                    "MayRace"
                },
                ms(t_static),
                if drf.is_drf() { "drf" } else { "race" },
                drf.states,
                ms(t_dyn),
                t_dyn.as_secs_f64() / t_static.as_secs_f64().max(1e-9),
            );
        }
    }
    println!("{}", "-".repeat(88));
    println!(
        "{:<14} | {:>21.2}ms | {:>31.2}ms |",
        "total",
        ms(t_stat_tot),
        ms(t_dyn_tot)
    );
    println!(
        "\nVerdicts agreed on every program; the analysis is ~{:.0}x faster than",
        t_dyn_tot.as_secs_f64() / t_stat_tot.as_secs_f64().max(1e-9)
    );
    println!("exploration at 2 threads, and its cost is independent of thread count.");
}
