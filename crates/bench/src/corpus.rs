//! Shared program corpus for the evaluation harness.

use ccc_cimp::CImpLang;
use ccc_clight::gen::{gen_concurrent_client, gen_module, GenCfg};
use ccc_clight::{ClightLang, ClightModule};
use ccc_core::lang::{ModuleDecl, Prog, Sum, SumLang};
use ccc_core::mem::GlobalEnv;
use ccc_core::world::Loaded;
use ccc_machine::X86Sc;
use ccc_sync::lock::lock_spec;

/// Source programs: Clight clients + CImp lock object.
pub type SrcLang = SumLang<ClightLang, CImpLang>;
/// Target programs: compiled x86-SC clients + CImp lock object.
pub type TgtLang = SumLang<X86Sc, CImpLang>;

/// A generated sequential module plus its globals (pipeline workloads).
pub fn sequential_modules(n: usize) -> Vec<(ClightModule, GlobalEnv)> {
    (0..n as u64)
        .map(|s| gen_module(s, &GenCfg::default()))
        .collect()
}

/// A larger sequential module (scaled generator) for throughput-style
/// pass benchmarks.
pub fn big_module(seed: u64, scale: usize) -> (ClightModule, GlobalEnv) {
    gen_module(
        seed,
        &GenCfg {
            block_len: 4 + scale,
            depth: 3,
            num_temps: 4 + scale,
            num_vars: 2 + scale / 2,
            ..Default::default()
        },
    )
}

/// Builds the cross-language source program for a generated concurrent
/// client (threads synchronized through the CImp lock).
pub fn concurrent_source(
    seed: u64,
    threads: usize,
) -> (Loaded<SrcLang>, ClightModule, GlobalEnv, Vec<String>) {
    concurrent_source_with(seed, threads, false)
}

/// Like [`concurrent_source`], but optionally dropping the lock calls to
/// produce a racy client (used by the race-analysis evaluation).
pub fn concurrent_source_with(
    seed: u64,
    threads: usize,
    racy: bool,
) -> (Loaded<SrcLang>, ClightModule, GlobalEnv, Vec<String>) {
    let (client, ge, entries) = gen_concurrent_client(seed, threads, &["s0", "s1"], racy);
    let (lock, lock_ge) = lock_spec("L");
    let loaded = Loaded::new(Prog {
        lang: SumLang(ClightLang, CImpLang),
        modules: vec![
            ModuleDecl {
                code: Sum::L(client.clone()),
                ge: ge.clone(),
            },
            ModuleDecl {
                code: Sum::R(lock),
                ge: lock_ge,
            },
        ],
        entries: entries.clone(),
    })
    .expect("source links");
    (loaded, client, ge, entries)
}

/// Builds the target program from a compiled client.
pub fn concurrent_target(
    client_asm: ccc_machine::AsmModule,
    ge: GlobalEnv,
    entries: Vec<String>,
) -> Loaded<TgtLang> {
    let (lock, lock_ge) = lock_spec("L");
    Loaded::new(Prog {
        lang: SumLang(X86Sc, CImpLang),
        modules: vec![
            ModuleDecl {
                code: Sum::L(client_asm),
                ge,
            },
            ModuleDecl {
                code: Sum::R(lock),
                ge: lock_ge,
            },
        ],
        entries,
    })
    .expect("target links")
}
