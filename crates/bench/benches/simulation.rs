//! Criterion benchmarks for the footprint-preserving simulation checker
//! (Defs. 2-3): per-pass and end-to-end validation cost.

use ccc_bench::corpus::big_module;
use ccc_compiler::driver::compile_with_artifacts;
use ccc_compiler::verif::{verify_end_to_end, verify_passes};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_simulation(c: &mut Criterion) {
    let (m, ge) = big_module(5, 2);
    let arts = compile_with_artifacts(&m).expect("compiles");

    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("all_passes", |b| {
        b.iter(|| {
            for v in verify_passes(std::hint::black_box(&arts), &ge, "f") {
                assert!(v.ok());
            }
        })
    });
    group.bench_function("end_to_end", |b| {
        b.iter(|| verify_end_to_end(std::hint::black_box(&arts), &ge, "f").unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
