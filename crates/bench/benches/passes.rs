//! Criterion benchmarks for the compilation passes (the Fig. 11
//! pipeline): per-pass transformation time over generated modules of
//! growing size.

use ccc_bench::corpus::big_module;
use ccc_compiler::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_passes");
    group.sample_size(20);
    let (m, _ge) = big_module(42, 4);
    let arts = compile_with_artifacts(&m).expect("compiles");

    group.bench_function("Cshmgen/Cminorgen", |b| {
        b.iter(|| cminorgen::cminorgen(std::hint::black_box(&m)).unwrap())
    });
    group.bench_function("Selection", |b| {
        b.iter(|| selection::selection(std::hint::black_box(&arts.cminor)))
    });
    group.bench_function("RTLgen", |b| {
        b.iter(|| rtlgen::rtlgen(std::hint::black_box(&arts.cminorsel)))
    });
    group.bench_function("Tailcall", |b| {
        b.iter(|| tailcall::tailcall(std::hint::black_box(&arts.rtl)))
    });
    group.bench_function("Renumber", |b| {
        b.iter(|| renumber::renumber(std::hint::black_box(&arts.rtl_tailcall)))
    });
    group.bench_function("Allocation", |b| {
        b.iter(|| allocation::allocation(std::hint::black_box(&arts.rtl_renumber)))
    });
    group.bench_function("Tunneling", |b| {
        b.iter(|| tunneling::tunneling(std::hint::black_box(&arts.ltl)))
    });
    group.bench_function("Linearize", |b| {
        b.iter(|| linearize::linearize(std::hint::black_box(&arts.ltl_tunneled)))
    });
    group.bench_function("CleanupLabels", |b| {
        b.iter(|| cleanuplabels::cleanup_labels(std::hint::black_box(&arts.linear)))
    });
    group.bench_function("Stacking", |b| {
        b.iter(|| stacking::stacking(std::hint::black_box(&arts.linear_clean)).unwrap())
    });
    group.bench_function("Asmgen", |b| {
        b.iter(|| asmgen::asmgen(std::hint::black_box(&arts.mach)).unwrap())
    });
    group.bench_function("Constprop (extension)", |b| {
        b.iter(|| constprop::constprop(std::hint::black_box(&arts.rtl_renumber)))
    });
    group.finish();

    // Ablation: the optimized pipeline (with Constprop) vs the standard
    // one, end to end.
    let mut group = c.benchmark_group("constprop_ablation");
    group.sample_size(10);
    group.bench_function("compile", |b| {
        b.iter(|| compile(std::hint::black_box(&m)).unwrap())
    });
    group.bench_function("compile_optimized", |b| {
        b.iter(|| driver::compile_optimized(std::hint::black_box(&m)).unwrap())
    });
    group.finish();

    // Whole-pipeline throughput vs program size.
    let mut group = c.benchmark_group("pipeline_scaling");
    group.sample_size(10);
    for scale in [1usize, 4, 8] {
        let (m, _) = big_module(7, scale);
        group.bench_with_input(BenchmarkId::from_parameter(scale), &m, |b, m| {
            b.iter(|| compile(std::hint::black_box(m)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);
