//! Criterion benchmarks for the x86-TSO machine and the extended
//! framework: SC vs TSO exploration of the SB litmus and of the TTAS
//! lock counter (Fig. 3's workload).

use ccc_core::lang::Prog;
use ccc_core::mem::{GlobalEnv, Val};
use ccc_core::refine::{collect_traces, ExploreCfg, Preemptive};
use ccc_core::world::Loaded;
use ccc_machine::{AsmFunc, AsmModule, Instr, MemArg, Operand, Reg, X86Sc, X86Tso};
use ccc_sync::drf_guarantee::check_drf_guarantee;
use ccc_sync::lock::{lock_impl, lock_spec};
use criterion::{criterion_group, criterion_main, Criterion};

fn sb_module() -> (AsmModule, GlobalEnv, Vec<String>) {
    let mk = |mine: &str, theirs: &str| AsmFunc {
        code: vec![
            Instr::Store(MemArg::Global(mine.into(), 0), Operand::Imm(1)),
            Instr::Load(Reg::Ecx, MemArg::Global(theirs.into(), 0)),
            Instr::Print(Reg::Ecx),
            Instr::Mov(Reg::Eax, Operand::Imm(0)),
            Instr::Ret,
        ],
        frame_slots: 0,
        arity: 0,
    };
    let mut ge = GlobalEnv::new();
    ge.define("x", Val::Int(0));
    ge.define("y", Val::Int(0));
    (
        AsmModule::new([("t1", mk("x", "y")), ("t2", mk("y", "x"))]),
        ge,
        vec!["t1".into(), "t2".into()],
    )
}

fn bench_tso(c: &mut Criterion) {
    let cfg = ExploreCfg::default();
    let (m, ge, entries) = sb_module();
    let sc = Loaded::new(Prog::new(
        X86Sc,
        vec![(m.clone(), ge.clone())],
        entries.clone(),
    ))
    .unwrap();
    let tso = Loaded::new(Prog::new(
        X86Tso,
        vec![(m.clone(), ge.clone())],
        entries.clone(),
    ))
    .unwrap();

    let mut group = c.benchmark_group("sb_litmus");
    group.sample_size(10);
    group.bench_function("x86_sc", |b| {
        b.iter(|| collect_traces(&Preemptive(&sc), &cfg).unwrap())
    });
    group.bench_function("x86_tso", |b| {
        b.iter(|| collect_traces(&Preemptive(&tso), &cfg).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("drf_guarantee");
    group.sample_size(10);
    let (spec, spec_ge) = lock_spec("L");
    let (imp, imp_ge) = lock_impl("L");
    let obj = ccc_sync::SyncObject {
        spec,
        spec_ge,
        impl_asm: imp,
        impl_ge: imp_ge,
    };
    let client = AsmFunc {
        code: vec![
            Instr::Call("lock".into(), 0),
            Instr::Load(Reg::Ecx, MemArg::Global("x".into(), 0)),
            Instr::Add(Reg::Ecx, Operand::Imm(1)),
            Instr::Store(MemArg::Global("x".into(), 0), Operand::Reg(Reg::Ecx)),
            Instr::Call("unlock".into(), 0),
            Instr::Mov(Reg::Eax, Operand::Imm(0)),
            Instr::Ret,
        ],
        frame_slots: 0,
        arity: 0,
    };
    let clients = AsmModule::new([("t1", client.clone()), ("t2", client)]);
    let mut cge = GlobalEnv::new();
    cge.define("x", Val::Int(0));
    let entries = vec!["t1".to_string(), "t2".to_string()];
    let lcfg = ExploreCfg {
        fuel: 200,
        max_states: 2_000_000,
        ..Default::default()
    };
    group.bench_function("lock_counter_lemma16", |b| {
        b.iter(|| {
            let r = check_drf_guarantee(&clients, &cge, &entries, &obj, &lcfg).unwrap();
            assert!(r.holds());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tso);
criterion_main!(benches);
