//! Criterion benchmarks contrasting preemptive and non-preemptive
//! exploration (the quantitative content behind Lem. 9 / the paper's
//! reliance on non-preemptive semantics), plus DRF checking.

use ccc_core::lang::Prog;
use ccc_core::race::{check_drf, check_npdrf};
use ccc_core::refine::{collect_traces, count_states, ExploreCfg, NonPreemptive, Preemptive};
use ccc_core::toy::{toy_globals, toy_module, ToyInstr as I, ToyLang};
use ccc_core::world::Loaded;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn worker_body() -> Vec<I> {
    vec![
        I::Const(0),
        I::Add(1),
        I::Add(2),
        I::EntAtom,
        I::LoadG("x".into()),
        I::Add(1),
        I::StoreG("x".into()),
        I::ExtAtom,
        I::Ret(0),
    ]
}

fn program(threads: usize) -> Loaded<ToyLang> {
    let names: Vec<String> = (0..threads).map(|i| format!("t{i}")).collect();
    let funcs: Vec<(&str, Vec<I>)> = names.iter().map(|n| (n.as_str(), worker_body())).collect();
    let (m, _) = toy_module(&funcs, &[]);
    Loaded::new(Prog::new(
        ToyLang,
        vec![(m, toy_globals(&[("x", 0)]))],
        names,
    ))
    .expect("link")
}

fn bench_exploration(c: &mut Criterion) {
    let cfg = ExploreCfg::default();

    let mut group = c.benchmark_group("state_space");
    group.sample_size(10);
    for threads in [2usize, 3] {
        let prog = program(threads);
        group.bench_with_input(BenchmarkId::new("preemptive", threads), &prog, |b, p| {
            b.iter(|| count_states(&Preemptive(p), &cfg).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("non_preemptive", threads),
            &prog,
            |b, p| b.iter(|| count_states(&NonPreemptive(p), &cfg).unwrap()),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("traces");
    group.sample_size(10);
    let prog = program(2);
    group.bench_function("preemptive", |b| {
        b.iter(|| collect_traces(&Preemptive(&prog), &cfg).unwrap())
    });
    group.bench_function("non_preemptive", |b| {
        b.iter(|| collect_traces(&NonPreemptive(&prog), &cfg).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("race_check");
    group.sample_size(10);
    group.bench_function("drf", |b| b.iter(|| check_drf(&prog, &cfg).unwrap()));
    group.bench_function("npdrf", |b| b.iter(|| check_npdrf(&prog, &cfg).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_exploration);
criterion_main!(benches);
