//! The `Selection` pass: Cminor → CminorSel (Fig. 11/12 of the paper).
//!
//! Instruction selection rewrites Clight-level operators into machine
//! operators, folds constants (including immediate forms `AddImm`,
//! `MulImm`, `CmpImm`), and sinks address arithmetic into addressing
//! modes. This is the pass the paper uses to illustrate footprint
//! adaptation (`sel_expr_correct`, Fig. 12): the selected expression
//! must evaluate to the same value with the *same or smaller* footprint
//! — smaller, for instance, when `e * 0` folds to `0` and `e`'s loads
//! disappear.

use crate::cminor;
use crate::cminorsel::{self, Expr as SelExpr};
use crate::ops::{AddrMode, Cmp, Op};
use crate::stmt_sem::{Function, Stmt, StmtModule};
use ccc_clight::ast::{Binop, Unop};

/// Which seeded bug (if any) a selection run carries — see
/// [`crate::mutant`].
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mx {
    /// The real pass.
    Clean,
    /// `x - c` selects as `x + c` (the negation is dropped).
    SubSign,
    /// `c ? x` selects as `CmpImm(?, c)` without swapping the
    /// comparison, so `0 < x` becomes `x < 0`.
    CmpSwap,
}

/// Selects an address expression into an addressing mode.
fn select_addr(e: &cminor::Expr, mx: Mx) -> AddrMode<Box<SelExpr>> {
    use cminor::Expr as E;
    match e {
        E::AddrGlobal(g) => AddrMode::Global(g.clone(), 0),
        E::AddrStack(n) => AddrMode::Stack(*n),
        // (&g + c) and (e + c) fold the constant into the mode.
        E::Binop(Binop::Add, a, b) => match (a.as_ref(), b.as_ref()) {
            (E::AddrGlobal(g), E::Const(c)) | (E::Const(c), E::AddrGlobal(g)) if *c >= 0 => {
                AddrMode::Global(g.clone(), *c as u64)
            }
            (inner, E::Const(c)) | (E::Const(c), inner) => {
                AddrMode::Based(Box::new(select_expr_in(inner, mx)), *c)
            }
            _ => AddrMode::Based(Box::new(select_expr_in(e, mx)), 0),
        },
        other => AddrMode::Based(Box::new(select_expr_in(other, mx)), 0),
    }
}

/// The constant value of a selected expression, if it is one.
fn as_const(e: &SelExpr) -> Option<i64> {
    match e {
        SelExpr::Op(Op::Const(i), _) => Some(*i),
        _ => None,
    }
}

fn cmp_of(op: Binop) -> Option<Cmp> {
    Some(match op {
        Binop::Eq => Cmp::Eq,
        Binop::Ne => Cmp::Ne,
        Binop::Lt => Cmp::Lt,
        Binop::Le => Cmp::Le,
        Binop::Gt => Cmp::Gt,
        Binop::Ge => Cmp::Ge,
        _ => return None,
    })
}

/// Selects one expression (`sel_expr` of Fig. 12).
pub fn select_expr(e: &cminor::Expr) -> SelExpr {
    select_expr_in(e, Mx::Clean)
}

fn select_expr_in(e: &cminor::Expr, mx: Mx) -> SelExpr {
    use cminor::Expr as E;
    match e {
        E::Const(i) => SelExpr::imm(*i),
        E::Temp(t) => SelExpr::Temp(t.clone()),
        E::AddrGlobal(g) => SelExpr::Op(Op::AddrGlobal(g.clone(), 0), vec![]),
        E::AddrStack(n) => SelExpr::Op(Op::AddrStack(*n), vec![]),
        E::Load(a) => SelExpr::Load(select_addr(a, mx)),
        E::Unop(op, a) => {
            let sa = select_expr_in(a, mx);
            match (op, as_const(&sa)) {
                (Unop::Neg, Some(c)) => SelExpr::imm(c.wrapping_neg()),
                (Unop::Not, Some(c)) => SelExpr::imm(i64::from(c == 0)),
                (Unop::Neg, None) => SelExpr::Op(Op::Neg, vec![sa]),
                (Unop::Not, None) => SelExpr::Op(Op::Not, vec![sa]),
            }
        }
        E::Binop(op, a, b) => select_binop(*op, select_expr_in(a, mx), select_expr_in(b, mx), mx),
    }
}

fn select_binop(op: Binop, sa: SelExpr, sb: SelExpr, mx: Mx) -> SelExpr {
    let (ca, cb) = (as_const(&sa), as_const(&sb));
    // Full constant folding.
    if let (Some(x), Some(y)) = (ca, cb) {
        if let Some(v) =
            ccc_clight::sem::eval_binop(op, ccc_core::mem::Val::Int(x), ccc_core::mem::Val::Int(y))
        {
            if let Some(i) = v.as_int() {
                return SelExpr::imm(i);
            }
        }
    }
    match (op, ca, cb) {
        // Immediate forms. `x + c`, `c + x`, `x - c` → AddImm.
        (Binop::Add, Some(c), None) => SelExpr::Op(Op::AddImm(c), vec![sb]),
        (Binop::Add, None, Some(c)) => SelExpr::Op(Op::AddImm(c), vec![sa]),
        // `mx` is the seeded bug for mutation scoring: the immediate's
        // negation is dropped, so `x - c` selects as `x + c`.
        (Binop::Sub, None, Some(c)) if c != i64::MIN => {
            SelExpr::Op(Op::AddImm(if mx == Mx::SubSign { c } else { -c }), vec![sa])
        }
        // `x * 0` → 0: the classic footprint-shrinking strength
        // reduction (safe for Safe sources; see module docs).
        (Binop::Mul, None, Some(0)) | (Binop::Mul, Some(0), None) => SelExpr::imm(0),
        (Binop::Mul, Some(c), None) => SelExpr::Op(Op::MulImm(c), vec![sb]),
        (Binop::Mul, None, Some(c)) => SelExpr::Op(Op::MulImm(c), vec![sa]),
        // Comparisons against an immediate.
        (op, None, Some(c)) if cmp_of(op).is_some() => {
            SelExpr::Op(Op::CmpImm(cmp_of(op).expect("checked"), c), vec![sa])
        }
        (op, Some(c), None) if cmp_of(op).is_some() => {
            let cmp = cmp_of(op).expect("checked");
            let cmp = if mx == Mx::CmpSwap { cmp } else { cmp.swap() };
            SelExpr::Op(Op::CmpImm(cmp, c), vec![sb])
        }
        // General register-register forms.
        (Binop::Add, ..) => SelExpr::Op(Op::Add, vec![sa, sb]),
        (Binop::Sub, ..) => SelExpr::Op(Op::Sub, vec![sa, sb]),
        (Binop::Mul, ..) => SelExpr::Op(Op::Mul, vec![sa, sb]),
        (Binop::Div, ..) => SelExpr::Op(Op::Div, vec![sa, sb]),
        (Binop::And, ..) => SelExpr::Op(Op::And, vec![sa, sb]),
        (Binop::Or, ..) => SelExpr::Op(Op::Or, vec![sa, sb]),
        (Binop::Xor, ..) => SelExpr::Op(Op::Xor, vec![sa, sb]),
        (op, ..) => SelExpr::Op(
            Op::Cmp(cmp_of(op).expect("remaining ops compare")),
            vec![sa, sb],
        ),
    }
}

fn select_stmt(s: &cminor::Stmt, mx: Mx) -> cminorsel::Stmt {
    match s {
        Stmt::Skip => Stmt::Skip,
        Stmt::Set(t, e) => Stmt::Set(t.clone(), select_expr_in(e, mx)),
        Stmt::Store(a, v) => {
            // Stores go through a selected addressing mode, expressed as
            // a Based/Global/Stack load-address on the lvalue side. The
            // statement layer keeps `Store(addr_expr, val)`, so fold the
            // mode back into an address expression.
            let am = select_addr(a, mx);
            let addr_expr = match am {
                AddrMode::Global(g, o) => SelExpr::Op(Op::AddrGlobal(g, o), vec![]),
                AddrMode::Stack(n) => SelExpr::Op(Op::AddrStack(n), vec![]),
                AddrMode::Based(e, 0) => *e,
                AddrMode::Based(e, d) => SelExpr::Op(Op::AddImm(d), vec![*e]),
            };
            Stmt::Store(addr_expr, select_expr_in(v, mx))
        }
        Stmt::Call(dst, f, args) => Stmt::Call(
            dst.clone(),
            f.clone(),
            args.iter().map(|a| select_expr_in(a, mx)).collect(),
        ),
        Stmt::Print(e) => Stmt::Print(select_expr_in(e, mx)),
        Stmt::Seq(ss) => Stmt::Seq(ss.iter().map(|s| select_stmt(s, mx)).collect()),
        Stmt::If(c, a, b) => Stmt::If(
            select_expr_in(c, mx),
            Box::new(select_stmt(a, mx)),
            Box::new(select_stmt(b, mx)),
        ),
        Stmt::While(c, b) => Stmt::While(select_expr_in(c, mx), Box::new(select_stmt(b, mx))),
        Stmt::Break => Stmt::Break,
        Stmt::Continue => Stmt::Continue,
        Stmt::Return(e) => Stmt::Return(e.as_ref().map(|e| select_expr_in(e, mx))),
    }
}

fn selection_with(m: &cminor::CminorModule, mx: Mx) -> cminorsel::CminorSelModule {
    StmtModule {
        funcs: crate::pass_util::map_functions_total(&m.funcs, |f| Function {
            params: f.params.clone(),
            stack_slots: f.stack_slots,
            body: select_stmt(&f.body, mx),
        }),
    }
}

/// Runs selection over a whole module.
pub fn selection(m: &cminor::CminorModule) -> cminorsel::CminorSelModule {
    selection_with(m, Mx::Clean)
}

/// The untrusted per-function hint consumed by the symbolic translation
/// validator: the selected form the *reference* selection produces for
/// `f`. The validator compares it semantically against the actual
/// output, so a wrong hint can only cause a false rejection.
#[must_use]
pub fn select_function(f: &Function<cminor::Expr>) -> Function<SelExpr> {
    Function {
        params: f.params.clone(),
        stack_slots: f.stack_slots,
        body: select_stmt(&f.body, Mx::Clean),
    }
}

/// Seeded-bug variant for mutation scoring ([`crate::mutant`]): the
/// `x - c` → `x + (-c)` strength reduction drops the negation, so every
/// subtraction-by-constant becomes an addition.
pub fn selection_mutated(m: &cminor::CminorModule) -> cminorsel::CminorSelModule {
    selection_with(m, Mx::SubSign)
}

/// Second seeded-bug variant: comparisons with a constant left operand
/// keep their comparison unswapped when folded into `CmpImm`, flipping
/// `c < x` into `x < c`.
pub fn selection_cmp_mutated(m: &cminor::CminorModule) -> cminorsel::CminorSelModule {
    selection_with(m, Mx::CmpSwap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cminor::{CminorModule, Expr as CmE, CMINOR};
    use crate::cminorsel::CMINORSEL;
    use crate::stmt_sem::{EvalCtx, ExprEval};
    use ccc_core::mem::{GlobalEnv, Val};
    use ccc_core::world::run_main;
    use std::collections::BTreeMap;

    #[test]
    fn constants_fold() {
        let e = CmE::bin(Binop::Add, CmE::Const(3), CmE::Const(4));
        assert_eq!(select_expr(&e), SelExpr::imm(7));
        let e = CmE::bin(Binop::Lt, CmE::Const(3), CmE::Const(4));
        assert_eq!(select_expr(&e), SelExpr::imm(1));
    }

    #[test]
    fn immediates_selected() {
        let e = CmE::bin(Binop::Add, CmE::temp("t"), CmE::Const(4));
        assert_eq!(
            select_expr(&e),
            SelExpr::Op(Op::AddImm(4), vec![SelExpr::temp("t")])
        );
        let e = CmE::bin(Binop::Lt, CmE::Const(0), CmE::temp("t"));
        assert_eq!(
            select_expr(&e),
            SelExpr::Op(Op::CmpImm(Cmp::Gt, 0), vec![SelExpr::temp("t")])
        );
    }

    #[test]
    fn global_offset_addressing_selected() {
        let e = CmE::load(CmE::bin(
            Binop::Add,
            CmE::AddrGlobal("arr".into()),
            CmE::Const(2),
        ));
        assert_eq!(
            select_expr(&e),
            SelExpr::Load(AddrMode::Global("arr".into(), 2))
        );
    }

    /// The executable content of Fig. 12 (`sel_expr_correct`): for any
    /// expression and state, the selected expression evaluates to the
    /// same value with a subset footprint.
    #[test]
    fn sel_expr_correct_value_and_footprint() {
        let mut ge = GlobalEnv::new();
        ge.define("x", Val::Int(5));
        ge.define("y", Val::Int(7));
        let mem = ge.initial_memory();
        let mut temps = BTreeMap::new();
        temps.insert("t".to_string(), Val::Int(3));
        let ctx = EvalCtx {
            temps: &temps,
            frame: Some(ccc_core::mem::Addr(0)),
            stack_slots: 0,
            ge: &ge,
            mem: &mem,
        };
        let exprs = [
            CmE::bin(
                Binop::Add,
                CmE::load(CmE::AddrGlobal("x".into())),
                CmE::Const(1),
            ),
            CmE::bin(
                Binop::Mul,
                CmE::load(CmE::AddrGlobal("x".into())),
                CmE::load(CmE::AddrGlobal("y".into())),
            ),
            CmE::bin(Binop::Le, CmE::temp("t"), CmE::Const(9)),
            CmE::Unop(Unop::Not, Box::new(CmE::Const(0))),
            CmE::bin(Binop::Sub, CmE::temp("t"), CmE::Const(2)),
        ];
        for e in &exprs {
            let (sv, sfp) = ExprEval::eval(e, &ctx).expect("source evaluates");
            let sel = select_expr(e);
            let (tv, tfp) = sel.eval(&ctx).expect("selected evaluates");
            assert_eq!(sv, tv, "value preserved for {e:?}");
            assert!(tfp.subset(&sfp), "footprint grew for {e:?}");
        }
    }

    /// `e * 0 → 0` strictly shrinks the footprint — the selected side
    /// reads nothing.
    #[test]
    fn mul_zero_shrinks_footprint() {
        let mut ge = GlobalEnv::new();
        ge.define("x", Val::Int(5));
        let mem = ge.initial_memory();
        let temps = BTreeMap::new();
        let ctx = EvalCtx {
            temps: &temps,
            frame: None,
            stack_slots: 0,
            ge: &ge,
            mem: &mem,
        };
        let e = CmE::bin(
            Binop::Mul,
            CmE::load(CmE::AddrGlobal("x".into())),
            CmE::Const(0),
        );
        let (sv, sfp) = ExprEval::eval(&e, &ctx).expect("source");
        let sel = select_expr(&e);
        let (tv, tfp) = sel.eval(&ctx).expect("selected");
        assert_eq!(sv, tv);
        assert!(tfp.is_emp() && !sfp.is_emp(), "strict shrink");
    }

    #[test]
    fn random_programs_agree_through_selection() {
        use crate::cminorgen::cminorgen;
        use ccc_clight::gen::{gen_module, GenCfg};
        use ccc_clight::ClightLang;
        for seed in 0..40 {
            let (m, ge) = gen_module(seed, &GenCfg::default());
            let cm = cminorgen(&m).expect("cminorgen");
            let sel = selection(&cm);
            let s = run_main(&ClightLang, &m, &ge, "f", &[], 200_000).expect("clight runs");
            let c = run_main(&CMINOR, &cm, &ge, "f", &[], 200_000).expect("cminor runs");
            let t = run_main(&CMINORSEL, &sel, &ge, "f", &[], 200_000).expect("cminorsel runs");
            assert_eq!(s.0, t.0, "seed {seed}: return values");
            assert_eq!(c.2, t.2, "seed {seed}: events");
            for (a, _) in ge.initial_memory().iter() {
                assert_eq!(c.1.load(a), t.1.load(a), "seed {seed}: global {a}");
            }
        }
    }

    #[test]
    fn selection_keeps_module_shape() {
        let m = CminorModule::new([(
            "f",
            crate::cminor::Function {
                params: vec!["a".into()],
                stack_slots: 2,
                body: crate::cminor::Stmt::Return(Some(CmE::temp("a"))),
            },
        )]);
        let sel = selection(&m);
        let f = &sel.funcs["f"];
        assert_eq!(f.params, vec!["a".to_string()]);
        assert_eq!(f.stack_slots, 2);
    }
}
