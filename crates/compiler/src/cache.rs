//! Content-addressed incremental compilation cache (ROADMAP item 2).
//!
//! The paper's point is *separate* compilation: each module carries its
//! own correctness witness, and witnesses compose at link time. This
//! module makes that operational. A compilation is keyed on a stable
//! structural hash of its Clight source ([`module_hash`]); the cache
//! maps that key to the full per-stage artifacts plus the serialized
//! `PipelineWitness` produced by the symbolic validator, so recompiling
//! a 20-module program in which one module changed re-runs the pipeline
//! for exactly that module.
//!
//! ## Trust discipline
//!
//! A cache hit is **never** trusted blindly. Before an entry is served:
//!
//! 1. the stored source stage is compared bit-for-bit against the
//!    requested module (guards both hash collisions and poisoned
//!    entries whose artifacts were swapped);
//! 2. the stored witness JSON is parsed and statically re-checked
//!    against the stored artifacts by the [`Certifier`] — the cheap
//!    side of validation only, no recompilation (see [`RecheckDepth`]).
//!    The memory tier runs this once per *admission* and reuses the
//!    verdict while the slot is unchanged (see [`MemEntry`]); the disk
//!    tier re-parses on every load;
//! 3. link-time obligations are re-discharged *outside* this module,
//!    across the mix of cached and fresh modules
//!    (`ccc_analysis::sepcomp`).
//!
//! An entry failing any of these is evicted and the module is
//! recompiled and re-certified from scratch ([`CacheOutcome::Rejected`]).
//!
//! ## Layering
//!
//! `ccc-compiler` cannot depend on `ccc-analysis` (the analyses depend
//! on the compiler), so the validator is abstracted behind the
//! [`Certifier`] trait; `ccc_analysis::sepcomp::TransvalCertifier` is
//! the real implementation, and [`TrustingCertifier`] is the
//! no-validation baseline used by unit tests and cold-compile
//! benchmarks.
//!
//! ## Disk tier
//!
//! The on-disk format under `target/ccc-cache/` stores the module hash,
//! one digest per pipeline stage, and the witness JSON — *not* the
//! artifacts themselves (the IRs have no parsers). A disk hit therefore
//! recompiles the (deterministic) pipeline, checks every stage digest
//! against the stored ones, and re-checks the stored witness — skipping
//! only the expensive certification step. That makes the disk tier a
//! witness cache rather than an artifact cache; the memory tier caches
//! both.

use crate::driver::{compile_with_artifacts, CompilationArtifacts, CompileError};
use ccc_clight::ClightModule;
use ccc_core::explore::{fx_hash_of, FxHashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Version stamp mixed into every [`module_hash`] and written as the
/// first line of every disk entry. Bump it whenever the Clight AST, the
/// `Hash` derivation, the digest scheme, or the disk layout changes:
/// old entries then miss instead of being misinterpreted.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// The content address of a module under an explicit format version
/// (exposed so tests can demonstrate that bumping the version invalidates
/// every address).
#[must_use]
pub fn module_hash_with_version(version: u32, m: &ClightModule) -> u64 {
    fx_hash_of(&(version, m))
}

/// The content address of a module: a deterministic structural FxHash
/// of the whole Clight AST, mixed with [`CACHE_FORMAT_VERSION`].
///
/// Stability contract (regression-tested in `tests/tests/sepcomp.rs`):
/// structurally equal modules hash equal regardless of how they were
/// built (the AST holds functions in a `BTreeMap`), and the in-repo
/// FxHash is seed-fixed, so the address is stable across runs and
/// platforms with the same format version.
#[must_use]
pub fn module_hash(m: &ClightModule) -> u64 {
    module_hash_with_version(CACHE_FORMAT_VERSION, m)
}

/// One `(stage name, digest)` pair per pipeline stage of one
/// compilation, in pipeline order (the Constprop extension stage is
/// included when present). Digests are FxHashes of the stage's `Debug`
/// form — every IR keeps its functions in `BTreeMap`s, so the rendering
/// is canonical.
#[must_use]
pub fn artifact_digests(arts: &CompilationArtifacts) -> Vec<(String, u64)> {
    fn d<T: std::fmt::Debug>(name: &str, v: &T) -> (String, u64) {
        (name.to_string(), fx_hash_of(format!("{v:?}").as_str()))
    }
    let mut out = vec![
        d("Clight", &arts.clight),
        d("Cminor", &arts.cminor),
        d("CminorSel", &arts.cminorsel),
        d("RTL", &arts.rtl),
        d("RTL/tailcall", &arts.rtl_tailcall),
        d("RTL/renumber", &arts.rtl_renumber),
    ];
    if let Some(cp) = &arts.rtl_constprop {
        out.push(d("RTL/constprop", cp));
    }
    out.extend([
        d("LTL", &arts.ltl),
        d("LTL/tunneled", &arts.ltl_tunneled),
        d("Linear", &arts.linear),
        d("Linear/clean", &arts.linear_clean),
        d("Mach", &arts.mach),
        d("Asm", &arts.asm),
    ]);
    out
}

/// How much of a stored witness is re-established on a cache hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RecheckDepth {
    /// The cheap static re-check (the default): parse the stored
    /// witness, require the pass list to match what the pipeline must
    /// have produced, require every obligation discharged and every
    /// verdict `Validated`, and require verdicts consistent with their
    /// obligations. Trusts that the stored witness was *derived from*
    /// the stored artifacts (the source binding is always checked
    /// regardless of depth, and disk-tier artifacts are additionally
    /// digest-matched against a deterministic recompilation).
    #[default]
    Structural,
    /// Additionally re-derive the whole `PipelineWitness` from the
    /// stored artifacts and require it to equal the stored one —
    /// detects a witness swapped between two entries. Costs about as
    /// much as fresh validation, so it is a paranoia mode for audits
    /// and the poisoned-cache tests, not the hot path.
    Full,
}

/// The validation oracle the cache defers to. Implemented over the
/// symbolic translation validator in `ccc_analysis::sepcomp`; the
/// compiler crate only sees this interface (it cannot depend on the
/// analyses).
pub trait Certifier: Send + Sync {
    /// Fully validates freshly compiled artifacts, returning the
    /// serialized witness to store.
    ///
    /// # Errors
    ///
    /// Describes the rejected passes when validation fails — the
    /// compilation result must then not be used.
    fn certify(&self, arts: &CompilationArtifacts) -> Result<String, String>;

    /// Statically re-checks a stored witness against stored artifacts
    /// on a cache hit (no recompilation). A [`RecheckDepth::Full`]
    /// re-check must subsume the [`RecheckDepth::Structural`] one — the
    /// cache records a passing `Full` verdict as the slot's structural
    /// admission.
    ///
    /// # Errors
    ///
    /// Describes why the entry cannot be trusted; the cache evicts it
    /// and recompiles.
    fn recheck(
        &self,
        arts: &CompilationArtifacts,
        witness_json: &str,
        depth: RecheckDepth,
    ) -> Result<(), String>;
}

/// A [`Certifier`] that certifies everything with an empty witness and
/// re-checks nothing. Baseline for unit tests and for benchmarking the
/// pure compilation cost; never use it where correctness matters.
#[derive(Clone, Copy, Default, Debug)]
pub struct TrustingCertifier;

impl Certifier for TrustingCertifier {
    fn certify(&self, _arts: &CompilationArtifacts) -> Result<String, String> {
        Ok(String::new())
    }

    fn recheck(
        &self,
        _arts: &CompilationArtifacts,
        _witness_json: &str,
        _depth: RecheckDepth,
    ) -> Result<(), String> {
        Ok(())
    }
}

/// A failure of [`CompileCache::compile_cached`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CacheError {
    /// The pipeline itself failed.
    Compile(CompileError),
    /// The pipeline succeeded but the certifier rejected the fresh
    /// compilation (a miscompilation — nothing was cached).
    Certify(String),
    /// The disk tier could not be written.
    Io(String),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Compile(e) => write!(f, "compilation failed: {e}"),
            CacheError::Certify(e) => write!(f, "fresh compilation rejected: {e}"),
            CacheError::Io(e) => write!(f, "cache disk tier: {e}"),
        }
    }
}

impl std::error::Error for CacheError {}

/// How a [`CachedCompilation`] was obtained.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    /// Served from the memory tier: source binding checked on this
    /// request, stored witness statically re-checked on the slot's
    /// first hit (the admitted verdict is reused until the slot is
    /// replaced), no recompilation.
    Hit,
    /// Served via the disk tier: the pipeline was re-run
    /// (deterministically), every stage digest matched the stored
    /// entry, and the stored witness was re-checked — certification was
    /// skipped.
    DiskHit,
    /// Nothing cached: compiled and certified from scratch.
    Miss,
    /// A cached entry existed but failed re-validation (poisoned,
    /// corrupt, or stale); it was evicted and the module was compiled
    /// and certified from scratch. The payload says what was wrong with
    /// the rejected entry.
    Rejected(String),
}

impl CacheOutcome {
    /// True when the expensive certify step was skipped (memory or disk
    /// hit).
    #[must_use]
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheOutcome::Hit | CacheOutcome::DiskHit)
    }
}

/// One compile-and-validate result, however it was obtained. The
/// artifacts and witness of a hit are bit-identical to what a cold
/// build produces (asserted by the sepcomp battery).
#[derive(Clone, Debug)]
pub struct CachedCompilation {
    /// The content address the result is filed under.
    pub hash: u64,
    /// Every intermediate program, shared with the cache slot it was
    /// served from (hits must not pay a deep artifact clone).
    pub arts: Arc<CompilationArtifacts>,
    /// The serialized `PipelineWitness` ([`Certifier::certify`] output).
    pub witness_json: String,
    /// How the result was obtained.
    pub outcome: CacheOutcome,
}

/// One stored cache entry (exposed so tests can inject poisoned
/// entries).
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// [`module_hash`] of the source at store time.
    pub module_hash: u64,
    /// The full artifacts (shared, so planting and serving entries
    /// never deep-copies the IRs).
    pub arts: Arc<CompilationArtifacts>,
    /// The serialized witness.
    pub witness_json: String,
    /// [`artifact_digests`] of `arts` at store time.
    pub digests: Vec<(String, u64)>,
}

/// A memory-tier slot: the public [`CacheEntry`] plus its admission
/// record.
///
/// `admitted` caches the certifier's structural verdict over
/// `entry.witness_json`. It is `None` until the stored witness has been
/// parsed and structurally re-checked once, and every path that can
/// change a slot ([`CompileCache::put_entry`], a fresh insert, a disk
/// promotion) starts a new admission, so a cached verdict always refers
/// to exactly the witness bytes stored beside it: the map owns its
/// slots behind the cache mutex and nothing else can mutate them. This
/// is what makes warm hits ~20x cheaper than a cold compile+certify —
/// the full witness parse is paid once per admission, not once per hit.
struct MemEntry {
    entry: CacheEntry,
    admitted: Option<Result<(), String>>,
}

/// What a disk entry stores: everything but the artifacts.
struct DiskEntry {
    module_hash: u64,
    digests: Vec<(String, u64)>,
    witness_json: String,
}

/// Counters accumulated by one [`CompileCache`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Memory-tier hits.
    pub hits: u64,
    /// Disk-tier hits (recompiled, digest-matched, certify skipped).
    pub disk_hits: u64,
    /// Full compiles + certifications.
    pub misses: u64,
    /// Entries evicted because re-validation failed.
    pub rejected: u64,
    /// Per-module interference certificates served from the cache and
    /// successfully re-checked by their trusted checker (the analysis
    /// layer owns the check; the cache only stores and counts).
    pub cert_hits: u64,
    /// Certificates freshly inferred and stored (either not cached, or
    /// cached but rejected by the re-check and evicted).
    pub cert_misses: u64,
}

/// The content-addressed compilation cache. Thread-safe: the batch
/// service shares one instance across all workers.
pub struct CompileCache {
    pipeline: fn(&ClightModule) -> Result<CompilationArtifacts, CompileError>,
    mem: Mutex<FxHashMap<u64, MemEntry>>,
    certs: Mutex<FxHashMap<u64, String>>,
    disk: Option<PathBuf>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    cert_hits: AtomicU64,
    cert_misses: AtomicU64,
}

impl std::fmt::Debug for CompileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileCache")
            .field("entries", &self.len())
            .field("disk", &self.disk)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for CompileCache {
    fn default() -> CompileCache {
        CompileCache::new()
    }
}

impl CompileCache {
    /// A memory-only cache over the standard pipeline.
    #[must_use]
    pub fn new() -> CompileCache {
        CompileCache::with_pipeline(compile_with_artifacts)
    }

    /// A memory-only cache over an explicit pipeline (e.g.
    /// `compile_optimized_with_artifacts` for the Constprop extension).
    #[must_use]
    pub fn with_pipeline(
        pipeline: fn(&ClightModule) -> Result<CompilationArtifacts, CompileError>,
    ) -> CompileCache {
        CompileCache {
            pipeline,
            mem: Mutex::new(FxHashMap::default()),
            certs: Mutex::new(FxHashMap::default()),
            disk: None,
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            cert_hits: AtomicU64::new(0),
            cert_misses: AtomicU64::new(0),
        }
    }

    /// Attaches an on-disk tier rooted at `dir` (created if missing).
    /// The conventional location is [`default_disk_dir`].
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn with_disk(mut self, dir: impl Into<PathBuf>) -> std::io::Result<CompileCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        self.disk = Some(dir);
        Ok(self)
    }

    /// The file a given content address persists to, when a disk tier
    /// is attached (exposed so the poisoned-cache tests can corrupt it).
    #[must_use]
    pub fn disk_path(&self, hash: u64) -> Option<PathBuf> {
        self.disk
            .as_ref()
            .map(|d| d.join(format!("{hash:016x}.ccc")))
    }

    /// Number of entries in the memory tier.
    #[must_use]
    pub fn len(&self) -> usize {
        self.mem.lock().expect("cache lock").len()
    }

    /// True when the memory tier is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cert_hits: self.cert_hits.load(Ordering::Relaxed),
            cert_misses: self.cert_misses.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the hit/miss counters (the bench does this between
    /// phases).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.disk_hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.cert_hits.store(0, Ordering::Relaxed);
        self.cert_misses.store(0, Ordering::Relaxed);
    }

    /// The stored entry for `hash`, if any (test hook).
    #[must_use]
    pub fn entry(&self, hash: u64) -> Option<CacheEntry> {
        self.mem
            .lock()
            .expect("cache lock")
            .get(&hash)
            .map(|me| me.entry.clone())
    }

    /// Overwrites the entry for `entry.module_hash` (test hook — this
    /// is how the poisoning tests plant corrupted witnesses and swapped
    /// artifacts). The new slot starts un-admitted: the next hit must
    /// fully parse and re-check the stored witness.
    pub fn put_entry(&self, entry: CacheEntry) {
        self.mem.lock().expect("cache lock").insert(
            entry.module_hash,
            MemEntry {
                entry,
                admitted: None,
            },
        );
    }

    /// Drops `hash` from both tiers (compilation entry and any stored
    /// certificate).
    pub fn evict(&self, hash: u64) {
        self.mem.lock().expect("cache lock").remove(&hash);
        self.remove_disk(hash);
        self.cert_evict(hash);
    }

    /// Drops every memory-tier entry, keeping the disk tier (the bench
    /// uses this to exercise the disk path).
    pub fn clear_memory(&self) {
        self.mem.lock().expect("cache lock").clear();
        self.certs.lock().expect("cert lock").clear();
    }

    // -- Certificate side-store ------------------------------------------
    //
    // Per-module interference certificates (`ccc-analysis::rg_cert`)
    // ride the same content-addressed cache: keyed by `module_hash`,
    // memory tier + one `.rgc` file per entry on the disk tier. The
    // cache stores opaque single-line JSON and counts hits/misses; the
    // *trusted re-check* of a served certificate is the analysis
    // layer's job (same inversion as [`Certifier`] — the compiler crate
    // cannot depend on the analyses), which is why admission counting
    // is explicit ([`Self::note_cert_hit`]) rather than implicit in
    // [`Self::cert_get`].

    /// The file a certificate for `hash` persists to, when a disk tier
    /// is attached (exposed so poisoning tests can corrupt it).
    #[must_use]
    pub fn cert_disk_path(&self, hash: u64) -> Option<PathBuf> {
        self.disk
            .as_ref()
            .map(|d| d.join(format!("{hash:016x}.rgc")))
    }

    /// The stored certificate JSON for `hash`, memory tier first, then
    /// disk (promoted into memory on a disk read). The caller must
    /// re-check it before trusting it, then report the admission via
    /// [`Self::note_cert_hit`] / [`Self::note_cert_miss`].
    #[must_use]
    pub fn cert_get(&self, hash: u64) -> Option<String> {
        if let Some(j) = self.certs.lock().expect("cert lock").get(&hash) {
            return Some(j.clone());
        }
        let path = self.cert_disk_path(hash)?;
        let text = std::fs::read_to_string(path).ok()?;
        let mut lines = text.lines();
        let header = format!("ccc-cert {CACHE_FORMAT_VERSION}");
        if lines.next() != Some(header.as_str()) {
            return None;
        }
        let json = lines.next()?.to_string();
        self.certs
            .lock()
            .expect("cert lock")
            .insert(hash, json.clone());
        Some(json)
    }

    /// Stores a certificate for `hash` in both tiers. `json` must be
    /// single-line (the serializer escapes newlines); a multi-line
    /// document is stored in memory only.
    pub fn cert_put(&self, hash: u64, json: &str) {
        self.certs
            .lock()
            .expect("cert lock")
            .insert(hash, json.to_string());
        if json.contains('\n') {
            return;
        }
        if let Some(path) = self.cert_disk_path(hash) {
            let tmp = path.with_extension("rgc.tmp");
            let body = format!("ccc-cert {CACHE_FORMAT_VERSION}\n{json}\n");
            if std::fs::write(&tmp, body).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
    }

    /// Drops the certificate for `hash` from both tiers.
    pub fn cert_evict(&self, hash: u64) {
        self.certs.lock().expect("cert lock").remove(&hash);
        if let Some(p) = self.cert_disk_path(hash) {
            let _ = std::fs::remove_file(p);
        }
    }

    /// Records a served-and-re-checked certificate (counted in
    /// [`CacheStats::cert_hits`]).
    pub fn note_cert_hit(&self) {
        self.cert_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a freshly inferred certificate (counted in
    /// [`CacheStats::cert_misses`]).
    pub fn note_cert_miss(&self) {
        self.cert_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Compiles `m` through the cache. On a hit the stored entry is
    /// re-validated per the module-level trust discipline before being
    /// served; a rejected entry is evicted and the module recompiled.
    ///
    /// # Errors
    ///
    /// [`CacheError::Compile`] when the pipeline fails,
    /// [`CacheError::Certify`] when a *fresh* compilation fails
    /// validation, [`CacheError::Io`] when the disk tier cannot be
    /// written. A poisoned cache entry is never an error — it degrades
    /// to recompilation ([`CacheOutcome::Rejected`]).
    pub fn compile_cached(
        &self,
        m: &ClightModule,
        certifier: &dyn Certifier,
        depth: RecheckDepth,
    ) -> Result<CachedCompilation, CacheError> {
        let hash = module_hash(m);
        let mut rejection: Option<String> = None;

        // Memory tier: artifacts + witness are in hand; re-check, never
        // recompile. The source binding runs on every hit; the witness
        // re-check runs on first admission of a slot and its verdict is
        // reused until the slot is replaced (see [`MemEntry`]). No
        // digest recompute here: the in-memory artifacts are the very
        // values the digests were derived from at insert time, so
        // re-hashing them compares a value against itself — cross-entry
        // artifact swaps are what the source binding catches. The disk
        // tier, whose artifacts are *recompiled*, does match digests.
        {
            let mut mem = self.mem.lock().expect("cache lock");
            if let Some(me) = mem.get_mut(&hash) {
                if me.entry.module_hash != hash || me.entry.arts.clight != *m {
                    rejection = Some("stored source does not match requested module".to_string());
                } else {
                    let verdict = match depth {
                        // Paranoia depth re-derives per hit, always.
                        RecheckDepth::Full => {
                            certifier.recheck(&me.entry.arts, &me.entry.witness_json, depth)
                        }
                        RecheckDepth::Structural => match &me.admitted {
                            Some(v) => v.clone(),
                            None => {
                                let v = certifier.recheck(
                                    &me.entry.arts,
                                    &me.entry.witness_json,
                                    depth,
                                );
                                me.admitted = Some(v.clone());
                                v
                            }
                        },
                    };
                    match verdict {
                        Ok(()) => {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return Ok(CachedCompilation {
                                hash,
                                arts: me.entry.arts.clone(),
                                witness_json: me.entry.witness_json.clone(),
                                outcome: CacheOutcome::Hit,
                            });
                        }
                        Err(why) => rejection = Some(why),
                    }
                }
            }
        }
        if rejection.is_some() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            self.evict(hash);
        }

        // Disk tier: witness + digests only; recompile deterministically
        // and bind the stored witness to the fresh artifacts through the
        // digests.
        if rejection.is_none() && self.disk.is_some() {
            match self.load_disk(hash) {
                Ok(None) => {}
                Ok(Some(stored)) => {
                    let arts = Arc::new((self.pipeline)(m).map_err(CacheError::Compile)?);
                    let digests = artifact_digests(&arts);
                    if stored.module_hash != hash {
                        rejection = Some("disk entry module hash mismatch".to_string());
                    } else if stored.digests != digests {
                        rejection =
                            Some("disk entry stage digests do not match recompilation".to_string());
                    } else if let Err(why) = certifier.recheck(&arts, &stored.witness_json, depth) {
                        rejection = Some(why);
                    } else {
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        // The recheck above ran against these exact
                        // artifacts and witness bytes, so the promoted
                        // slot is already admitted.
                        self.mem.lock().expect("cache lock").insert(
                            hash,
                            MemEntry {
                                entry: CacheEntry {
                                    module_hash: hash,
                                    arts: arts.clone(),
                                    witness_json: stored.witness_json.clone(),
                                    digests,
                                },
                                admitted: Some(Ok(())),
                            },
                        );
                        return Ok(CachedCompilation {
                            hash,
                            arts,
                            witness_json: stored.witness_json,
                            outcome: CacheOutcome::DiskHit,
                        });
                    }
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    self.remove_disk(hash);
                }
                Err(why) => {
                    rejection = Some(why);
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    self.remove_disk(hash);
                }
            }
        }

        // Miss (or poisoned entry just evicted): full compile + certify.
        let arts = Arc::new((self.pipeline)(m).map_err(CacheError::Compile)?);
        let witness_json = certifier.certify(&arts).map_err(CacheError::Certify)?;
        let digests = artifact_digests(&arts);
        let entry = CacheEntry {
            module_hash: hash,
            arts: arts.clone(),
            witness_json: witness_json.clone(),
            digests,
        };
        self.store_disk(&entry)?;
        // The witness was derived by `certify` from these exact
        // artifacts just now, so the slot is admitted on insert —
        // re-parsing our own serialization would re-establish nothing.
        // Entries of out-of-process provenance (disk, `put_entry`) are
        // the ones that must earn admission through a full parse.
        self.mem.lock().expect("cache lock").insert(
            hash,
            MemEntry {
                entry,
                admitted: Some(Ok(())),
            },
        );
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(CachedCompilation {
            hash,
            arts,
            witness_json,
            outcome: match rejection {
                Some(why) => CacheOutcome::Rejected(why),
                None => CacheOutcome::Miss,
            },
        })
    }

    fn remove_disk(&self, hash: u64) {
        if let Some(p) = self.disk_path(hash) {
            let _ = std::fs::remove_file(p);
        }
    }

    /// Serializes `entry` into the line-based disk format. Witness JSON
    /// is single-line by construction (`escape_into` escapes newlines),
    /// so one `witness` line always suffices; a defensive check guards
    /// the format anyway.
    fn store_disk(&self, entry: &CacheEntry) -> Result<(), CacheError> {
        let Some(path) = self.disk_path(entry.module_hash) else {
            return Ok(());
        };
        if entry.witness_json.contains('\n') {
            return Err(CacheError::Io(
                "witness JSON is not single-line".to_string(),
            ));
        }
        let mut out = format!("ccc-cache {CACHE_FORMAT_VERSION}\n");
        out.push_str(&format!("module {:016x}\n", entry.module_hash));
        for (name, d) in &entry.digests {
            out.push_str(&format!("digest {name} {d:016x}\n"));
        }
        out.push_str(&format!("witness {}\n", entry.witness_json));
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, out).map_err(|e| CacheError::Io(e.to_string()))?;
        std::fs::rename(&tmp, &path).map_err(|e| CacheError::Io(e.to_string()))
    }

    /// Loads and syntactically checks the disk entry for `hash`.
    /// `Ok(None)` when absent; `Err` describes a malformed file (which
    /// the caller treats as a poisoned entry, not a hard failure).
    fn load_disk(&self, hash: u64) -> Result<Option<DiskEntry>, String> {
        let Some(path) = self.disk_path(hash) else {
            return Ok(None);
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("unreadable disk entry: {e}")),
        };
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l == format!("ccc-cache {CACHE_FORMAT_VERSION}") => {}
            other => return Err(format!("bad disk entry header {other:?}")),
        }
        let module_hash = match lines.next().and_then(|l| l.strip_prefix("module ")) {
            Some(h) => {
                u64::from_str_radix(h, 16).map_err(|e| format!("bad module hash {h:?}: {e}"))?
            }
            None => return Err("missing module line".to_string()),
        };
        let mut digests = Vec::new();
        let mut witness_json = None;
        for l in lines {
            if let Some(rest) = l.strip_prefix("digest ") {
                let (name, d) = rest
                    .rsplit_once(' ')
                    .ok_or_else(|| format!("bad digest line {l:?}"))?;
                let d = u64::from_str_radix(d, 16).map_err(|e| format!("bad digest {d:?}: {e}"))?;
                digests.push((name.to_string(), d));
            } else if let Some(w) = l.strip_prefix("witness ") {
                if witness_json.replace(w.to_string()).is_some() {
                    return Err("duplicate witness line".to_string());
                }
            } else {
                return Err(format!("unrecognized disk entry line {l:?}"));
            }
        }
        let witness_json = witness_json.ok_or_else(|| "missing witness line".to_string())?;
        Ok(Some(DiskEntry {
            module_hash,
            digests,
            witness_json,
        }))
    }
}

/// The conventional disk-tier location, `target/ccc-cache/`.
#[must_use]
pub fn default_disk_dir() -> PathBuf {
    Path::new("target").join("ccc-cache")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_clight::ast::{Expr, Function, Stmt};

    fn module(k: i64) -> ClightModule {
        ClightModule::new([(
            "f",
            Function::simple(Stmt::Return(Some(Expr::add(
                Expr::Const(k),
                Expr::Const(2),
            )))),
        )])
    }

    #[test]
    fn hit_after_miss_returns_identical_artifacts() {
        let cache = CompileCache::new();
        let m = module(40);
        let a = cache
            .compile_cached(&m, &TrustingCertifier, RecheckDepth::Structural)
            .expect("compiles");
        assert_eq!(a.outcome, CacheOutcome::Miss);
        let b = cache
            .compile_cached(&m, &TrustingCertifier, RecheckDepth::Structural)
            .expect("compiles");
        assert_eq!(b.outcome, CacheOutcome::Hit);
        assert_eq!(a.arts, b.arts);
        assert_eq!(a.hash, b.hash);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn distinct_modules_get_distinct_addresses() {
        assert_ne!(module_hash(&module(1)), module_hash(&module(2)));
        assert_eq!(module_hash(&module(1)), module_hash(&module(1)));
    }

    #[test]
    fn version_bump_invalidates_addresses() {
        let m = module(7);
        assert_ne!(
            module_hash_with_version(CACHE_FORMAT_VERSION, &m),
            module_hash_with_version(CACHE_FORMAT_VERSION + 1, &m)
        );
    }

    #[test]
    fn swapped_artifacts_are_rejected_by_the_source_binding() {
        let cache = CompileCache::new();
        let m1 = module(1);
        let m2 = module(2);
        let a1 = cache
            .compile_cached(&m1, &TrustingCertifier, RecheckDepth::Structural)
            .expect("compiles");
        let a2 = cache
            .compile_cached(&m2, &TrustingCertifier, RecheckDepth::Structural)
            .expect("compiles");
        // Plant m2's artifacts under m1's address.
        let mut poisoned = cache.entry(a2.hash).expect("entry");
        poisoned.module_hash = a1.hash;
        cache.put_entry(poisoned);
        let again = cache
            .compile_cached(&m1, &TrustingCertifier, RecheckDepth::Structural)
            .expect("recovers by recompiling");
        assert!(matches!(again.outcome, CacheOutcome::Rejected(_)));
        assert_eq!(again.arts, a1.arts);
    }
}
