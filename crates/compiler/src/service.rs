//! A hand-rolled thread-pool batch server over the incremental cache:
//! the "compilation as a service" half of ROADMAP item 2.
//!
//! The workspace takes no async-runtime dependency, so the service is
//! the classic bounded-queue worker pool: [`CompileService::start`]
//! spawns `N` workers sharing one receiver behind a mutex, submissions
//! go through a bounded [`std::sync::mpsc::sync_channel`] (back
//! pressure instead of unbounded memory growth), every request carries
//! its own reply channel, and shutdown is graceful — dropping the
//! sender lets the workers drain the queue and exit, and
//! [`CompileService::shutdown`] (or `Drop`) joins them.
//!
//! Every request runs [`CompileCache::compile_cached`], so the trust
//! discipline of [`crate::cache`] — hit re-validation, poisoned-entry
//! eviction — applies unchanged under concurrency: the cache is shared
//! and thread-safe, the certifier is `Sync`.

use crate::cache::{CacheError, CachedCompilation, Certifier, CompileCache, RecheckDepth};
use ccc_clight::ClightModule;
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Service sizing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServiceCfg {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Bounded queue capacity: submissions beyond `queue_cap` pending
    /// jobs block ([`CompileService::submit`]) or bounce
    /// ([`CompileService::try_submit`]).
    pub queue_cap: usize,
    /// Re-check depth applied on every cache hit.
    pub depth: RecheckDepth,
}

impl Default for ServiceCfg {
    fn default() -> ServiceCfg {
        ServiceCfg {
            workers: 4,
            queue_cap: 64,
            depth: RecheckDepth::Structural,
        }
    }
}

/// The reply channel of one submission: yields the compile-and-validate
/// result once a worker has processed the request.
pub type CompileReply = Receiver<Result<CachedCompilation, CacheError>>;

struct Job {
    module: ClightModule,
    reply: mpsc::Sender<Result<CachedCompilation, CacheError>>,
}

/// The batch compile-and-validate server.
pub struct CompileService {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for CompileService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompileService")
            .field("workers", &self.workers.len())
            .field("accepting", &self.tx.is_some())
            .finish()
    }
}

impl CompileService {
    /// Spawns the worker pool over a shared cache and certifier.
    #[must_use]
    pub fn start(
        cache: Arc<CompileCache>,
        certifier: Arc<dyn Certifier>,
        cfg: &ServiceCfg,
    ) -> CompileService {
        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_cap.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let cache = Arc::clone(&cache);
                let certifier = Arc::clone(&certifier);
                let depth = cfg.depth;
                std::thread::Builder::new()
                    .name(format!("ccc-compile-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only for the dequeue, not
                        // for the compilation.
                        let job = rx.lock().expect("service queue lock").recv();
                        let Ok(job) = job else { break };
                        let res = cache.compile_cached(&job.module, certifier.as_ref(), depth);
                        // A dropped reply receiver just means the
                        // client lost interest; the work (and the cache
                        // fill) still happened.
                        let _ = job.reply.send(res);
                    })
                    .expect("spawn service worker")
            })
            .collect();
        CompileService {
            tx: Some(tx),
            workers,
        }
    }

    /// Enqueues one compile+validate request, blocking while the queue
    /// is full. Returns the per-request reply channel.
    ///
    /// # Panics
    ///
    /// Panics if called after [`CompileService::shutdown`] began (the
    /// queue is closed).
    #[must_use]
    pub fn submit(&self, module: ClightModule) -> CompileReply {
        let (reply, rx) = mpsc::channel();
        self.tx
            .as_ref()
            .expect("service is running")
            .send(Job { module, reply })
            .expect("service accepts requests until shutdown");
        rx
    }

    /// Non-blocking [`CompileService::submit`]: bounces the module back
    /// when the queue is full (or the service is shutting down) so the
    /// caller can apply its own back-pressure policy.
    ///
    /// # Errors
    ///
    /// Returns the module unchanged when it could not be enqueued.
    pub fn try_submit(&self, module: ClightModule) -> Result<CompileReply, ClightModule> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(module);
        };
        let (reply, rx) = mpsc::channel();
        match tx.try_send(Job { module, reply }) {
            Ok(()) => Ok(rx),
            Err(TrySendError::Full(j) | TrySendError::Disconnected(j)) => Err(j.module),
        }
    }

    /// Graceful shutdown: stops accepting, lets the workers drain every
    /// already-enqueued job, and joins them. Dropping the service does
    /// the same.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for CompileService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::TrustingCertifier;
    use ccc_clight::ast::{Expr, Function, Stmt};

    fn module(k: i64) -> ClightModule {
        ClightModule::new([(
            "f",
            Function::simple(Stmt::Return(Some(Expr::add(
                Expr::Const(k),
                Expr::Const(1),
            )))),
        )])
    }

    #[test]
    fn concurrent_submissions_all_complete_and_share_the_cache() {
        let cache = Arc::new(CompileCache::new());
        let svc = CompileService::start(
            Arc::clone(&cache),
            Arc::new(TrustingCertifier),
            &ServiceCfg {
                workers: 3,
                queue_cap: 8,
                depth: RecheckDepth::Structural,
            },
        );
        // Warm the cache sequentially (concurrent first-compiles of the
        // same module may legitimately race to duplicate misses), then
        // hammer it: every warm request must be a hit.
        for i in 0..6 {
            svc.submit(module(i))
                .recv()
                .expect("reply")
                .expect("compiles");
        }
        cache.reset_stats();
        let replies: Vec<_> = (0..24).map(|i| svc.submit(module(i % 6))).collect();
        for r in replies {
            r.recv().expect("reply").expect("compiles");
        }
        svc.shutdown();
        let stats = cache.stats();
        assert_eq!(stats.hits, 24, "{stats:?}");
        assert_eq!(stats.misses, 0, "{stats:?}");
        assert_eq!(stats.rejected, 0, "{stats:?}");
    }

    #[test]
    fn shutdown_drains_enqueued_work() {
        let cache = Arc::new(CompileCache::new());
        let svc = CompileService::start(
            Arc::clone(&cache),
            Arc::new(TrustingCertifier),
            &ServiceCfg {
                workers: 1,
                queue_cap: 16,
                depth: RecheckDepth::Structural,
            },
        );
        let replies: Vec<_> = (0..10).map(|i| svc.submit(module(i))).collect();
        svc.shutdown();
        for r in replies {
            r.recv().expect("drained before exit").expect("compiles");
        }
    }

    #[test]
    fn try_submit_bounces_when_full() {
        // Zero workers is clamped to one; a tiny queue plus slow drain
        // is hard to make deterministic, so test the closed-queue path
        // via Drop ordering instead: after shutdown, try_submit errors.
        let cache = Arc::new(CompileCache::new());
        let mut svc = CompileService::start(
            Arc::clone(&cache),
            Arc::new(TrustingCertifier),
            &ServiceCfg::default(),
        );
        assert!(svc.try_submit(module(1)).is_ok());
        svc.shutdown_in_place();
        assert!(svc.try_submit(module(2)).is_err());
    }
}
