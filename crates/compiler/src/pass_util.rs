//! Shared plumbing for the per-pass module wrappers.
//!
//! Every pass (and each of its seeded-bug variants for mutation
//! scoring) is a per-function translation lifted pointwise over the
//! module's function table. The five passes with hint-hook scaffolds
//! (`cminorgen`, `selection`, `rtlgen`, `stacking`, `asmgen`) used to
//! repeat that lifting inline; they all route through these two
//! helpers now, so a pass wrapper is one line naming its translation.

use std::collections::BTreeMap;

/// Lifts a fallible per-function translation over a function table,
/// preserving names and propagating the first error.
///
/// # Errors
///
/// Returns the first per-function translation error.
pub fn map_functions<S, T, E>(
    funcs: &BTreeMap<String, S>,
    mut tr: impl FnMut(&S) -> Result<T, E>,
) -> Result<BTreeMap<String, T>, E> {
    funcs.iter().map(|(n, f)| Ok((n.clone(), tr(f)?))).collect()
}

/// Lifts a total per-function translation over a function table,
/// preserving names.
pub fn map_functions_total<S, T>(
    funcs: &BTreeMap<String, S>,
    mut tr: impl FnMut(&S) -> T,
) -> BTreeMap<String, T> {
    funcs.iter().map(|(n, f)| (n.clone(), tr(f))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_preserved_and_errors_propagate() {
        let funcs: BTreeMap<String, i32> = [("a".into(), 1), ("b".into(), 2)].into();
        let doubled = map_functions_total(&funcs, |f| f * 2);
        assert_eq!(doubled, [("a".into(), 2), ("b".into(), 4)].into());
        let ok: Result<BTreeMap<String, i32>, String> = map_functions(&funcs, |f| Ok(f + 1));
        assert_eq!(ok.unwrap()["b"], 3);
        let err: Result<BTreeMap<String, i32>, String> =
            map_functions(&funcs, |f| if *f > 1 { Err("big".into()) } else { Ok(*f) });
        assert_eq!(err.unwrap_err(), "big");
    }
}
