//! Mach: the last IR before assembly — Linear with locations resolved
//! to machine registers and concrete stack-frame offsets.
//!
//! After `Stacking`, spill slots live in the frame (real memory from the
//! thread's free list), arguments are marshalled into the argument
//! registers before calls, and results/returns use `%eax` — the
//! machine's calling convention. `Asmgen` then only lowers three-address
//! operators onto two-address x86 instructions and materializes
//! comparisons through flags.

use crate::linear::Label;
use crate::ops::{AddrMode, Cmp, Op};
use ccc_core::footprint::Footprint;
use ccc_core::lang::{Event, Lang, LocalStep, StepMsg};
use ccc_core::mem::{Addr, FreeList, GlobalEnv, Memory, Val};
use ccc_machine::Reg as MReg;
use std::collections::BTreeMap;

/// One Mach instruction.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// `dst := op(args…)` over machine registers.
    Op(Op, Vec<MReg>, MReg),
    /// `dst := [mode]` (frame slots are concrete offsets now).
    Load(AddrMode<MReg>, MReg),
    /// `[mode] := src`.
    Store(AddrMode<MReg>, MReg),
    /// `call f` with `n` arguments already in the argument registers;
    /// the result arrives in `%eax`.
    Call(String, usize),
    /// Tail call (arguments marshalled identically).
    Tailcall(String, usize),
    /// Conditional jump comparing two registers.
    CondJump(Cmp, MReg, MReg, Label),
    /// Conditional jump against an immediate.
    CondImmJump(Cmp, MReg, i64, Label),
    /// Unconditional jump.
    Goto(Label),
    /// Label definition.
    Label(Label),
    /// Output.
    Print(MReg),
    /// Return (`%eax` holds the value).
    Return,
}

/// A Mach function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Function {
    /// Total frame size in words (source slots + spill area).
    pub frame_slots: u64,
    /// Number of register arguments.
    pub arity: usize,
    /// The instruction list.
    pub code: Vec<Instr>,
}

/// A Mach module.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MachModule {
    /// Functions by name.
    pub funcs: BTreeMap<String, Function>,
}

/// The Mach core state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MachCore {
    fun: String,
    pc: usize,
    regs: [Val; 6],
    frame: Option<Addr>,
    frame_slots: u64,
    awaiting: bool,
    tail_pending: bool,
}

impl MachCore {
    fn reg(&self, r: MReg) -> Val {
        self.regs[r.index()]
    }

    fn set(&mut self, r: MReg, v: Val) {
        self.regs[r.index()] = v;
    }
}

/// The Mach language dispatcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MachLang;

fn find_label(f: &Function, l: Label) -> Option<usize> {
    f.code
        .iter()
        .position(|i| matches!(i, Instr::Label(x) if *x == l))
}

fn resolve_addr(am: &AddrMode<MReg>, core: &MachCore, ge: &GlobalEnv) -> Option<Addr> {
    match am {
        AddrMode::Global(g, o) => Some(ge.lookup(g)?.offset(*o)),
        AddrMode::Stack(n) => {
            if *n >= core.frame_slots {
                return None;
            }
            Some(core.frame?.offset(*n))
        }
        AddrMode::Based(r, d) => match core.reg(*r) {
            Val::Ptr(a) => Some(Addr(a.0.wrapping_add(*d as u64))),
            _ => None,
        },
    }
}

impl Lang for MachLang {
    type Module = MachModule;
    type Core = MachCore;

    fn name(&self) -> &'static str {
        "Mach"
    }

    fn exports(&self, module: &Self::Module) -> Vec<String> {
        module.funcs.keys().cloned().collect()
    }

    fn init_core(
        &self,
        module: &Self::Module,
        _ge: &GlobalEnv,
        entry: &str,
        args: &[Val],
    ) -> Option<Self::Core> {
        let f = module.funcs.get(entry)?;
        if args.len() > f.arity || f.arity > MReg::ARGS.len() {
            return None;
        }
        let mut regs = [Val::Undef; 6];
        for (i, &v) in args.iter().enumerate() {
            regs[MReg::ARGS[i].index()] = v;
        }
        Some(MachCore {
            fun: entry.to_string(),
            pc: 0,
            regs,
            frame: (f.frame_slots == 0).then_some(Addr(0)),
            frame_slots: f.frame_slots,
            awaiting: false,
            tail_pending: false,
        })
    }

    fn step(
        &self,
        module: &Self::Module,
        ge: &GlobalEnv,
        flist: &FreeList,
        core: &Self::Core,
        mem: &Memory,
    ) -> Vec<LocalStep<Self::Core>> {
        let tau = |core: MachCore, mem: Memory, fp: Footprint| {
            vec![LocalStep::Step {
                msg: StepMsg::Tau,
                fp,
                core,
                mem,
            }]
        };
        let abort = || vec![LocalStep::Abort];
        let Some(f) = module.funcs.get(&core.fun) else {
            return abort();
        };
        let mut next = core.clone();
        if next.awaiting {
            return abort();
        }
        if next.tail_pending {
            return vec![LocalStep::Ret {
                val: core.reg(MReg::Eax),
            }];
        }
        if next.frame.is_none() {
            let base = crate::stmt_sem::first_free_block(flist, mem, next.frame_slots);
            let mut m = mem.clone();
            let mut fp = Footprint::emp();
            for k in 0..next.frame_slots {
                m.alloc(base.offset(k), Val::Undef);
                fp.extend(&Footprint::write(base.offset(k)));
            }
            next.frame = Some(base);
            return tau(next, m, fp);
        }
        let Some(instr) = f.code.get(core.pc) else {
            return abort();
        };
        next.pc += 1;
        match instr {
            Instr::Label(_) => tau(next, mem.clone(), Footprint::emp()),
            Instr::Op(op, args, dst) => {
                let v = match op {
                    Op::AddrGlobal(g, o) => match ge.lookup(g) {
                        Some(a) => Val::Ptr(a.offset(*o)),
                        None => return abort(),
                    },
                    Op::AddrStack(s) => {
                        if *s >= next.frame_slots {
                            return abort();
                        }
                        Val::Ptr(next.frame.expect("allocated").offset(*s))
                    }
                    other => {
                        let vals: Vec<Val> = args.iter().map(|&r| core.reg(r)).collect();
                        match other.eval(&vals) {
                            Some(v) => v,
                            None => return abort(),
                        }
                    }
                };
                next.set(*dst, v);
                tau(next, mem.clone(), Footprint::emp())
            }
            Instr::Load(am, dst) => {
                let Some(a) = resolve_addr(am, core, ge) else {
                    return abort();
                };
                let Some(v) = mem.load(a) else {
                    return abort();
                };
                next.set(*dst, v);
                tau(next, mem.clone(), Footprint::read(a))
            }
            Instr::Store(am, src) => {
                let Some(a) = resolve_addr(am, core, ge) else {
                    return abort();
                };
                let mut m = mem.clone();
                if !m.store(a, core.reg(*src)) {
                    return abort();
                }
                tau(next, m, Footprint::write(a))
            }
            Instr::Call(callee, n) => {
                if *n > MReg::ARGS.len() {
                    return abort();
                }
                next.awaiting = true;
                vec![LocalStep::Call {
                    callee: callee.clone(),
                    args: MReg::ARGS[..*n].iter().map(|&r| core.reg(r)).collect(),
                    cont: next,
                }]
            }
            Instr::Tailcall(callee, n) => {
                if *n > MReg::ARGS.len() {
                    return abort();
                }
                next.awaiting = true;
                next.tail_pending = true;
                vec![LocalStep::Call {
                    callee: callee.clone(),
                    args: MReg::ARGS[..*n].iter().map(|&r| core.reg(r)).collect(),
                    cont: next,
                }]
            }
            Instr::CondJump(c, r1, r2, lab) => {
                let Some(t) = c.eval(core.reg(*r1), core.reg(*r2)) else {
                    return abort();
                };
                if t {
                    let Some(pos) = find_label(f, *lab) else {
                        return abort();
                    };
                    next.pc = pos;
                }
                tau(next, mem.clone(), Footprint::emp())
            }
            Instr::CondImmJump(c, r, i, lab) => {
                let Some(t) = c.eval(core.reg(*r), Val::Int(*i)) else {
                    return abort();
                };
                if t {
                    let Some(pos) = find_label(f, *lab) else {
                        return abort();
                    };
                    next.pc = pos;
                }
                tau(next, mem.clone(), Footprint::emp())
            }
            Instr::Goto(lab) => {
                let Some(pos) = find_label(f, *lab) else {
                    return abort();
                };
                next.pc = pos;
                tau(next, mem.clone(), Footprint::emp())
            }
            Instr::Print(r) => match core.reg(*r) {
                Val::Int(i) => vec![LocalStep::Step {
                    msg: StepMsg::Event(Event::Print(i)),
                    fp: Footprint::emp(),
                    core: next,
                    mem: mem.clone(),
                }],
                _ => abort(),
            },
            Instr::Return => vec![LocalStep::Ret {
                val: core.reg(MReg::Eax),
            }],
        }
    }

    fn resume(&self, _module: &Self::Module, core: &Self::Core, ret: Val) -> Option<Self::Core> {
        if !core.awaiting {
            return None;
        }
        let mut next = core.clone();
        next.awaiting = false;
        next.set(MReg::Eax, ret);
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_core::world::run_main;

    #[test]
    fn frame_and_registers_work() {
        // f(n): [slot0] := n; eax := [slot0] * 3; ret
        let f = Function {
            frame_slots: 1,
            arity: 1,
            code: vec![
                Instr::Store(AddrMode::Stack(0), MReg::Edi),
                Instr::Load(AddrMode::Stack(0), MReg::Eax),
                Instr::Op(Op::MulImm(3), vec![MReg::Eax], MReg::Eax),
                Instr::Return,
            ],
        };
        let m = MachModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&MachLang, &m, &ge, "f", &[Val::Int(5)], 100).expect("runs");
        assert_eq!(v, Val::Int(15));
    }

    #[test]
    fn return_uses_eax_convention() {
        let f = Function {
            frame_slots: 0,
            arity: 0,
            code: vec![Instr::Op(Op::Const(9), vec![], MReg::Eax), Instr::Return],
        };
        let m = MachModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&MachLang, &m, &ge, "f", &[], 100).expect("runs");
        assert_eq!(v, Val::Int(9));
    }
}
