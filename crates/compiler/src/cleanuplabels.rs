//! The `CleanupLabels` pass: Linear → Linear (Fig. 11).
//!
//! Removes label definitions that no jump references — one of the four
//! CompCert optimization passes the paper verifies against its
//! footprint-preserving simulation.

use crate::linear::{Function, Instr, Label, LinearModule};
use std::collections::BTreeSet;

fn referenced_labels_with(f: &Function, only_gotos: bool) -> BTreeSet<Label> {
    f.code
        .iter()
        .filter_map(|i| match i {
            Instr::Goto(l) => Some(*l),
            // `only_gotos` is the seeded bug for mutation scoring:
            // conditional-jump targets are not counted as references, so
            // live branch targets get deleted.
            Instr::CondJump(.., l) | Instr::CondImmJump(.., l) if !only_gotos => Some(*l),
            _ => None,
        })
        .collect()
}

/// The labels some jump in `f` references — exactly the label
/// definitions the pass keeps. Exposed as the structural hint of the
/// `ccc-analysis` translation validator, which segments both sides of
/// the pass run at these labels.
pub fn referenced_labels(f: &Function) -> BTreeSet<Label> {
    referenced_labels_with(f, false)
}

fn transform_function_with(f: &Function, only_gotos: bool) -> Function {
    let used = referenced_labels_with(f, only_gotos);
    Function {
        params: f.params.clone(),
        stack_slots: f.stack_slots,
        spill_slots: f.spill_slots,
        code: f
            .code
            .iter()
            .filter(|i| match i {
                Instr::Label(l) => used.contains(l),
                _ => true,
            })
            .cloned()
            .collect(),
    }
}

/// Removes unreferenced labels from every function.
pub fn cleanup_labels(m: &LinearModule) -> LinearModule {
    LinearModule {
        funcs: m
            .funcs
            .iter()
            .map(|(n, f)| (n.clone(), transform_function_with(f, false)))
            .collect(),
    }
}

/// Seeded-bug variant for mutation scoring ([`crate::mutant`]): only
/// `Goto` targets count as references, so labels reached exclusively by
/// conditional jumps are removed and those jumps abort at runtime.
pub fn cleanup_labels_mutated(m: &LinearModule) -> LinearModule {
    LinearModule {
        funcs: m
            .funcs
            .iter()
            .map(|(n, f)| (n.clone(), transform_function_with(f, true)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearLang;
    use crate::ltl::Loc;
    use crate::ops::{Cmp, Op};
    use ccc_core::mem::{GlobalEnv, Val};
    use ccc_core::world::run_main;
    use ccc_machine::Reg;

    #[test]
    fn unreferenced_labels_removed_referenced_kept() {
        let f = Function {
            params: vec![Loc::Spill(0)],
            stack_slots: 0,
            spill_slots: 1,
            code: vec![
                Instr::Label(0), // unreferenced
                Instr::CondImmJump(Cmp::Eq, Loc::Spill(0), 0, 2),
                Instr::Label(1), // unreferenced
                Instr::Op(Op::Const(1), vec![], Loc::Reg(Reg::Ecx)),
                Instr::Label(2), // referenced
                Instr::Return(Some(Loc::Reg(Reg::Ecx))),
            ],
        };
        let m = LinearModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let c = cleanup_labels(&m);
        let labels: Vec<_> = c.funcs["f"]
            .code
            .iter()
            .filter_map(|i| match i {
                Instr::Label(l) => Some(*l),
                _ => None,
            })
            .collect();
        assert_eq!(labels, vec![2]);
        // Behaviour preserved (note: Ecx defaults to Undef; take the
        // branch that defines it).
        let ge = GlobalEnv::new();
        let (v1, _, _) = run_main(&LinearLang, &m, &ge, "f", &[Val::Int(1)], 100).expect("orig");
        let (v2, _, _) = run_main(&LinearLang, &c, &ge, "f", &[Val::Int(1)], 100).expect("clean");
        assert_eq!(v1, v2);
        assert_eq!(v1, Val::Int(1));
    }
}
