//! Seeded-bug pass variants ("mutants") for mutation scoring.
//!
//! The executable checkers of this reproduction — the per-pass
//! simulation ([`crate::verif`]), the differential interpreters, and the
//! `ccc-fuzz` pipeline fuzzer — replace CASCompCert's Coq proofs, so
//! their *sensitivity* must itself be validated. This module provides
//! one intentionally-wrong variant of every pipeline pass (plus the
//! `Constprop` extension and the `IdTrans` object-module transformation)
//! behind the [`Mutant`] enum. A mutation-kill harness compiles fuzzed
//! programs with [`compile_with_artifacts_mutated`] and proves each
//! mutant is caught ("killed") by the differential oracle within a
//! bounded budget.
//!
//! Every mutant is a *realistic* compiler bug: a dropped negation, an
//! off-by-one frame offset, an inverted branch, a coloring that ignores
//! interference, a lock object whose atomic blocks are silently erased.

use crate::allocation::{allocation, allocation_mutated};
use crate::asmgen::{asmgen, asmgen_dropcmp_mutated, asmgen_mutated};
use crate::cleanuplabels::{cleanup_labels, cleanup_labels_mutated};
use crate::cminorgen::{cminorgen, cminorgen_mutated, cminorgen_swap_mutated};
use crate::constprop::{
    constprop, constprop_branch_mutated, constprop_deadstore_mutated, constprop_mutated,
    constprop_widen_mutated,
};
use crate::driver::{CompilationArtifacts, CompileError};
use crate::linearize::{linearize, linearize_mutated};
use crate::renumber::{renumber, renumber_mutated};
use crate::rtlgen::{rtlgen, rtlgen_mutated, rtlgen_ret_mutated};
use crate::selection::{selection, selection_cmp_mutated, selection_mutated};
use crate::stacking::{stacking, stacking_mutated, stacking_off_mutated};
use crate::tailcall::{tailcall, tailcall_mutated};
use crate::tunneling::{tunneling, tunneling_mutated};
use ccc_cimp::ast::{CImpModule, Func, Stmt};
use ccc_clight::ClightModule;

/// One intentionally-wrong variant of each pipeline pass.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Mutant {
    /// Cshmgen/Cminorgen lays every local out at frame slot 0, so
    /// distinct locals alias.
    Cminorgen,
    /// Cshmgen/Cminorgen trades the frame slots of the first two locals
    /// while the layout hint still reports declaration order.
    CminorgenSwap,
    /// Selection drops the negation in the `x - c` → `x + (-c)`
    /// strength reduction.
    Selection,
    /// Selection forgets to swap the comparison when folding a constant
    /// left operand into `CmpImm`.
    SelectionCmpSwap,
    /// RTLgen branches to the *else* arm when the condition holds.
    Rtlgen,
    /// RTLgen compiles `return e` as a valueless return (always 0).
    RtlgenRetZero,
    /// Tailcall turns discarded-result calls into tail calls, dropping
    /// the continuation (a frame-clear's worth of trailing statements).
    Tailcall,
    /// Renumber keeps the function entry's stale pre-pass node id.
    Renumber,
    /// Constprop folds decided branches to the arm *not* taken.
    Constprop,
    /// Constprop's interval analysis stops merging loop-head inputs
    /// after the first update instead of widening, so loop guards are
    /// "decided" from first-iteration ranges and wrongly pruned.
    ConstpropWiden,
    /// Constprop prunes interval-decided branches to the *refuted* arm.
    ConstpropBranch,
    /// Constprop eliminates frame stores even when a load of the slot
    /// remains, so the load sees stale `Undef` instead of the value.
    ConstpropDeadStore,
    /// Allocation coalesces interfering live ranges onto one register.
    Allocation,
    /// Tunneling chases through `Op`s, skipping real computation.
    Tunneling,
    /// Linearize forgets to negate the condition when the layout falls
    /// through to the true branch.
    Linearize,
    /// CleanupLabels deletes labels referenced only by conditional
    /// jumps.
    CleanupLabels,
    /// Stacking lays spill slot `i` at frame offset `i` instead of
    /// `stack_slots + i`, clobbering stack variables.
    Stacking,
    /// Stacking lays spill slot `i` at frame offset `stack_slots+i+1`,
    /// so the last spill slot falls outside the declared frame.
    StackingOffByOne,
    /// Asmgen emits `Lt` comparisons with the `Le` condition code.
    Asmgen,
    /// Asmgen drops the `cmp` before immediate conditional jumps, so
    /// branches consume stale flags.
    AsmgenDropCmp,
    /// IdTrans strips atomic blocks from object (CImp) modules,
    /// breaking the mutual exclusion of the lock specification.
    IdTrans,
    /// IdTrans turns object-module `Assert`s into `Skip`s, silently
    /// weakening the lock specification's invariant checks.
    IdTransDropAssert,
}

impl Mutant {
    /// Every mutant, in pipeline order.
    pub const ALL: [Mutant; 22] = [
        Mutant::Cminorgen,
        Mutant::CminorgenSwap,
        Mutant::Selection,
        Mutant::SelectionCmpSwap,
        Mutant::Rtlgen,
        Mutant::RtlgenRetZero,
        Mutant::Tailcall,
        Mutant::Renumber,
        Mutant::Constprop,
        Mutant::ConstpropWiden,
        Mutant::ConstpropBranch,
        Mutant::ConstpropDeadStore,
        Mutant::Allocation,
        Mutant::Tunneling,
        Mutant::Linearize,
        Mutant::CleanupLabels,
        Mutant::Stacking,
        Mutant::StackingOffByOne,
        Mutant::Asmgen,
        Mutant::AsmgenDropCmp,
        Mutant::IdTrans,
        Mutant::IdTransDropAssert,
    ];

    /// The name of the pass this mutant corrupts (matching
    /// [`crate::PASS_NAMES`] where applicable).
    pub fn pass_name(self) -> &'static str {
        match self {
            Mutant::Cminorgen | Mutant::CminorgenSwap => "Cshmgen/Cminorgen",
            Mutant::Selection | Mutant::SelectionCmpSwap => "Selection",
            Mutant::Rtlgen | Mutant::RtlgenRetZero => "RTLgen",
            Mutant::Tailcall => "Tailcall",
            Mutant::Renumber => "Renumber",
            Mutant::Constprop
            | Mutant::ConstpropWiden
            | Mutant::ConstpropBranch
            | Mutant::ConstpropDeadStore => "Constprop",
            Mutant::Allocation => "Allocation",
            Mutant::Tunneling => "Tunneling",
            Mutant::Linearize => "Linearize",
            Mutant::CleanupLabels => "CleanupLabels",
            Mutant::Stacking | Mutant::StackingOffByOne => "Stacking",
            Mutant::Asmgen | Mutant::AsmgenDropCmp => "Asmgen",
            Mutant::IdTrans | Mutant::IdTransDropAssert => "IdTrans",
        }
    }

    /// A one-line description of the seeded bug.
    pub fn describe(self) -> &'static str {
        match self {
            Mutant::Cminorgen => "all locals share frame slot 0",
            Mutant::CminorgenSwap => "first two locals trade frame slots",
            Mutant::Selection => "x - c selects as x + c",
            Mutant::SelectionCmpSwap => "const-LHS comparisons fold unswapped",
            Mutant::Rtlgen => "if-branches swapped",
            Mutant::RtlgenRetZero => "return e compiled as return 0",
            Mutant::Tailcall => "discarded-result calls drop their continuation",
            Mutant::Renumber => "entry keeps its stale node id",
            Mutant::Constprop => "decided branches fold to the wrong arm",
            Mutant::ConstpropWiden => "loop-head intervals never widen past iteration one",
            Mutant::ConstpropBranch => "interval-decided branches fold to the refuted arm",
            Mutant::ConstpropDeadStore => "frame stores eliminated despite remaining loads",
            Mutant::Allocation => "coloring ignores interference",
            Mutant::Tunneling => "edges tunnel through Ops",
            Mutant::Linearize => "fall-through to true branch unnegated",
            Mutant::CleanupLabels => "cond-jump targets deleted",
            Mutant::Stacking => "spill offsets forget the stack_slots base",
            Mutant::StackingOffByOne => "spill offsets shifted past the frame end",
            Mutant::Asmgen => "Lt emitted as Le",
            Mutant::AsmgenDropCmp => "cmp dropped before immediate cond-jumps",
            Mutant::IdTrans => "atomic blocks stripped from object modules",
            Mutant::IdTransDropAssert => "object-module asserts erased",
        }
    }
}

impl std::fmt::Display for Mutant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.pass_name())
    }
}

/// Runs the *extended* pipeline (all standard passes plus the Constprop
/// extension after Renumber), with at most one pass replaced by its
/// seeded-bug variant. `mutant: None` gives the reference compilation
/// the differential oracle compares against.
///
/// The returned artifacts always carry the Constprop stage in
/// [`CompilationArtifacts::rtl_constprop`], so per-stage oracles cover
/// all thirteen transformations.
///
/// # Errors
///
/// Propagates the failing pass's error.
pub fn compile_with_artifacts_mutated(
    m: &ClightModule,
    mutant: Option<Mutant>,
) -> Result<CompilationArtifacts, CompileError> {
    let mu = |which: Mutant| mutant == Some(which);
    let cminor = if mu(Mutant::Cminorgen) {
        cminorgen_mutated(m)
    } else if mu(Mutant::CminorgenSwap) {
        cminorgen_swap_mutated(m)
    } else {
        cminorgen(m)
    }
    .map_err(CompileError::Cminorgen)?;
    let cminorsel = if mu(Mutant::Selection) {
        selection_mutated(&cminor)
    } else if mu(Mutant::SelectionCmpSwap) {
        selection_cmp_mutated(&cminor)
    } else {
        selection(&cminor)
    };
    let rtl = if mu(Mutant::Rtlgen) {
        rtlgen_mutated(&cminorsel)
    } else if mu(Mutant::RtlgenRetZero) {
        rtlgen_ret_mutated(&cminorsel)
    } else {
        rtlgen(&cminorsel)
    };
    let rtl_tailcall = if mu(Mutant::Tailcall) {
        tailcall_mutated(&rtl)
    } else {
        tailcall(&rtl)
    };
    let rtl_renumber = if mu(Mutant::Renumber) {
        renumber_mutated(&rtl_tailcall)
    } else {
        renumber(&rtl_tailcall)
    };
    let rtl_constprop = if mu(Mutant::Constprop) {
        constprop_mutated(&rtl_renumber)
    } else if mu(Mutant::ConstpropWiden) {
        constprop_widen_mutated(&rtl_renumber)
    } else if mu(Mutant::ConstpropBranch) {
        constprop_branch_mutated(&rtl_renumber)
    } else if mu(Mutant::ConstpropDeadStore) {
        constprop_deadstore_mutated(&rtl_renumber)
    } else {
        constprop(&rtl_renumber)
    };
    let ltl = if mu(Mutant::Allocation) {
        allocation_mutated(&rtl_constprop)
    } else {
        allocation(&rtl_constprop)
    };
    let ltl_tunneled = if mu(Mutant::Tunneling) {
        tunneling_mutated(&ltl)
    } else {
        tunneling(&ltl)
    };
    let linear = if mu(Mutant::Linearize) {
        linearize_mutated(&ltl_tunneled)
    } else {
        linearize(&ltl_tunneled)
    };
    let linear_clean = if mu(Mutant::CleanupLabels) {
        cleanup_labels_mutated(&linear)
    } else {
        cleanup_labels(&linear)
    };
    let mach = if mu(Mutant::Stacking) {
        stacking_mutated(&linear_clean)
    } else if mu(Mutant::StackingOffByOne) {
        stacking_off_mutated(&linear_clean)
    } else {
        stacking(&linear_clean)
    }
    .map_err(CompileError::Stacking)?;
    let asm = if mu(Mutant::Asmgen) {
        asmgen_mutated(&mach)
    } else if mu(Mutant::AsmgenDropCmp) {
        asmgen_dropcmp_mutated(&mach)
    } else {
        asmgen(&mach)
    }
    .map_err(CompileError::Asmgen)?;
    Ok(CompilationArtifacts {
        clight: m.clone(),
        cminor,
        cminorsel,
        rtl,
        rtl_tailcall,
        rtl_renumber,
        rtl_constprop: Some(rtl_constprop),
        ltl,
        ltl_tunneled,
        linear,
        linear_clean,
        mach,
        asm,
    })
}

fn strip_atomic(s: &Stmt) -> Stmt {
    match s {
        Stmt::Atomic(inner) => strip_atomic(inner),
        Stmt::Seq(ss) => Stmt::Seq(ss.iter().map(strip_atomic).collect()),
        Stmt::If(c, a, b) => Stmt::If(
            c.clone(),
            Box::new(strip_atomic(a)),
            Box::new(strip_atomic(b)),
        ),
        Stmt::While(c, b) => Stmt::While(c.clone(), Box::new(strip_atomic(b))),
        other => other.clone(),
    }
}

/// The [`Mutant::IdTrans`] seeded bug: the "identity" transformation of
/// object modules silently erases every atomic block, so the lock
/// specification's test-and-set races with itself.
pub fn id_trans_mutated(m: &CImpModule) -> CImpModule {
    map_bodies(m, &strip_atomic)
}

fn strip_assert(s: &Stmt) -> Stmt {
    match s {
        Stmt::Assert(_) => Stmt::Skip,
        Stmt::Atomic(inner) => Stmt::Atomic(Box::new(strip_assert(inner))),
        Stmt::Seq(ss) => Stmt::Seq(ss.iter().map(strip_assert).collect()),
        Stmt::If(c, a, b) => Stmt::If(
            c.clone(),
            Box::new(strip_assert(a)),
            Box::new(strip_assert(b)),
        ),
        Stmt::While(c, b) => Stmt::While(c.clone(), Box::new(strip_assert(b))),
        other => other.clone(),
    }
}

/// The [`Mutant::IdTransDropAssert`] seeded bug: object-module
/// `Assert`s become `Skip`s, so the lock specification no longer checks
/// its mutual-exclusion invariant on unlock.
pub fn id_trans_drop_assert(m: &CImpModule) -> CImpModule {
    map_bodies(m, &strip_assert)
}

fn map_bodies(m: &CImpModule, f: &dyn Fn(&Stmt) -> Stmt) -> CImpModule {
    CImpModule {
        funcs: m
            .funcs
            .iter()
            .map(|(n, func)| {
                (
                    n.clone(),
                    Func {
                        params: func.params.clone(),
                        body: f(&func.body),
                    },
                )
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_clight::gen::{gen_module, GenCfg};
    use ccc_clight::ClightLang;
    use ccc_core::world::run_main;
    use ccc_machine::X86Sc;

    #[test]
    fn reference_pipeline_matches_source() {
        for seed in 0..8 {
            let (m, ge) = gen_module(seed, &GenCfg::default());
            let arts = compile_with_artifacts_mutated(&m, None).expect("compiles");
            assert!(arts.rtl_constprop.is_some());
            let s = run_main(&ClightLang, &m, &ge, "f", &[], 1_000_000).expect("source runs");
            let t = run_main(&X86Sc, &arts.asm, &ge, "f", &[], 1_000_000).expect("target runs");
            assert_eq!(s.0, t.0, "seed {seed}");
            assert_eq!(s.2, t.2, "seed {seed}");
        }
    }

    #[test]
    fn every_mutant_changes_some_compilation() {
        // Not every mutant fires on every program, but each must alter
        // the output of *some* seed in a small pool — otherwise it is
        // not a mutant at all.
        let mut pool: Vec<_> = (0..12)
            .map(|seed| gen_module(seed, &GenCfg::default()).0)
            .collect();
        // gen_module emits no calls; the Tailcall mutant needs a
        // discarded-result call with a live continuation.
        {
            use ccc_clight::ast::{Expr as E, Function, Stmt};
            let g = Function {
                params: vec![],
                vars: vec![],
                body: Stmt::seq([Stmt::Print(E::Const(7)), Stmt::Return(Some(E::Const(1)))]),
            };
            let f = Function::simple(Stmt::seq([
                Stmt::call0("g", vec![]),
                Stmt::Print(E::Const(8)),
                Stmt::Return(Some(E::Const(2))),
            ]));
            pool.push(ClightModule::new([("f", f), ("g", g)]));
        }
        // Shapes the generator rarely or never emits: two addressable
        // locals (CminorgenSwap), a const-LHS loop guard
        // (SelectionCmpSwap, AsmgenDropCmp), a call with arguments
        // (StackingOffByOne spills the callee's params), a nonzero
        // return (RtlgenRetZero).
        {
            use ccc_clight::ast::{Binop, Expr as E, Function, Stmt};
            let g = Function {
                params: vec!["a".into(), "b".into()],
                vars: vec![],
                body: Stmt::Return(Some(E::add(E::temp("a"), E::temp("b")))),
            };
            let f = Function {
                params: vec![],
                vars: vec!["x".into(), "y".into()],
                body: Stmt::seq([
                    Stmt::Assign(E::var("x"), E::Const(3)),
                    Stmt::Assign(E::var("y"), E::Const(4)),
                    Stmt::Set("i".into(), E::Const(3)),
                    Stmt::while_loop(
                        E::bin(Binop::Lt, E::Const(0), E::temp("i")),
                        Stmt::seq([
                            Stmt::Assign(E::var("x"), E::add(E::var("x"), E::var("y"))),
                            Stmt::Set("i".into(), E::bin(Binop::Sub, E::temp("i"), E::Const(1))),
                        ]),
                    ),
                    Stmt::Call(Some("t".into()), "g".into(), vec![E::var("x"), E::var("y")]),
                    Stmt::Return(Some(E::temp("t"))),
                ]),
            };
            pool.push(ClightModule::new([("f", f), ("g", g)]));
        }
        // Interval-only decisions: the flag `t` alternates between 0
        // and 1, so its range [0, 1] is loop-stable without widening
        // and decides the redundant `t <= 5` guard — by ranges, never
        // by constants (ConstpropBranch prunes it to the refuted arm;
        // ConstpropWiden mis-decides the loop guard itself from the
        // unwidened first iteration; ConstpropDeadStore drops the
        // stores of `x`, which the return still loads).
        {
            use ccc_clight::ast::{Binop, Expr as E, Function, Stmt};
            let f = Function {
                params: vec![],
                vars: vec!["x".into()],
                body: Stmt::seq([
                    Stmt::Assign(E::var("x"), E::Const(0)),
                    Stmt::Set("i".into(), E::Const(0)),
                    Stmt::Set("t".into(), E::Const(0)),
                    Stmt::while_loop(
                        E::bin(Binop::Lt, E::temp("i"), E::Const(3)),
                        Stmt::seq([
                            Stmt::if_else(
                                E::bin(Binop::Le, E::temp("t"), E::Const(5)),
                                Stmt::Assign(E::var("x"), E::add(E::var("x"), E::Const(2))),
                                Stmt::Assign(E::var("x"), E::Const(-1)),
                            ),
                            Stmt::Set("t".into(), E::bin(Binop::Sub, E::Const(1), E::temp("t"))),
                            Stmt::Set("i".into(), E::add(E::temp("i"), E::Const(1))),
                        ]),
                    ),
                    Stmt::Return(Some(E::var("x"))),
                ]),
            };
            pool.push(ClightModule::new([("f", f)]));
        }
        for mu in Mutant::ALL {
            if mu == Mutant::IdTrans || mu == Mutant::IdTransDropAssert {
                continue; // exercised on CImp modules below
            }
            let fired = pool.iter().any(|m| {
                let a = compile_with_artifacts_mutated(m, None);
                let b = compile_with_artifacts_mutated(m, Some(mu));
                match (a, b) {
                    (Ok(a), Ok(b)) => format!("{:?}", a.asm) != format!("{:?}", b.asm),
                    _ => true,
                }
            });
            assert!(fired, "{mu}: mutant never alters the assembly");
        }
    }

    #[test]
    fn id_trans_drop_assert_erases_asserts() {
        use ccc_cimp::ast::Expr;
        let f = Func {
            params: vec![],
            body: Stmt::atomic(Stmt::Seq(vec![
                Stmt::Load("t".into(), Expr::global("L")),
                Stmt::Assert(Expr::Int(1)),
                Stmt::Store(Expr::global("L"), Expr::Int(1)),
            ])),
        };
        let m = CImpModule::new([("unlock", f)]);
        let dropped = id_trans_drop_assert(&m);
        fn has_assert(s: &Stmt) -> bool {
            match s {
                Stmt::Assert(_) => true,
                Stmt::Atomic(b) | Stmt::While(_, b) => has_assert(b),
                Stmt::Seq(ss) => ss.iter().any(has_assert),
                Stmt::If(_, a, b) => has_assert(a) || has_assert(b),
                _ => false,
            }
        }
        fn has_atomic(s: &Stmt) -> bool {
            match s {
                Stmt::Atomic(_) => true,
                Stmt::Seq(ss) => ss.iter().any(has_atomic),
                Stmt::If(_, a, b) => has_atomic(a) || has_atomic(b),
                Stmt::While(_, b) => has_atomic(b),
                _ => false,
            }
        }
        assert!(m.funcs.values().any(|f| has_assert(&f.body)));
        assert!(!dropped.funcs.values().any(|f| has_assert(&f.body)));
        // The atomic bracketing itself is preserved — only the assert
        // goes missing.
        assert!(dropped.funcs.values().any(|f| has_atomic(&f.body)));
    }

    #[test]
    fn id_trans_mutant_strips_atomics() {
        let (lock, _) = ccc_sync_lock_spec();
        let stripped = id_trans_mutated(&lock);
        fn has_atomic(s: &Stmt) -> bool {
            match s {
                Stmt::Atomic(_) => true,
                Stmt::Seq(ss) => ss.iter().any(has_atomic),
                Stmt::If(_, a, b) => has_atomic(a) || has_atomic(b),
                Stmt::While(_, b) => has_atomic(b),
                _ => false,
            }
        }
        assert!(lock.funcs.values().any(|f| has_atomic(&f.body)));
        assert!(!stripped.funcs.values().any(|f| has_atomic(&f.body)));
    }

    // A local copy of the sync crate's lock spec shape (ccc-compiler
    // does not depend on ccc-sync; any CImp module with atomics works).
    fn ccc_sync_lock_spec() -> (CImpModule, ()) {
        use ccc_cimp::ast::Expr;
        let lock = Func {
            params: vec![],
            body: Stmt::atomic(Stmt::Seq(vec![
                Stmt::Load("t".into(), Expr::global("L")),
                Stmt::Store(Expr::global("L"), Expr::Int(1)),
            ])),
        };
        (CImpModule::new([("lock", lock)]), ())
    }
}
