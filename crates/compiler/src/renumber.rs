//! The `Renumber` pass: RTL → RTL (Fig. 11).
//!
//! Renumbers CFG nodes into a compact range in depth-first order from
//! the entry, dropping unreachable instructions along the way.

use crate::rtl::{Function, Node, RtlModule};
use std::collections::BTreeMap;

/// The depth-first numbering the pass applies: old node id → new
/// compact id, for every node reachable from the entry. Exposed as the
/// structural hint the `ccc-analysis` translation validator uses as its
/// candidate block matching (the validator discharges the per-block
/// obligations independently, so a wrong hint can only cause rejection,
/// never acceptance).
pub fn renumber_permutation(f: &Function) -> BTreeMap<Node, Node> {
    let mut order: BTreeMap<Node, Node> = BTreeMap::new();
    let mut stack = vec![f.entry];
    let mut next: Node = 0;
    while let Some(n) = stack.pop() {
        if order.contains_key(&n) {
            continue;
        }
        let Some(instr) = f.code.get(&n) else {
            continue; // dangling edge; keep the graph as-is for it
        };
        order.insert(n, next);
        next += 1;
        for s in instr.succs().into_iter().rev() {
            if !order.contains_key(&s) {
                stack.push(s);
            }
        }
    }
    order
}

fn transform_function_with(f: &Function, stale_entry: bool) -> Function {
    let order = renumber_permutation(f);
    let renum = |n: Node| order.get(&n).copied().unwrap_or(n);
    let mut code = BTreeMap::new();
    for (n, instr) in &f.code {
        let Some(&new_n) = order.get(n) else {
            continue; // unreachable instruction dropped
        };
        let mut i = instr.clone();
        i.map_succs(renum);
        code.insert(new_n, i);
    }
    Function {
        params: f.params.clone(),
        stack_slots: f.stack_slots,
        // The seeded bug for mutation scoring: keeping the entry's *old*
        // node id, which now names a different instruction (or none).
        entry: if stale_entry { f.entry } else { renum(f.entry) },
        code,
    }
}

/// Runs the renumbering over a module.
pub fn renumber(m: &RtlModule) -> RtlModule {
    RtlModule {
        funcs: m
            .funcs
            .iter()
            .map(|(n, f)| (n.clone(), transform_function_with(f, false)))
            .collect(),
    }
}

/// Seeded-bug variant for mutation scoring ([`crate::mutant`]): nodes
/// are renumbered but the function entry keeps its stale pre-pass id.
pub fn renumber_mutated(m: &RtlModule) -> RtlModule {
    RtlModule {
        funcs: m
            .funcs
            .iter()
            .map(|(n, f)| (n.clone(), transform_function_with(f, true)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Cmp, Op};
    use crate::rtl::Instr;
    use crate::rtl::RtlLang;
    use ccc_core::mem::{GlobalEnv, Val};
    use ccc_core::world::run_main;

    #[test]
    fn nodes_become_compact_and_entry_is_zero() {
        let f = Function {
            params: vec![],
            stack_slots: 0,
            entry: 100,
            code: BTreeMap::from([
                (100, Instr::Op(Op::Const(1), vec![], 0, 250)),
                (250, Instr::Return(Some(0))),
                (999, Instr::Nop(999)), // unreachable
            ]),
        };
        let m = RtlModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let r = renumber(&m);
        let rf = &r.funcs["f"];
        assert_eq!(rf.entry, 0);
        assert_eq!(rf.code.keys().copied().collect::<Vec<_>>(), vec![0, 1]);
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&RtlLang, &r, &ge, "f", &[], 100).expect("runs");
        assert_eq!(v, Val::Int(1));
    }

    #[test]
    fn behaviour_preserved_on_branching_code() {
        let f = Function {
            params: vec![0],
            stack_slots: 0,
            entry: 7,
            code: BTreeMap::from([
                (7, Instr::CondImm(Cmp::Lt, 0, 10, 20, 30)),
                (20, Instr::Op(Op::Const(1), vec![], 1, 40)),
                (30, Instr::Op(Op::Const(2), vec![], 1, 40)),
                (40, Instr::Return(Some(1))),
            ]),
        };
        let m = RtlModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let r = renumber(&m);
        let ge = GlobalEnv::new();
        for arg in [5, 15] {
            let (v1, _, _) = run_main(&RtlLang, &m, &ge, "f", &[Val::Int(arg)], 100).expect("orig");
            let (v2, _, _) =
                run_main(&RtlLang, &r, &ge, "f", &[Val::Int(arg)], 100).expect("renum");
            assert_eq!(v1, v2);
        }
    }
}
