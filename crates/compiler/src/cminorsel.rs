//! CminorSel: Cminor after instruction selection — expressions are
//! trees of machine operators ([`Op`]) and loads through selected
//! addressing modes ([`AddrMode`]).

use crate::ops::{AddrMode, Op};
use crate::stmt_sem::{EvalCtx, ExprEval, StmtLang, StmtModule};
use ccc_core::footprint::Footprint;
use ccc_core::mem::{Addr, Val};

/// CminorSel expressions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A temporary read.
    Temp(String),
    /// An operator application.
    Op(Op, Vec<Expr>),
    /// A load through an addressing mode.
    Load(AddrMode<Box<Expr>>),
}

impl Expr {
    /// An integer constant.
    pub fn imm(i: i64) -> Expr {
        Expr::Op(Op::Const(i), vec![])
    }

    /// A temporary read.
    pub fn temp(name: impl Into<String>) -> Expr {
        Expr::Temp(name.into())
    }
}

/// Resolves an addressing mode to an address, accumulating footprints of
/// the base expression.
pub(crate) fn resolve_addr(
    am: &AddrMode<Box<Expr>>,
    ctx: &EvalCtx<'_>,
) -> Option<(Addr, Footprint)> {
    match am {
        AddrMode::Global(g, o) => Some((ctx.ge.lookup(g)?.offset(*o), Footprint::emp())),
        AddrMode::Stack(n) => Some((ctx.slot_addr(*n)?, Footprint::emp())),
        AddrMode::Based(e, d) => {
            let (v, fp) = e.eval(ctx)?;
            let Val::Ptr(a) = v else {
                return None;
            };
            Some((Addr(a.0.wrapping_add(*d as u64)), fp))
        }
    }
}

impl ExprEval for Expr {
    const LANG_NAME: &'static str = "CminorSel";

    fn eval(&self, ctx: &EvalCtx<'_>) -> Option<(Val, Footprint)> {
        match self {
            Expr::Temp(t) => Some((ctx.temp(t), Footprint::emp())),
            Expr::Op(op, args) => {
                let mut fp = Footprint::emp();
                let mut vals = Vec::new();
                for a in args {
                    let (v, f) = a.eval(ctx)?;
                    fp.extend(&f);
                    vals.push(v);
                }
                // Address operators need the context.
                let v = match op {
                    Op::AddrGlobal(g, o) => Val::Ptr(ctx.ge.lookup(g)?.offset(*o)),
                    Op::AddrStack(n) => Val::Ptr(ctx.slot_addr(*n)?),
                    other => other.eval(&vals)?,
                };
                Some((v, fp))
            }
            Expr::Load(am) => {
                let (a, mut fp) = resolve_addr(am, ctx)?;
                let v = ctx.load(a, &mut fp)?;
                Some((v, fp))
            }
        }
    }
}

/// CminorSel statements.
pub type Stmt = crate::stmt_sem::Stmt<Expr>;
/// CminorSel functions.
pub type Function = crate::stmt_sem::Function<Expr>;
/// CminorSel modules.
pub type CminorSelModule = StmtModule<Expr>;
/// The CminorSel language dispatcher.
pub type CminorSelLang = StmtLang<Expr>;

/// The CminorSel dispatcher value.
pub const CMINORSEL: CminorSelLang = StmtLang::new();

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Cmp;
    use ccc_core::mem::GlobalEnv;
    use ccc_core::world::run_main;

    #[test]
    fn selected_ops_evaluate() {
        // f() { t := (3 + 4) * 2; return t == 14; }
        let body = Stmt::seq([
            Stmt::Set(
                "t".into(),
                Expr::Op(
                    Op::MulImm(2),
                    vec![Expr::Op(Op::AddImm(4), vec![Expr::imm(3)])],
                ),
            ),
            Stmt::Return(Some(Expr::Op(
                Op::CmpImm(Cmp::Eq, 14),
                vec![Expr::temp("t")],
            ))),
        ]);
        let m = CminorSelModule::new([(
            "f",
            Function {
                params: vec![],
                stack_slots: 0,
                body,
            },
        )]);
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&CMINORSEL, &m, &ge, "f", &[], 100).expect("runs");
        assert_eq!(v, Val::Int(1));
    }

    #[test]
    fn addressing_modes_resolve() {
        let mut ge = GlobalEnv::new();
        ge.define_block("arr", &[Val::Int(10), Val::Int(20)]);
        // f() { t := [arr + 1 word]; [stack0] := t; return [stack0]; }
        let body = Stmt::seq([
            Stmt::Set("t".into(), Expr::Load(AddrMode::Global("arr".into(), 1))),
            Stmt::Store(Expr::Op(Op::AddrStack(0), vec![]), Expr::temp("t")),
            Stmt::Return(Some(Expr::Load(AddrMode::Stack(0)))),
        ]);
        let m = CminorSelModule::new([(
            "f",
            Function {
                params: vec![],
                stack_slots: 1,
                body,
            },
        )]);
        let (v, _, _) = run_main(&CMINORSEL, &m, &ge, "f", &[], 100).expect("runs");
        assert_eq!(v, Val::Int(20));
    }

    #[test]
    fn based_addressing_with_displacement() {
        let mut ge = GlobalEnv::new();
        let base = ge.define_block("arr", &[Val::Int(1), Val::Int(2), Val::Int(3)]);
        let _ = base;
        // f() { p := &arr; return [p + 2]; }
        let body = Stmt::seq([
            Stmt::Set(
                "p".into(),
                Expr::Op(Op::AddrGlobal("arr".into(), 0), vec![]),
            ),
            Stmt::Return(Some(Expr::Load(AddrMode::Based(
                Box::new(Expr::temp("p")),
                2,
            )))),
        ]);
        let m = CminorSelModule::new([(
            "f",
            Function {
                params: vec![],
                stack_slots: 0,
                body,
            },
        )]);
        let (v, _, _) = run_main(&CMINORSEL, &m, &ge, "f", &[], 100).expect("runs");
        assert_eq!(v, Val::Int(3));
    }
}
