//! A generic footprint-instrumented interpreter for statement-structured
//! IRs with explicit stack frames (Cminor and CminorSel).
//!
//! The two IRs share their statement layer — only expressions differ
//! (Clight operators vs selected machine operators). The interpreter is
//! therefore generic over an expression type implementing [`ExprEval`],
//! and each IR is an instantiation ([`crate::cminor`],
//! [`crate::cminorsel`]).

use ccc_core::footprint::Footprint;
use ccc_core::lang::{Event, Lang, LocalStep, StepMsg};
use ccc_core::mem::{Addr, FreeList, GlobalEnv, Memory, Val};
use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;

/// The evaluation context an expression sees: the temporaries, the
/// frame, the global environment and the memory.
#[derive(Debug)]
pub struct EvalCtx<'a> {
    /// Temporary environment.
    pub temps: &'a BTreeMap<String, Val>,
    /// Frame base address (always allocated by the time expressions
    /// run).
    pub frame: Option<Addr>,
    /// Declared frame size in words.
    pub stack_slots: u64,
    /// The linked global environment.
    pub ge: &'a GlobalEnv,
    /// The memory.
    pub mem: &'a Memory,
}

impl EvalCtx<'_> {
    /// The address of frame slot `n`, bounds-checked.
    pub fn slot_addr(&self, n: u64) -> Option<Addr> {
        if n >= self.stack_slots {
            return None;
        }
        Some(self.frame?.offset(n))
    }

    /// The value of temporary `t` (`undef` if unset).
    pub fn temp(&self, t: &str) -> Val {
        self.temps.get(t).copied().unwrap_or(Val::Undef)
    }

    /// Loads from `a`, extending `fp` with the read.
    pub fn load(&self, a: Addr, fp: &mut Footprint) -> Option<Val> {
        let v = self.mem.load(a)?;
        fp.extend(&Footprint::read(a));
        Some(v)
    }
}

/// An expression language usable by the generic statement machine.
pub trait ExprEval: Clone + PartialEq + Eq + Hash + fmt::Debug {
    /// The IR's display name.
    const LANG_NAME: &'static str;

    /// Evaluates the expression, returning its value and read
    /// footprint; `None` means the evaluation goes wrong.
    fn eval(&self, ctx: &EvalCtx<'_>) -> Option<(Val, Footprint)>;
}

/// Statements over expressions `E` (the Cminor statement layer).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Stmt<E> {
    /// No-op.
    Skip,
    /// `t = e`.
    Set(String, E),
    /// `[e1] = e2`.
    Store(E, E),
    /// `t = f(args…)` / `f(args…)`.
    Call(Option<String>, String, Vec<E>),
    /// `print(e)`.
    Print(E),
    /// Sequential composition.
    Seq(Vec<Stmt<E>>),
    /// Conditional.
    If(E, Box<Stmt<E>>, Box<Stmt<E>>),
    /// Loop.
    While(E, Box<Stmt<E>>),
    /// Break out of the innermost loop.
    Break,
    /// Continue the innermost loop.
    Continue,
    /// Return.
    Return(Option<E>),
}

impl<E> Stmt<E> {
    /// Sequences statements, flattening nested sequences and dropping
    /// skips.
    pub fn seq(stmts: impl IntoIterator<Item = Stmt<E>>) -> Stmt<E> {
        let mut out = Vec::new();
        for s in stmts {
            match s {
                Stmt::Seq(inner) => out.extend(inner),
                Stmt::Skip => {}
                other => out.push(other),
            }
        }
        Stmt::Seq(out)
    }
}

/// A function of a statement IR.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Function<E> {
    /// Parameters (temporaries).
    pub params: Vec<String>,
    /// Frame size in words.
    pub stack_slots: u64,
    /// The body.
    pub body: Stmt<E>,
}

/// A module of a statement IR.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StmtModule<E> {
    /// Functions by name.
    pub funcs: BTreeMap<String, Function<E>>,
}

impl<E> Default for StmtModule<E> {
    fn default() -> Self {
        StmtModule {
            funcs: BTreeMap::new(),
        }
    }
}

impl<E> StmtModule<E> {
    /// Builds a module from `(name, function)` pairs.
    pub fn new(funcs: impl IntoIterator<Item = (impl Into<String>, Function<E>)>) -> Self {
        StmtModule {
            funcs: funcs.into_iter().map(|(n, f)| (n.into(), f)).collect(),
        }
    }
}

/// Work items of the continuation machine.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Kont<E> {
    /// Execute a statement.
    Stmt(Stmt<E>),
    /// Loop marker.
    Loop(E, Stmt<E>),
    /// Emit a pending external call.
    DoCall(Option<String>, String, Vec<Val>),
    /// Emit a pending print event.
    DoPrint(i64),
    /// Emit a pending return.
    DoRet(Val),
    /// Receive a call result.
    RecvRet(Option<String>),
}

/// The core state of a statement IR.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct StmtCore<E> {
    temps: BTreeMap<String, Val>,
    frame: Option<Addr>,
    stack_slots: u64,
    cont: Vec<Kont<E>>,
}

/// The generic language dispatcher; instantiate with an expression
/// type, e.g. `StmtLang<crate::cminor::Expr>`.
pub struct StmtLang<E>(PhantomData<E>);

impl<E> StmtLang<E> {
    /// The dispatcher value.
    pub const fn new() -> StmtLang<E> {
        StmtLang(PhantomData)
    }
}

impl<E> Default for StmtLang<E> {
    fn default() -> Self {
        StmtLang::new()
    }
}

impl<E> Clone for StmtLang<E> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E> Copy for StmtLang<E> {}
impl<E> fmt::Debug for StmtLang<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StmtLang")
    }
}

/// First-fit allocation of a contiguous block from the free list.
pub(crate) fn first_free_block(flist: &FreeList, mem: &Memory, words: u64) -> Addr {
    let mut n = 0;
    'outer: loop {
        for k in 0..words {
            if mem.contains(flist.addr_at(n + k)) {
                n += k + 1;
                continue 'outer;
            }
        }
        return flist.addr_at(n);
    }
}

impl<E: ExprEval> Lang for StmtLang<E> {
    type Module = StmtModule<E>;
    type Core = StmtCore<E>;

    fn name(&self) -> &'static str {
        E::LANG_NAME
    }

    fn exports(&self, module: &Self::Module) -> Vec<String> {
        module.funcs.keys().cloned().collect()
    }

    fn init_core(
        &self,
        module: &Self::Module,
        _ge: &GlobalEnv,
        entry: &str,
        args: &[Val],
    ) -> Option<Self::Core> {
        let f = module.funcs.get(entry)?;
        if args.len() > f.params.len() {
            return None;
        }
        let mut temps = BTreeMap::new();
        for (p, &v) in f.params.iter().zip(args) {
            temps.insert(p.clone(), v);
        }
        Some(StmtCore {
            temps,
            frame: (f.stack_slots == 0).then_some(Addr(0)),
            stack_slots: f.stack_slots,
            cont: vec![Kont::Stmt(f.body.clone())],
        })
    }

    fn step(
        &self,
        _module: &Self::Module,
        ge: &GlobalEnv,
        flist: &FreeList,
        core: &Self::Core,
        mem: &Memory,
    ) -> Vec<LocalStep<Self::Core>> {
        let tau = |core: StmtCore<E>, mem: Memory, fp: Footprint| {
            vec![LocalStep::Step {
                msg: StepMsg::Tau,
                fp,
                core,
                mem,
            }]
        };
        let abort = || vec![LocalStep::Abort];
        let mut next = core.clone();

        // Pending frame allocation is the first step.
        if next.frame.is_none() {
            let base = first_free_block(flist, mem, next.stack_slots);
            let mut m = mem.clone();
            let mut fp = Footprint::emp();
            for k in 0..next.stack_slots {
                m.alloc(base.offset(k), Val::Undef);
                fp.extend(&Footprint::write(base.offset(k)));
            }
            next.frame = Some(base);
            return tau(next, m, fp);
        }

        // Short-lived evaluation helper: borrows `next` only for the
        // duration of one call, so the arms below may mutate it.
        fn eval_e<E: ExprEval>(
            e: &E,
            core: &StmtCore<E>,
            ge: &GlobalEnv,
            mem: &Memory,
        ) -> Option<(Val, Footprint)> {
            e.eval(&EvalCtx {
                temps: &core.temps,
                frame: core.frame,
                stack_slots: core.stack_slots,
                ge,
                mem,
            })
        }

        let Some(item) = next.cont.pop() else {
            return vec![LocalStep::Ret { val: Val::Int(0) }];
        };
        match item {
            Kont::Loop(c, body) => {
                let Some((v, fp)) = eval_e(&c, &next, ge, mem) else {
                    return abort();
                };
                match v.truth() {
                    Some(true) => {
                        next.cont.push(Kont::Loop(c, body.clone()));
                        next.cont.push(Kont::Stmt(body));
                        tau(next, mem.clone(), fp)
                    }
                    Some(false) => tau(next, mem.clone(), fp),
                    None => abort(),
                }
            }
            Kont::DoCall(dst, callee, args) => {
                next.cont.push(Kont::RecvRet(dst));
                vec![LocalStep::Call {
                    callee,
                    args,
                    cont: next,
                }]
            }
            Kont::DoPrint(i) => vec![LocalStep::Step {
                msg: StepMsg::Event(Event::Print(i)),
                fp: Footprint::emp(),
                core: next,
                mem: mem.clone(),
            }],
            Kont::DoRet(v) => vec![LocalStep::Ret { val: v }],
            Kont::RecvRet(_) => abort(),
            Kont::Stmt(stmt) => match stmt {
                Stmt::Skip => tau(next, mem.clone(), Footprint::emp()),
                Stmt::Set(t, e) => {
                    let Some((v, fp)) = eval_e(&e, &next, ge, mem) else {
                        return abort();
                    };
                    next.temps.insert(t, v);
                    tau(next, mem.clone(), fp)
                }
                Stmt::Store(ea, ev) => {
                    let Some((Val::Ptr(a), fp1)) = eval_e(&ea, &next, ge, mem) else {
                        return abort();
                    };
                    let Some((v, fp2)) = eval_e(&ev, &next, ge, mem) else {
                        return abort();
                    };
                    let mut m = mem.clone();
                    if !m.store(a, v) {
                        return abort();
                    }
                    tau(next, m, fp1.union(&fp2).union(&Footprint::write(a)))
                }
                Stmt::Call(dst, callee, args) => {
                    let mut fp = Footprint::emp();
                    let mut vals = Vec::new();
                    for a in &args {
                        let Some((v, f)) = eval_e(a, &next, ge, mem) else {
                            return abort();
                        };
                        fp.extend(&f);
                        vals.push(v);
                    }
                    next.cont.push(Kont::DoCall(dst, callee, vals));
                    tau(next, mem.clone(), fp)
                }
                Stmt::Print(e) => {
                    let Some((Val::Int(i), fp)) = eval_e(&e, &next, ge, mem) else {
                        return abort();
                    };
                    next.cont.push(Kont::DoPrint(i));
                    tau(next, mem.clone(), fp)
                }
                Stmt::Seq(stmts) => {
                    for s in stmts.into_iter().rev() {
                        next.cont.push(Kont::Stmt(s));
                    }
                    tau(next, mem.clone(), Footprint::emp())
                }
                Stmt::If(c, then, els) => {
                    let Some((v, fp)) = eval_e(&c, &next, ge, mem) else {
                        return abort();
                    };
                    match v.truth() {
                        Some(t) => {
                            next.cont.push(Kont::Stmt(if t { *then } else { *els }));
                            tau(next, mem.clone(), fp)
                        }
                        None => abort(),
                    }
                }
                Stmt::While(c, body) => {
                    next.cont.push(Kont::Loop(c, *body));
                    tau(next, mem.clone(), Footprint::emp())
                }
                Stmt::Break => {
                    loop {
                        match next.cont.pop() {
                            Some(Kont::Loop(..)) => break,
                            Some(_) => {}
                            None => return abort(),
                        }
                    }
                    tau(next, mem.clone(), Footprint::emp())
                }
                Stmt::Continue => {
                    loop {
                        match next.cont.last() {
                            Some(Kont::Loop(..)) => break,
                            Some(_) => {
                                next.cont.pop();
                            }
                            None => return abort(),
                        }
                    }
                    tau(next, mem.clone(), Footprint::emp())
                }
                Stmt::Return(None) => vec![LocalStep::Ret { val: Val::Int(0) }],
                Stmt::Return(Some(e)) => {
                    let Some((v, fp)) = eval_e(&e, &next, ge, mem) else {
                        return abort();
                    };
                    next.cont.push(Kont::DoRet(v));
                    tau(next, mem.clone(), fp)
                }
            },
        }
    }

    fn resume(&self, _module: &Self::Module, core: &Self::Core, ret: Val) -> Option<Self::Core> {
        let mut next = core.clone();
        match next.cont.pop() {
            Some(Kont::RecvRet(dst)) => {
                if let Some(t) = dst {
                    next.temps.insert(t, ret);
                }
                Some(next)
            }
            _ => None,
        }
    }
}
