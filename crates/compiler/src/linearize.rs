//! The `Linearize` pass: LTL → Linear (Fig. 11).
//!
//! CFG nodes are emitted in depth-first order from the entry; fall-
//! through is used where the next node in the layout is the successor,
//! explicit `Goto`s otherwise. Labels carry the original node ids (the
//! following `CleanupLabels` pass removes the unreferenced ones).

use crate::linear::{Function as LinFunction, Instr as LIn, LinearModule};
use crate::ltl::{Function, Instr, LtlModule};
use crate::rtl::Node;

/// The depth-first block order the pass emits (reachable nodes only).
/// Exposed as the block-order hint of the `ccc-analysis` translation
/// validator: labels carry the original node ids, so this is also the
/// candidate block matching.
pub fn layout(f: &Function) -> Vec<Node> {
    let mut order = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut stack = vec![f.entry];
    while let Some(n) = stack.pop() {
        if !seen.insert(n) || !f.code.contains_key(&n) {
            continue;
        }
        order.push(n);
        // Push the fall-through candidate last so it is visited next.
        let succs = f.code[&n].succs();
        for &s in succs.iter().rev() {
            stack.push(s);
        }
    }
    order
}

fn transform_function_with(f: &Function, unnegated: bool) -> LinFunction {
    let order = layout(f);
    let mut code = Vec::new();
    for (idx, &n) in order.iter().enumerate() {
        let next = order.get(idx + 1).copied();
        code.push(LIn::Label(n));
        let goto_unless_next = |code: &mut Vec<LIn>, target: Node| {
            if next != Some(target) {
                code.push(LIn::Goto(target));
            }
        };
        match &f.code[&n] {
            Instr::Nop(s) => goto_unless_next(&mut code, *s),
            Instr::Op(op, args, dst, s) => {
                code.push(LIn::Op(op.clone(), args.clone(), *dst));
                goto_unless_next(&mut code, *s);
            }
            Instr::Load(am, dst, s) => {
                code.push(LIn::Load(am.clone(), *dst));
                goto_unless_next(&mut code, *s);
            }
            Instr::Store(am, src, s) => {
                code.push(LIn::Store(am.clone(), *src));
                goto_unless_next(&mut code, *s);
            }
            Instr::Call(dst, callee, args, s) => {
                code.push(LIn::Call(*dst, callee.clone(), args.clone()));
                goto_unless_next(&mut code, *s);
            }
            Instr::Tailcall(callee, args) => {
                code.push(LIn::Tailcall(callee.clone(), args.clone()));
            }
            Instr::Cond(c, a, b, t, e) => {
                // Prefer falling through to the false branch. `unnegated`
                // is the seeded bug for mutation scoring: when the layout
                // falls through to the *true* branch, the jump to the
                // false branch keeps the un-negated condition.
                if next == Some(*e) {
                    code.push(LIn::CondJump(*c, *a, *b, *t));
                } else if next == Some(*t) {
                    let c = if unnegated { *c } else { c.negate() };
                    code.push(LIn::CondJump(c, *a, *b, *e));
                } else {
                    code.push(LIn::CondJump(*c, *a, *b, *t));
                    code.push(LIn::Goto(*e));
                }
            }
            Instr::CondImm(c, r, i, t, e) => {
                if next == Some(*e) {
                    code.push(LIn::CondImmJump(*c, *r, *i, *t));
                } else if next == Some(*t) {
                    let c = if unnegated { *c } else { c.negate() };
                    code.push(LIn::CondImmJump(c, *r, *i, *e));
                } else {
                    code.push(LIn::CondImmJump(*c, *r, *i, *t));
                    code.push(LIn::Goto(*e));
                }
            }
            Instr::Print(r, s) => {
                code.push(LIn::Print(*r));
                goto_unless_next(&mut code, *s);
            }
            Instr::Return(r) => code.push(LIn::Return(*r)),
        }
    }
    LinFunction {
        params: f.params.clone(),
        stack_slots: f.stack_slots,
        spill_slots: f.spill_slots,
        code,
    }
}

/// Runs linearization over a module.
pub fn linearize(m: &LtlModule) -> LinearModule {
    LinearModule {
        funcs: m
            .funcs
            .iter()
            .map(|(n, f)| (n.clone(), transform_function_with(f, false)))
            .collect(),
    }
}

/// Seeded-bug variant for mutation scoring ([`crate::mutant`]): when the
/// layout falls through to the true branch, the branch to the false
/// label forgets to negate the condition, inverting the conditional.
pub fn linearize_mutated(m: &LtlModule) -> LinearModule {
    LinearModule {
        funcs: m
            .funcs
            .iter()
            .map(|(n, f)| (n.clone(), transform_function_with(f, true)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearLang;
    use crate::ltl::{Loc, LtlLang};
    use crate::ops::{Cmp, Op};
    use ccc_core::mem::{GlobalEnv, Val};
    use ccc_core::world::run_main;
    use ccc_machine::Reg;
    use std::collections::BTreeMap;

    fn branching_ltl() -> LtlModule {
        let f = Function {
            params: vec![Loc::Spill(0)],
            stack_slots: 0,
            spill_slots: 1,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::CondImm(Cmp::Lt, Loc::Spill(0), 0, 1, 2)),
                (1, Instr::Op(Op::Const(-1), vec![], Loc::Reg(Reg::Ecx), 3)),
                (2, Instr::Op(Op::Const(1), vec![], Loc::Reg(Reg::Ecx), 3)),
                (3, Instr::Return(Some(Loc::Reg(Reg::Ecx)))),
            ]),
        };
        LtlModule {
            funcs: [("f".to_string(), f)].into(),
        }
    }

    #[test]
    fn linearized_code_behaves_identically() {
        let m = branching_ltl();
        let lin = linearize(&m);
        let ge = GlobalEnv::new();
        for arg in [-5, 5] {
            let (v1, _, _) = run_main(&LtlLang, &m, &ge, "f", &[Val::Int(arg)], 100).expect("ltl");
            let (v2, _, _) =
                run_main(&LinearLang, &lin, &ge, "f", &[Val::Int(arg)], 100).expect("linear");
            assert_eq!(v1, v2, "arg {arg}");
        }
    }

    #[test]
    fn fallthrough_avoids_redundant_gotos() {
        let m = branching_ltl();
        let lin = linearize(&m);
        let gotos = lin.funcs["f"]
            .code
            .iter()
            .filter(|i| matches!(i, LIn::Goto(_)))
            .count();
        // The diamond needs at most one explicit goto.
        assert!(gotos <= 1, "{:?}", lin.funcs["f"].code);
    }
}
