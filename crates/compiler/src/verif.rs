//! Per-pass validation against the footprint-preserving module-local
//! simulation — the executable reading of `Correct(CompCert)` (Lem. 13
//! of the paper).
//!
//! For every pass, the source and target IR programs of one compilation
//! are checked against `4φ` (Defs. 2–3) by
//! [`ccc_core::sim::check_module_sim`]: lockstep execution between
//! switch points, `FPmatch`/`LG` at every switch point, sampled rely
//! perturbations of the shared globals, and termination preservation.
//! `φ` is the identity — the pipeline preserves the global layout.

use crate::driver::CompilationArtifacts;
use ccc_core::footprint::Mu;
use ccc_core::mem::{Addr, GlobalEnv, Val};
use ccc_core::sim::{check_module_sim, ModuleCtx, SimError, SimOptions, SimReport};

/// The verdict for one pass of one compilation.
#[derive(Debug)]
pub struct PassVerdict {
    /// The pass name (see [`crate::PASS_NAMES`]).
    pub pass: &'static str,
    /// The simulation check outcome.
    pub result: Result<SimReport, SimError>,
}

impl PassVerdict {
    /// True if the simulation held.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.result.is_ok()
    }
}

/// The verdicts of every pass of one compilation, in pipeline order.
///
/// Unlike a bare bool, the verdict names the first *failing pass*, so a
/// broken compilation localizes itself.
#[derive(Debug)]
pub struct PipelineVerdict {
    /// One verdict per pass, in pipeline order.
    pub verdicts: Vec<PassVerdict>,
}

impl PipelineVerdict {
    /// True if every pass's simulation held.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.verdicts.iter().all(PassVerdict::ok)
    }

    /// The first failing verdict, if any.
    pub fn failing(&self) -> Option<&PassVerdict> {
        self.verdicts.iter().find(|v| !v.ok())
    }

    /// The name of the first failing pass, if any.
    pub fn failing_pass(&self) -> Option<&'static str> {
        self.failing().map(|v| v.pass)
    }

    /// Iterates the per-pass verdicts.
    pub fn iter(&self) -> std::slice::Iter<'_, PassVerdict> {
        self.verdicts.iter()
    }
}

impl IntoIterator for PipelineVerdict {
    type Item = PassVerdict;
    type IntoIter = std::vec::IntoIter<PassVerdict>;
    fn into_iter(self) -> Self::IntoIter {
        self.verdicts.into_iter()
    }
}

impl<'a> IntoIterator for &'a PipelineVerdict {
    type Item = &'a PassVerdict;
    type IntoIter = std::slice::Iter<'a, PassVerdict>;
    fn into_iter(self) -> Self::IntoIter {
        self.verdicts.iter()
    }
}

/// Default rely perturbations: a couple of integer writes to each shared
/// global (exercising Def. 3 case 2(c) with concrete environment steps).
pub fn default_perturbations(ge: &GlobalEnv) -> Vec<Vec<(Addr, Val)>> {
    let cells: Vec<Addr> = ge.init_iter().map(|(a, _)| a).collect();
    if cells.is_empty() {
        return Vec::new();
    }
    let all_5: Vec<(Addr, Val)> = cells.iter().map(|&a| (a, Val::Int(5))).collect();
    let all_m1: Vec<(Addr, Val)> = cells.iter().map(|&a| (a, Val::Int(-1))).collect();
    vec![all_5, all_m1]
}

/// Checks the simulation for every pass of a compilation, on entry
/// `entry`, with the given shared global environment (used on both
/// sides — the pipeline preserves the layout, so `φ = id`). When the
/// artifacts carry the Constprop extension stage, it is verified too.
pub fn verify_passes(arts: &CompilationArtifacts, ge: &GlobalEnv, entry: &str) -> PipelineVerdict {
    verify_passes_filtered(arts, ge, entry, &|_| true)
}

/// Like [`verify_passes`], but only runs the passes whose name `keep`
/// accepts, skipping the (expensive) co-execution of the rest. This is
/// how the `Validation::Static` mode of `ccc-analysis` falls back to
/// the differential check for exactly the passes its symbolic validator
/// reports as `Unsupported`.
pub fn verify_passes_filtered(
    arts: &CompilationArtifacts,
    ge: &GlobalEnv,
    entry: &str,
    keep: &dyn Fn(&str) -> bool,
) -> PipelineVerdict {
    let mu = Mu::identity(ge.initial_memory().dom());
    let perturbations = default_perturbations(ge);
    let opts = SimOptions {
        perturbations,
        call_oracle: &|_, _, i| Val::Int(i as i64),
        fuel: 2_000_000,
    };

    let clight = ccc_clight::ClightLang;
    let cminor = crate::cminor::CMINOR;
    let cminorsel = crate::cminorsel::CMINORSEL;
    let rtl = crate::rtl::RtlLang;
    let ltl = crate::ltl::LtlLang;
    let linear = crate::linear::LinearLang;
    let mach = crate::mach::MachLang;
    let asm = ccc_machine::X86Sc;

    macro_rules! ctx {
        ($lang:expr, $m:expr) => {
            ModuleCtx {
                lang: &$lang,
                module: $m,
                ge,
            }
        };
    }
    let mut verdicts = Vec::new();
    macro_rules! pass {
        ($name:expr, $sl:expr, $sm:expr, $tl:expr, $tm:expr) => {
            if keep($name) {
                verdicts.push(PassVerdict {
                    pass: $name,
                    result: check_module_sim(
                        &ctx!($sl, $sm),
                        &ctx!($tl, $tm),
                        &mu,
                        entry,
                        &[],
                        &opts,
                    ),
                });
            }
        };
    }

    pass!(
        "Cshmgen/Cminorgen",
        clight,
        &arts.clight,
        cminor,
        &arts.cminor
    );
    pass!(
        "Selection",
        cminor,
        &arts.cminor,
        cminorsel,
        &arts.cminorsel
    );
    pass!("RTLgen", cminorsel, &arts.cminorsel, rtl, &arts.rtl);
    pass!("Tailcall", rtl, &arts.rtl, rtl, &arts.rtl_tailcall);
    pass!("Renumber", rtl, &arts.rtl_tailcall, rtl, &arts.rtl_renumber);
    // Allocation consumes the Constprop output when that stage ran.
    let alloc_src = match &arts.rtl_constprop {
        Some(cp) => {
            pass!("Constprop", rtl, &arts.rtl_renumber, rtl, cp);
            cp
        }
        None => &arts.rtl_renumber,
    };
    pass!("Allocation", rtl, alloc_src, ltl, &arts.ltl);
    pass!("Tunneling", ltl, &arts.ltl, ltl, &arts.ltl_tunneled);
    pass!("Linearize", ltl, &arts.ltl_tunneled, linear, &arts.linear);
    pass!(
        "CleanupLabels",
        linear,
        &arts.linear,
        linear,
        &arts.linear_clean
    );
    pass!("Stacking", linear, &arts.linear_clean, mach, &arts.mach);
    pass!("Asmgen", mach, &arts.mach, asm, &arts.asm);
    PipelineVerdict { verdicts }
}

/// Checks the *composed* simulation source-to-target directly (the
/// content of Lem. 5, transitivity: the composition of the per-pass
/// simulations).
pub fn verify_end_to_end(
    arts: &CompilationArtifacts,
    ge: &GlobalEnv,
    entry: &str,
) -> Result<SimReport, SimError> {
    let mu = Mu::identity(ge.initial_memory().dom());
    let opts = SimOptions {
        perturbations: default_perturbations(ge),
        call_oracle: &|_, _, i| Val::Int(i as i64),
        fuel: 2_000_000,
    };
    check_module_sim(
        &ModuleCtx {
            lang: &ccc_clight::ClightLang,
            module: &arts.clight,
            ge,
        },
        &ModuleCtx {
            lang: &ccc_machine::X86Sc,
            module: &arts.asm,
            ge,
        },
        &mu,
        entry,
        &[],
        &opts,
    )
}

/// Why [`verify_end_to_end_tso`] failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TsoVerifyError {
    /// Loading one side failed.
    Load(String),
    /// Trace-set comparison failed (or was truncated, proving nothing).
    Traces(String),
    /// The executions disagree on value, events, or shared memory.
    Result(String),
}

impl std::fmt::Display for TsoVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsoVerifyError::Load(e) => write!(f, "tso verify: load failed: {e}"),
            TsoVerifyError::Traces(e) => write!(f, "tso verify: {e}"),
            TsoVerifyError::Result(e) => write!(f, "tso verify: {e}"),
        }
    }
}

impl std::error::Error for TsoVerifyError {}

/// Checks the end-to-end compilation against the **TSO** machine.
///
/// The lockstep checker of [`verify_end_to_end`] needs deterministic
/// sides, and the TSO machine is not (every buffered store adds a flush
/// alternative), so this check compares behaviours instead: the full
/// trace set of the closed single-module program on the Clight source
/// must equal the trace set on the TSO target, and the deterministic
/// driver runs must agree on value, events, and shared memory. For a
/// single thread the store buffer is invisible (loads forward from it,
/// and returns drain it), so equality — not just refinement — is the
/// right relation.
///
/// # Errors
///
/// Returns which comparison failed.
pub fn verify_end_to_end_tso(
    arts: &CompilationArtifacts,
    ge: &GlobalEnv,
    entry: &str,
) -> Result<(), TsoVerifyError> {
    use ccc_core::lang::Prog;
    use ccc_core::refine::{collect_traces_preemptive, trace_equiv, ExploreCfg};
    use ccc_core::world::{run_main, Loaded};

    let cfg = ExploreCfg {
        fuel: 6000,
        ..Default::default()
    };
    let load = |e: &dyn std::fmt::Debug| TsoVerifyError::Load(format!("{e:?}"));
    let src = Loaded::new(Prog::new(
        ccc_clight::ClightLang,
        vec![(arts.clight.clone(), ge.clone())],
        vec![entry.to_string()],
    ))
    .map_err(|e| load(&e))?;
    let tgt = Loaded::new(Prog::new(
        ccc_machine::X86Tso,
        vec![(arts.asm.clone(), ge.clone())],
        vec![entry.to_string()],
    ))
    .map_err(|e| load(&e))?;
    let ts_src = collect_traces_preemptive(&src, &cfg).map_err(|e| load(&e))?;
    let ts_tgt = collect_traces_preemptive(&tgt, &cfg).map_err(|e| load(&e))?;
    if ts_src.truncated || ts_tgt.truncated {
        return Err(TsoVerifyError::Traces(
            "trace exploration truncated".to_string(),
        ));
    }
    if !trace_equiv(&ts_src, &ts_tgt) {
        return Err(TsoVerifyError::Traces(format!(
            "trace sets differ: source {:?} vs TSO target {:?}",
            ts_src.traces, ts_tgt.traces
        )));
    }

    let s = run_main(
        &ccc_clight::ClightLang,
        &arts.clight,
        ge,
        entry,
        &[],
        2_000_000,
    );
    let t = run_main(&ccc_machine::X86Tso, &arts.asm, ge, entry, &[], 2_000_000);
    match (s, t) {
        (Some((sv, sm, se)), Some((tv, tm, te))) => {
            if sv != tv {
                return Err(TsoVerifyError::Result(format!(
                    "values differ: {sv:?} vs {tv:?}"
                )));
            }
            if se != te {
                return Err(TsoVerifyError::Result(format!(
                    "events differ: {se:?} vs {te:?}"
                )));
            }
            for (a, _) in ge.initial_memory().iter() {
                if sm.load(a) != tm.load(a) {
                    return Err(TsoVerifyError::Result(format!("global {a} differs")));
                }
            }
            Ok(())
        }
        (None, None) => Ok(()),
        (s, t) => Err(TsoVerifyError::Result(format!(
            "one side aborted: source {:?}, target {:?}",
            s.is_some(),
            t.is_some()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::compile_with_artifacts;
    use ccc_clight::gen::{gen_module, GenCfg};

    #[test]
    fn every_pass_simulates_on_random_programs() {
        for seed in 0..12 {
            let (m, ge) = gen_module(seed, &GenCfg::default());
            let arts = compile_with_artifacts(&m).expect("compiles");
            let pv = verify_passes(&arts, &ge, "f");
            assert!(pv.ok(), "seed {seed}: pass {:?} failed", pv.failing_pass());
        }
    }

    #[test]
    fn end_to_end_simulation_holds() {
        for seed in [2u64, 9, 31] {
            let (m, ge) = gen_module(seed, &GenCfg::default());
            let arts = compile_with_artifacts(&m).expect("compiles");
            let r =
                verify_end_to_end(&arts, &ge, "f").unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!r.truncated);
        }
    }

    #[test]
    fn constprop_extension_simulates_and_agrees() {
        use crate::constprop::constprop;
        use crate::driver::compile_optimized;
        use ccc_core::world::run_main;
        for seed in 0..8 {
            let (m, ge) = gen_module(seed, &GenCfg::default());
            let arts = compile_with_artifacts(&m).expect("compiles");
            let opt_rtl = constprop(&arts.rtl_renumber);
            // The pass satisfies the module-local simulation…
            let mu = ccc_core::footprint::Mu::identity(ge.initial_memory().dom());
            let opts = SimOptions {
                perturbations: default_perturbations(&ge),
                call_oracle: &|_, _, i| Val::Int(i as i64),
                fuel: 2_000_000,
            };
            let lang = crate::rtl::RtlLang;
            check_module_sim(
                &ModuleCtx {
                    lang: &lang,
                    module: &arts.rtl_renumber,
                    ge: &ge,
                },
                &ModuleCtx {
                    lang: &lang,
                    module: &opt_rtl,
                    ge: &ge,
                },
                &mu,
                "f",
                &[],
                &opts,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: constprop simulation failed: {e}"));
            // …and the optimized end-to-end pipeline agrees with the source.
            let asm = compile_optimized(&m).expect("compiles optimized");
            let s = run_main(&ccc_clight::ClightLang, &m, &ge, "f", &[], 1_000_000)
                .expect("source runs");
            let t = run_main(&ccc_machine::X86Sc, &asm, &ge, "f", &[], 1_000_000)
                .expect("optimized target runs");
            assert_eq!(s.0, t.0, "seed {seed}: values");
            assert_eq!(s.2, t.2, "seed {seed}: events");
        }
    }

    #[test]
    fn simulation_checker_catches_a_broken_pass() {
        use ccc_clight::ast::{Expr as E, Function, Stmt};
        // A module printing a global; "miscompile" it by printing a
        // constant instead, and check the Selection-level simulation
        // flags the mismatch once the rely perturbs the global.
        let mut ge = GlobalEnv::new();
        ge.define("x", Val::Int(0));
        let good = ccc_clight::ClightModule::new([(
            "f",
            Function::simple(Stmt::seq([
                Stmt::call0("sync_point", vec![]),
                Stmt::Print(E::var("x")),
                Stmt::Return(None),
            ])),
        )]);
        let bad = ccc_clight::ClightModule::new([(
            "f",
            Function::simple(Stmt::seq([
                Stmt::call0("sync_point", vec![]),
                Stmt::Print(E::Const(0)),
                Stmt::Return(None),
            ])),
        )]);
        let mu = Mu::identity(ge.initial_memory().dom());
        let opts = SimOptions {
            perturbations: default_perturbations(&ge),
            call_oracle: &|_, _, _| Val::Int(0),
            fuel: 10_000,
        };
        let lang = ccc_clight::ClightLang;
        let err = check_module_sim(
            &ModuleCtx {
                lang: &lang,
                module: &good,
                ge: &ge,
            },
            &ModuleCtx {
                lang: &lang,
                module: &bad,
                ge: &ge,
            },
            &mu,
            "f",
            &[],
            &opts,
        )
        .expect_err("miscompilation must be caught");
        assert!(matches!(err, SimError::MsgMismatch { .. }), "{err}");
    }
}
