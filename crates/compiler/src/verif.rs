//! Per-pass validation against the footprint-preserving module-local
//! simulation — the executable reading of `Correct(CompCert)` (Lem. 13
//! of the paper).
//!
//! For every pass, the source and target IR programs of one compilation
//! are checked against `4φ` (Defs. 2–3) by
//! [`ccc_core::sim::check_module_sim`]: lockstep execution between
//! switch points, `FPmatch`/`LG` at every switch point, sampled rely
//! perturbations of the shared globals, and termination preservation.
//! `φ` is the identity — the pipeline preserves the global layout.

use crate::driver::CompilationArtifacts;
use ccc_core::footprint::Mu;
use ccc_core::mem::{Addr, GlobalEnv, Val};
use ccc_core::sim::{check_module_sim, ModuleCtx, SimError, SimOptions, SimReport};

/// The verdict for one pass of one compilation.
#[derive(Debug)]
pub struct PassVerdict {
    /// The pass name (see [`crate::PASS_NAMES`]).
    pub pass: &'static str,
    /// The simulation check outcome.
    pub result: Result<SimReport, SimError>,
}

impl PassVerdict {
    /// True if the simulation held.
    pub fn ok(&self) -> bool {
        self.result.is_ok()
    }
}

/// Default rely perturbations: a couple of integer writes to each shared
/// global (exercising Def. 3 case 2(c) with concrete environment steps).
pub fn default_perturbations(ge: &GlobalEnv) -> Vec<Vec<(Addr, Val)>> {
    let cells: Vec<Addr> = ge.init_iter().map(|(a, _)| a).collect();
    if cells.is_empty() {
        return Vec::new();
    }
    let all_5: Vec<(Addr, Val)> = cells.iter().map(|&a| (a, Val::Int(5))).collect();
    let all_m1: Vec<(Addr, Val)> = cells.iter().map(|&a| (a, Val::Int(-1))).collect();
    vec![all_5, all_m1]
}

/// Checks the simulation for every pass of a compilation, on entry
/// `entry`, with the given shared global environment (used on both
/// sides — the pipeline preserves the layout, so `φ = id`).
pub fn verify_passes(arts: &CompilationArtifacts, ge: &GlobalEnv, entry: &str) -> Vec<PassVerdict> {
    let mu = Mu::identity(ge.initial_memory().dom());
    let perturbations = default_perturbations(ge);
    let opts = SimOptions {
        perturbations,
        call_oracle: &|_, _, i| Val::Int(i as i64),
        fuel: 2_000_000,
    };

    let clight = ccc_clight::ClightLang;
    let cminor = crate::cminor::CMINOR;
    let cminorsel = crate::cminorsel::CMINORSEL;
    let rtl = crate::rtl::RtlLang;
    let ltl = crate::ltl::LtlLang;
    let linear = crate::linear::LinearLang;
    let mach = crate::mach::MachLang;
    let asm = ccc_machine::X86Sc;

    macro_rules! ctx {
        ($lang:expr, $m:expr) => {
            ModuleCtx {
                lang: &$lang,
                module: $m,
                ge,
            }
        };
    }
    macro_rules! pass {
        ($name:expr, $sl:expr, $sm:expr, $tl:expr, $tm:expr) => {
            PassVerdict {
                pass: $name,
                result: check_module_sim(&ctx!($sl, $sm), &ctx!($tl, $tm), &mu, entry, &[], &opts),
            }
        };
    }

    vec![
        pass!(
            "Cshmgen/Cminorgen",
            clight,
            &arts.clight,
            cminor,
            &arts.cminor
        ),
        pass!(
            "Selection",
            cminor,
            &arts.cminor,
            cminorsel,
            &arts.cminorsel
        ),
        pass!("RTLgen", cminorsel, &arts.cminorsel, rtl, &arts.rtl),
        pass!("Tailcall", rtl, &arts.rtl, rtl, &arts.rtl_tailcall),
        pass!("Renumber", rtl, &arts.rtl_tailcall, rtl, &arts.rtl_renumber),
        pass!("Allocation", rtl, &arts.rtl_renumber, ltl, &arts.ltl),
        pass!("Tunneling", ltl, &arts.ltl, ltl, &arts.ltl_tunneled),
        pass!("Linearize", ltl, &arts.ltl_tunneled, linear, &arts.linear),
        pass!(
            "CleanupLabels",
            linear,
            &arts.linear,
            linear,
            &arts.linear_clean
        ),
        pass!("Stacking", linear, &arts.linear_clean, mach, &arts.mach),
        pass!("Asmgen", mach, &arts.mach, asm, &arts.asm),
    ]
}

/// Checks the *composed* simulation source-to-target directly (the
/// content of Lem. 5, transitivity: the composition of the per-pass
/// simulations).
pub fn verify_end_to_end(
    arts: &CompilationArtifacts,
    ge: &GlobalEnv,
    entry: &str,
) -> Result<SimReport, SimError> {
    let mu = Mu::identity(ge.initial_memory().dom());
    let opts = SimOptions {
        perturbations: default_perturbations(ge),
        call_oracle: &|_, _, i| Val::Int(i as i64),
        fuel: 2_000_000,
    };
    check_module_sim(
        &ModuleCtx {
            lang: &ccc_clight::ClightLang,
            module: &arts.clight,
            ge,
        },
        &ModuleCtx {
            lang: &ccc_machine::X86Sc,
            module: &arts.asm,
            ge,
        },
        &mu,
        entry,
        &[],
        &opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::compile_with_artifacts;
    use ccc_clight::gen::{gen_module, GenCfg};

    #[test]
    fn every_pass_simulates_on_random_programs() {
        for seed in 0..12 {
            let (m, ge) = gen_module(seed, &GenCfg::default());
            let arts = compile_with_artifacts(&m).expect("compiles");
            for v in verify_passes(&arts, &ge, "f") {
                assert!(
                    v.ok(),
                    "seed {seed}: pass {} failed: {}",
                    v.pass,
                    v.result.unwrap_err()
                );
            }
        }
    }

    #[test]
    fn end_to_end_simulation_holds() {
        for seed in [2u64, 9, 31] {
            let (m, ge) = gen_module(seed, &GenCfg::default());
            let arts = compile_with_artifacts(&m).expect("compiles");
            let r =
                verify_end_to_end(&arts, &ge, "f").unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!r.truncated);
        }
    }

    #[test]
    fn constprop_extension_simulates_and_agrees() {
        use crate::constprop::constprop;
        use crate::driver::compile_optimized;
        use ccc_core::world::run_main;
        for seed in 0..8 {
            let (m, ge) = gen_module(seed, &GenCfg::default());
            let arts = compile_with_artifacts(&m).expect("compiles");
            let opt_rtl = constprop(&arts.rtl_renumber);
            // The pass satisfies the module-local simulation…
            let mu = ccc_core::footprint::Mu::identity(ge.initial_memory().dom());
            let opts = SimOptions {
                perturbations: default_perturbations(&ge),
                call_oracle: &|_, _, i| Val::Int(i as i64),
                fuel: 2_000_000,
            };
            let lang = crate::rtl::RtlLang;
            check_module_sim(
                &ModuleCtx {
                    lang: &lang,
                    module: &arts.rtl_renumber,
                    ge: &ge,
                },
                &ModuleCtx {
                    lang: &lang,
                    module: &opt_rtl,
                    ge: &ge,
                },
                &mu,
                "f",
                &[],
                &opts,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: constprop simulation failed: {e}"));
            // …and the optimized end-to-end pipeline agrees with the source.
            let asm = compile_optimized(&m).expect("compiles optimized");
            let s = run_main(&ccc_clight::ClightLang, &m, &ge, "f", &[], 1_000_000)
                .expect("source runs");
            let t = run_main(&ccc_machine::X86Sc, &asm, &ge, "f", &[], 1_000_000)
                .expect("optimized target runs");
            assert_eq!(s.0, t.0, "seed {seed}: values");
            assert_eq!(s.2, t.2, "seed {seed}: events");
        }
    }

    #[test]
    fn simulation_checker_catches_a_broken_pass() {
        use ccc_clight::ast::{Expr as E, Function, Stmt};
        // A module printing a global; "miscompile" it by printing a
        // constant instead, and check the Selection-level simulation
        // flags the mismatch once the rely perturbs the global.
        let mut ge = GlobalEnv::new();
        ge.define("x", Val::Int(0));
        let good = ccc_clight::ClightModule::new([(
            "f",
            Function::simple(Stmt::seq([
                Stmt::call0("sync_point", vec![]),
                Stmt::Print(E::var("x")),
                Stmt::Return(None),
            ])),
        )]);
        let bad = ccc_clight::ClightModule::new([(
            "f",
            Function::simple(Stmt::seq([
                Stmt::call0("sync_point", vec![]),
                Stmt::Print(E::Const(0)),
                Stmt::Return(None),
            ])),
        )]);
        let mu = Mu::identity(ge.initial_memory().dom());
        let opts = SimOptions {
            perturbations: default_perturbations(&ge),
            call_oracle: &|_, _, _| Val::Int(0),
            fuel: 10_000,
        };
        let lang = ccc_clight::ClightLang;
        let err = check_module_sim(
            &ModuleCtx {
                lang: &lang,
                module: &good,
                ge: &ge,
            },
            &ModuleCtx {
                lang: &lang,
                module: &bad,
                ge: &ge,
            },
            &mu,
            "f",
            &[],
            &opts,
        )
        .expect_err("miscompilation must be caught");
        assert!(matches!(err, SimError::MsgMismatch { .. }), "{err}");
    }
}
