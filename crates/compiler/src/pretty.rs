//! Pretty-printers for every IR of the pipeline, plus a whole-pipeline
//! dump — the usual `-dclight`/`-drtl`/… facility of a production
//! compiler, handy when inspecting what a pass did.

use crate::cminor;
use crate::cminorsel;
use crate::linear;
use crate::ltl::{self, Loc};
use crate::mach;
use crate::ops::{AddrMode, Cmp, Op};
use crate::rtl;
use crate::stmt_sem::Stmt;
use std::fmt::Write;

fn cmp_str(c: Cmp) -> &'static str {
    match c {
        Cmp::Eq => "==",
        Cmp::Ne => "!=",
        Cmp::Lt => "<",
        Cmp::Le => "<=",
        Cmp::Gt => ">",
        Cmp::Ge => ">=",
    }
}

fn op_str(op: &Op, args: &[String]) -> String {
    match (op, args) {
        (Op::Const(i), _) => format!("{i}"),
        (Op::AddrGlobal(g, 0), _) => format!("&{g}"),
        (Op::AddrGlobal(g, o), _) => format!("&{g}+{o}"),
        (Op::AddrStack(s), _) => format!("&stack[{s}]"),
        (Op::Move, [a]) => a.clone(),
        (Op::Neg, [a]) => format!("-{a}"),
        (Op::Not, [a]) => format!("!{a}"),
        (Op::AddImm(i), [a]) => format!("{a} + {i}"),
        (Op::MulImm(i), [a]) => format!("{a} * {i}"),
        (Op::CmpImm(c, i), [a]) => format!("{a} {} {i}", cmp_str(*c)),
        (Op::Add, [a, b]) => format!("{a} + {b}"),
        (Op::Sub, [a, b]) => format!("{a} - {b}"),
        (Op::Mul, [a, b]) => format!("{a} * {b}"),
        (Op::Div, [a, b]) => format!("{a} / {b}"),
        (Op::And, [a, b]) => format!("{a} & {b}"),
        (Op::Or, [a, b]) => format!("{a} | {b}"),
        (Op::Xor, [a, b]) => format!("{a} ^ {b}"),
        (Op::Cmp(c), [a, b]) => format!("{a} {} {b}", cmp_str(*c)),
        (op, args) => format!("{op:?}{args:?}"),
    }
}

fn addr_mode<R>(am: &AddrMode<R>, show: impl Fn(&R) -> String) -> String {
    match am {
        AddrMode::Global(g, 0) => format!("[{g}]"),
        AddrMode::Global(g, o) => format!("[{g}+{o}]"),
        AddrMode::Stack(n) => format!("[stack+{n}]"),
        AddrMode::Based(r, 0) => format!("[{}]", show(r)),
        AddrMode::Based(r, d) => format!("[{}+{d}]", show(r)),
    }
}

/// Renders a Cminor expression.
pub fn cminor_expr(e: &cminor::Expr) -> String {
    use cminor::Expr as E;
    match e {
        E::Const(i) => format!("{i}"),
        E::Temp(t) => t.clone(),
        E::AddrGlobal(g) => format!("&{g}"),
        E::AddrStack(n) => format!("&stack[{n}]"),
        E::Load(a) => format!("[{}]", cminor_expr(a)),
        E::Unop(op, a) => format!("{op:?}({})", cminor_expr(a)),
        E::Binop(op, a, b) => format!("({} {op:?} {})", cminor_expr(a), cminor_expr(b)),
    }
}

/// Renders a CminorSel expression.
pub fn cminorsel_expr(e: &cminorsel::Expr) -> String {
    use cminorsel::Expr as E;
    match e {
        E::Temp(t) => t.clone(),
        E::Op(op, args) => {
            let rendered: Vec<String> = args.iter().map(cminorsel_expr).collect();
            op_str(op, &rendered)
        }
        E::Load(am) => addr_mode(am, |b| cminorsel_expr(b)),
    }
}

fn stmt_block<E>(s: &Stmt<E>, show: &impl Fn(&E) -> String, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match s {
        Stmt::Skip => {}
        Stmt::Set(t, e) => {
            let _ = writeln!(out, "{pad}{t} = {};", show(e));
        }
        Stmt::Store(a, v) => {
            let _ = writeln!(out, "{pad}[{}] = {};", show(a), show(v));
        }
        Stmt::Call(dst, f, args) => {
            let args: Vec<String> = args.iter().map(show).collect();
            match dst {
                Some(t) => {
                    let _ = writeln!(out, "{pad}{t} = {f}({});", args.join(", "));
                }
                None => {
                    let _ = writeln!(out, "{pad}{f}({});", args.join(", "));
                }
            }
        }
        Stmt::Print(e) => {
            let _ = writeln!(out, "{pad}print({});", show(e));
        }
        Stmt::Seq(ss) => {
            for s in ss {
                stmt_block(s, show, indent, out);
            }
        }
        Stmt::If(c, a, b) => {
            let _ = writeln!(out, "{pad}if ({}) {{", show(c));
            stmt_block(a, show, indent + 1, out);
            let _ = writeln!(out, "{pad}}} else {{");
            stmt_block(b, show, indent + 1, out);
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::While(c, b) => {
            let _ = writeln!(out, "{pad}while ({}) {{", show(c));
            stmt_block(b, show, indent + 1, out);
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Break => {
            let _ = writeln!(out, "{pad}break;");
        }
        Stmt::Continue => {
            let _ = writeln!(out, "{pad}continue;");
        }
        Stmt::Return(None) => {
            let _ = writeln!(out, "{pad}return;");
        }
        Stmt::Return(Some(e)) => {
            let _ = writeln!(out, "{pad}return {};", show(e));
        }
    }
}

/// Renders a Cminor module.
pub fn cminor_module(m: &cminor::CminorModule) -> String {
    let mut out = String::new();
    for (name, f) in &m.funcs {
        let _ = writeln!(
            out,
            "fn {name}({}) /* frame: {} words */ {{",
            f.params.join(", "),
            f.stack_slots
        );
        stmt_block(&f.body, &cminor_expr, 1, &mut out);
        let _ = writeln!(out, "}}");
    }
    out
}

/// Renders a CminorSel module.
pub fn cminorsel_module(m: &cminorsel::CminorSelModule) -> String {
    let mut out = String::new();
    for (name, f) in &m.funcs {
        let _ = writeln!(
            out,
            "fn {name}({}) /* frame: {} words */ {{",
            f.params.join(", "),
            f.stack_slots
        );
        stmt_block(&f.body, &cminorsel_expr, 1, &mut out);
        let _ = writeln!(out, "}}");
    }
    out
}

fn preg(r: &rtl::PReg) -> String {
    format!("x{r}")
}

/// Renders an RTL module, one instruction per line in node order.
pub fn rtl_module(m: &rtl::RtlModule) -> String {
    use rtl::Instr as I;
    let mut out = String::new();
    for (name, f) in &m.funcs {
        let params: Vec<String> = f.params.iter().map(preg).collect();
        let _ = writeln!(
            out,
            "fn {name}({}) /* entry: n{}, frame: {} */ {{",
            params.join(", "),
            f.entry,
            f.stack_slots
        );
        for (n, i) in &f.code {
            let s = match i {
                I::Nop(s) => format!("nop → n{s}"),
                I::Op(op, args, d, s) => {
                    let rendered: Vec<String> = args.iter().map(preg).collect();
                    format!("{} = {} → n{s}", preg(d), op_str(op, &rendered))
                }
                I::Load(am, d, s) => {
                    format!("{} = {} → n{s}", preg(d), addr_mode(am, preg))
                }
                I::Store(am, r, s) => {
                    format!("{} = {} → n{s}", addr_mode(am, preg), preg(r))
                }
                I::Call(d, f, args, s) => {
                    let args: Vec<String> = args.iter().map(preg).collect();
                    let dst = d.as_ref().map(preg).unwrap_or_default();
                    format!("{dst} = call {f}({}) → n{s}", args.join(", "))
                }
                I::Tailcall(f, args) => {
                    let args: Vec<String> = args.iter().map(preg).collect();
                    format!("tailcall {f}({})", args.join(", "))
                }
                I::Cond(c, a, b, t, e) => format!(
                    "if {} {} {} → n{t} else n{e}",
                    preg(a),
                    cmp_str(*c),
                    preg(b)
                ),
                I::CondImm(c, r, i, t, e) => {
                    format!("if {} {} {i} → n{t} else n{e}", preg(r), cmp_str(*c))
                }
                I::Print(r, s) => format!("print {} → n{s}", preg(r)),
                I::Return(None) => "return".into(),
                I::Return(Some(r)) => format!("return {}", preg(r)),
            };
            let _ = writeln!(out, "  n{n}: {s}");
        }
        let _ = writeln!(out, "}}");
    }
    out
}

fn loc(l: &Loc) -> String {
    match l {
        Loc::Reg(r) => r.to_string(),
        Loc::Spill(s) => format!("spill[{s}]"),
    }
}

/// Renders an LTL module.
pub fn ltl_module(m: &ltl::LtlModule) -> String {
    use ltl::Instr as I;
    let mut out = String::new();
    for (name, f) in &m.funcs {
        let params: Vec<String> = f.params.iter().map(loc).collect();
        let _ = writeln!(
            out,
            "fn {name}({}) /* entry: n{}, frame: {}, spills: {} */ {{",
            params.join(", "),
            f.entry,
            f.stack_slots,
            f.spill_slots
        );
        for (n, i) in &f.code {
            let s = match i {
                I::Nop(s) => format!("nop → n{s}"),
                I::Op(op, args, d, s) => {
                    let rendered: Vec<String> = args.iter().map(loc).collect();
                    format!("{} = {} → n{s}", loc(d), op_str(op, &rendered))
                }
                I::Load(am, d, s) => format!("{} = {} → n{s}", loc(d), addr_mode(am, loc)),
                I::Store(am, r, s) => format!("{} = {} → n{s}", addr_mode(am, loc), loc(r)),
                I::Call(d, f, args, s) => {
                    let args: Vec<String> = args.iter().map(loc).collect();
                    let dst = d.as_ref().map(loc).unwrap_or_default();
                    format!("{dst} = call {f}({}) → n{s}", args.join(", "))
                }
                I::Tailcall(f, args) => {
                    let args: Vec<String> = args.iter().map(loc).collect();
                    format!("tailcall {f}({})", args.join(", "))
                }
                I::Cond(c, a, b, t, e) => {
                    format!("if {} {} {} → n{t} else n{e}", loc(a), cmp_str(*c), loc(b))
                }
                I::CondImm(c, r, i, t, e) => {
                    format!("if {} {} {i} → n{t} else n{e}", loc(r), cmp_str(*c))
                }
                I::Print(r, s) => format!("print {} → n{s}", loc(r)),
                I::Return(None) => "return".into(),
                I::Return(Some(r)) => format!("return {}", loc(r)),
            };
            let _ = writeln!(out, "  n{n}: {s}");
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// Renders a Linear module.
pub fn linear_module(m: &linear::LinearModule) -> String {
    use linear::Instr as I;
    let mut out = String::new();
    for (name, f) in &m.funcs {
        let params: Vec<String> = f.params.iter().map(loc).collect();
        let _ = writeln!(
            out,
            "fn {name}({}) /* frame: {}, spills: {} */ {{",
            params.join(", "),
            f.stack_slots,
            f.spill_slots
        );
        for i in &f.code {
            let s = match i {
                I::Label(l) => {
                    let _ = writeln!(out, "L{l}:");
                    continue;
                }
                I::Op(op, args, d) => {
                    let rendered: Vec<String> = args.iter().map(loc).collect();
                    format!("{} = {}", loc(d), op_str(op, &rendered))
                }
                I::Load(am, d) => format!("{} = {}", loc(d), addr_mode(am, loc)),
                I::Store(am, r) => format!("{} = {}", addr_mode(am, loc), loc(r)),
                I::Call(d, f, args) => {
                    let args: Vec<String> = args.iter().map(loc).collect();
                    let dst = d.as_ref().map(loc).unwrap_or_default();
                    format!("{dst} = call {f}({})", args.join(", "))
                }
                I::Tailcall(f, args) => {
                    let args: Vec<String> = args.iter().map(loc).collect();
                    format!("tailcall {f}({})", args.join(", "))
                }
                I::CondJump(c, a, b, l) => {
                    format!("if {} {} {} goto L{l}", loc(a), cmp_str(*c), loc(b))
                }
                I::CondImmJump(c, r, i, l) => {
                    format!("if {} {} {i} goto L{l}", loc(r), cmp_str(*c))
                }
                I::Goto(l) => format!("goto L{l}"),
                I::Print(r) => format!("print {}", loc(r)),
                I::Return(None) => "return".into(),
                I::Return(Some(r)) => format!("return {}", loc(r)),
            };
            let _ = writeln!(out, "  {s}");
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// Renders a Mach module.
pub fn mach_module(m: &mach::MachModule) -> String {
    use mach::Instr as I;
    let mut out = String::new();
    for (name, f) in &m.funcs {
        let _ = writeln!(
            out,
            "fn {name} /* frame: {} words, arity: {} */ {{",
            f.frame_slots, f.arity
        );
        for i in &f.code {
            let reg = |r: &ccc_machine::Reg| r.to_string();
            let s = match i {
                I::Label(l) => {
                    let _ = writeln!(out, "L{l}:");
                    continue;
                }
                I::Op(op, args, d) => {
                    let rendered: Vec<String> = args.iter().map(reg).collect();
                    format!("{} = {}", reg(d), op_str(op, &rendered))
                }
                I::Load(am, d) => format!("{} = {}", reg(d), addr_mode(am, reg)),
                I::Store(am, r) => format!("{} = {}", addr_mode(am, reg), reg(r)),
                I::Call(f, n) => format!("call {f}/{n}"),
                I::Tailcall(f, n) => format!("tailcall {f}/{n}"),
                I::CondJump(c, a, b, l) => {
                    format!("if {} {} {} goto L{l}", reg(a), cmp_str(*c), reg(b))
                }
                I::CondImmJump(c, r, i, l) => {
                    format!("if {} {} {i} goto L{l}", reg(r), cmp_str(*c))
                }
                I::Goto(l) => format!("goto L{l}"),
                I::Print(r) => format!("print {}", reg(r)),
                I::Return => "return".into(),
            };
            let _ = writeln!(out, "  {s}");
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// Dumps every intermediate program of a compilation, labelled by the
/// pass that produced it — the `-dall` of this compiler.
pub fn dump_artifacts(arts: &crate::driver::CompilationArtifacts) -> String {
    let mut out = String::new();
    let mut section = |title: &str, body: String| {
        let _ = writeln!(out, "=== {title} ===\n{body}");
    };
    section(
        "Cminor (after Cshmgen/Cminorgen)",
        cminor_module(&arts.cminor),
    );
    section(
        "CminorSel (after Selection)",
        cminorsel_module(&arts.cminorsel),
    );
    section("RTL (after RTLgen)", rtl_module(&arts.rtl));
    section("RTL (after Tailcall)", rtl_module(&arts.rtl_tailcall));
    section("RTL (after Renumber)", rtl_module(&arts.rtl_renumber));
    section("LTL (after Allocation)", ltl_module(&arts.ltl));
    section("LTL (after Tunneling)", ltl_module(&arts.ltl_tunneled));
    section("Linear (after Linearize)", linear_module(&arts.linear));
    section(
        "Linear (after CleanupLabels)",
        linear_module(&arts.linear_clean),
    );
    section("Mach (after Stacking)", mach_module(&arts.mach));
    section("x86 (after Asmgen)", arts.asm.to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::compile_with_artifacts;
    use ccc_clight::gen::{gen_module, GenCfg};

    #[test]
    fn all_printers_render_nonempty() {
        let (m, _ge) = gen_module(11, &GenCfg::default());
        let arts = compile_with_artifacts(&m).expect("compiles");
        let dump = dump_artifacts(&arts);
        for title in [
            "Cminor (after",
            "CminorSel",
            "RTL (after RTLgen)",
            "LTL (after Allocation)",
            "Linear (after Linearize)",
            "Mach (after Stacking)",
            "x86 (after Asmgen)",
        ] {
            assert!(dump.contains(title), "missing section {title}");
        }
        assert!(dump.len() > 1000, "suspiciously small dump");
    }

    #[test]
    fn rtl_printer_shows_structure() {
        use crate::ops::Op;
        use crate::rtl::{Function, Instr, RtlModule};
        use std::collections::BTreeMap;
        let f = Function {
            params: vec![0],
            stack_slots: 1,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::AddImm(1), vec![0], 1, 1)),
                (1, Instr::Return(Some(1))),
            ]),
        };
        let m = RtlModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let s = rtl_module(&m);
        assert!(s.contains("x1 = x0 + 1 → n1"), "{s}");
        assert!(s.contains("return x1"), "{s}");
    }

    #[test]
    fn linear_printer_shows_labels_and_spills() {
        use crate::linear::{Function, Instr, LinearModule};
        use crate::ltl::Loc;
        use crate::ops::Op;
        let f = Function {
            params: vec![Loc::Spill(0)],
            stack_slots: 0,
            spill_slots: 1,
            code: vec![
                Instr::Label(3),
                Instr::Op(Op::Const(1), vec![], Loc::Reg(ccc_machine::Reg::Ecx)),
                Instr::Goto(3),
            ],
        };
        let m = LinearModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let s = linear_module(&m);
        assert!(s.contains("L3:"), "{s}");
        assert!(s.contains("spill[0]"), "{s}");
        assert!(s.contains("goto L3"), "{s}");
    }
}
