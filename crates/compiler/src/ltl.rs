//! LTL: RTL after register allocation — instructions operate on
//! *locations*: machine registers or abstract spill slots.
//!
//! Spill slots are still abstract here (an environment, not memory);
//! the `Stacking` pass later maps them to concrete frame offsets. The
//! LTL interpreter instantiates [`Lang`] so the pass can be validated
//! with the framework's simulation checker like every other.

use crate::ops::{AddrMode, Cmp, Op};
use crate::rtl::Node;
use ccc_core::footprint::Footprint;
use ccc_core::lang::{Event, Lang, LocalStep, StepMsg};
use ccc_core::mem::{Addr, FreeList, GlobalEnv, Memory, Val};
use ccc_machine::Reg as MReg;
use std::collections::BTreeMap;

/// A location: a machine register or a spill slot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Loc {
    /// A machine register.
    Reg(MReg),
    /// An abstract spill slot.
    Spill(u32),
}

/// One LTL instruction (the RTL shapes over locations).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// No-op.
    Nop(Node),
    /// `dst := op(args…)`.
    Op(Op, Vec<Loc>, Loc, Node),
    /// `dst := [mode]`.
    Load(AddrMode<Loc>, Loc, Node),
    /// `[mode] := src`.
    Store(AddrMode<Loc>, Loc, Node),
    /// `dst := f(args…)`; arguments are always spill slots (the
    /// allocator guarantees it, so argument marshalling at `Stacking`
    /// needs no parallel-move solver).
    Call(Option<Loc>, String, Vec<Loc>, Node),
    /// Tail call (same argument convention).
    Tailcall(String, Vec<Loc>),
    /// Two-way branch.
    Cond(Cmp, Loc, Loc, Node, Node),
    /// Two-way branch against an immediate.
    CondImm(Cmp, Loc, i64, Node, Node),
    /// Output.
    Print(Loc, Node),
    /// Return.
    Return(Option<Loc>),
}

impl Instr {
    /// Successor nodes.
    pub fn succs(&self) -> Vec<Node> {
        match self {
            Instr::Nop(n)
            | Instr::Op(.., n)
            | Instr::Load(.., n)
            | Instr::Store(.., n)
            | Instr::Call(.., n)
            | Instr::Print(_, n) => vec![*n],
            Instr::Cond(.., a, b) | Instr::CondImm(.., a, b) => vec![*a, *b],
            Instr::Tailcall(..) | Instr::Return(_) => vec![],
        }
    }

    /// Locations read by this instruction (mirror of `rtl::Instr::uses`,
    /// used by the per-pass lint's def-before-use analysis).
    pub fn uses(&self) -> Vec<Loc> {
        match self {
            Instr::Op(_, args, ..) => args.clone(),
            Instr::Load(am, ..) => am.base().copied().into_iter().collect(),
            Instr::Store(am, src, _) => {
                let mut ls: Vec<Loc> = am.base().copied().into_iter().collect();
                ls.push(*src);
                ls
            }
            Instr::Call(_, _, args, _) | Instr::Tailcall(_, args) => args.clone(),
            Instr::Cond(_, l1, l2, ..) => vec![*l1, *l2],
            Instr::CondImm(_, l, ..) | Instr::Print(l, _) => vec![*l],
            Instr::Return(l) => l.iter().copied().collect(),
            Instr::Nop(_) => vec![],
        }
    }

    /// The location this instruction defines, if any (mirror of
    /// `rtl::Instr::def`).
    pub fn def(&self) -> Option<Loc> {
        match self {
            Instr::Op(.., dst, _) | Instr::Load(_, dst, _) => Some(*dst),
            Instr::Call(dst, ..) => *dst,
            _ => None,
        }
    }

    /// Rewrites every successor through `f`.
    pub fn map_succs(&mut self, f: impl Fn(Node) -> Node) {
        match self {
            Instr::Nop(n)
            | Instr::Op(.., n)
            | Instr::Load(.., n)
            | Instr::Store(.., n)
            | Instr::Call(.., n)
            | Instr::Print(_, n) => *n = f(*n),
            Instr::Cond(.., a, b) | Instr::CondImm(.., a, b) => {
                *a = f(*a);
                *b = f(*b);
            }
            Instr::Tailcall(..) | Instr::Return(_) => {}
        }
    }
}

/// An LTL function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Function {
    /// Parameter locations (always spill slots; see the allocator).
    pub params: Vec<Loc>,
    /// Source-level frame size in words (`AddrStack` slots).
    pub stack_slots: u64,
    /// Number of abstract spill slots in use.
    pub spill_slots: u32,
    /// Entry node.
    pub entry: Node,
    /// The graph.
    pub code: BTreeMap<Node, Instr>,
}

/// An LTL module.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LtlModule {
    /// Functions by name.
    pub funcs: BTreeMap<String, Function>,
}

/// The LTL core state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LtlCore {
    fun: String,
    pc: Node,
    regs: BTreeMap<MReg, Val>,
    spills: BTreeMap<u32, Val>,
    frame: Option<Addr>,
    stack_slots: u64,
    awaiting: Option<Option<Loc>>,
}

impl LtlCore {
    fn get(&self, l: Loc) -> Val {
        match l {
            Loc::Reg(r) => self.regs.get(&r).copied().unwrap_or(Val::Undef),
            Loc::Spill(s) => self.spills.get(&s).copied().unwrap_or(Val::Undef),
        }
    }

    fn set(&mut self, l: Loc, v: Val) {
        match l {
            Loc::Reg(r) => {
                self.regs.insert(r, v);
            }
            Loc::Spill(s) => {
                self.spills.insert(s, v);
            }
        }
    }
}

/// The LTL language dispatcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LtlLang;

fn resolve_addr(am: &AddrMode<Loc>, core: &LtlCore, ge: &GlobalEnv) -> Option<Addr> {
    match am {
        AddrMode::Global(g, o) => Some(ge.lookup(g)?.offset(*o)),
        AddrMode::Stack(n) => {
            if *n >= core.stack_slots {
                return None;
            }
            Some(core.frame?.offset(*n))
        }
        AddrMode::Based(l, d) => match core.get(*l) {
            Val::Ptr(a) => Some(Addr(a.0.wrapping_add(*d as u64))),
            _ => None,
        },
    }
}

/// Reserved pc marking a completed tail call (see RTL).
const TAILCALL_RET_NODE: Node = u32::MAX;

impl Lang for LtlLang {
    type Module = LtlModule;
    type Core = LtlCore;

    fn name(&self) -> &'static str {
        "LTL"
    }

    fn exports(&self, module: &Self::Module) -> Vec<String> {
        module.funcs.keys().cloned().collect()
    }

    fn init_core(
        &self,
        module: &Self::Module,
        _ge: &GlobalEnv,
        entry: &str,
        args: &[Val],
    ) -> Option<Self::Core> {
        let f = module.funcs.get(entry)?;
        if args.len() > f.params.len() {
            return None;
        }
        let mut core = LtlCore {
            fun: entry.to_string(),
            pc: f.entry,
            regs: BTreeMap::new(),
            spills: BTreeMap::new(),
            frame: (f.stack_slots == 0).then_some(Addr(0)),
            stack_slots: f.stack_slots,
            awaiting: None,
        };
        for (&p, &v) in f.params.iter().zip(args) {
            core.set(p, v);
        }
        Some(core)
    }

    fn step(
        &self,
        module: &Self::Module,
        ge: &GlobalEnv,
        flist: &FreeList,
        core: &Self::Core,
        mem: &Memory,
    ) -> Vec<LocalStep<Self::Core>> {
        let tau = |core: LtlCore, mem: Memory, fp: Footprint| {
            vec![LocalStep::Step {
                msg: StepMsg::Tau,
                fp,
                core,
                mem,
            }]
        };
        let abort = || vec![LocalStep::Abort];
        let Some(f) = module.funcs.get(&core.fun) else {
            return abort();
        };
        let mut next = core.clone();
        if next.awaiting.is_some() {
            return abort();
        }
        if next.pc == TAILCALL_RET_NODE {
            return vec![LocalStep::Ret {
                val: core.get(Loc::Reg(MReg::Eax)),
            }];
        }
        if next.frame.is_none() {
            let base = crate::stmt_sem::first_free_block(flist, mem, next.stack_slots);
            let mut m = mem.clone();
            let mut fp = Footprint::emp();
            for k in 0..next.stack_slots {
                m.alloc(base.offset(k), Val::Undef);
                fp.extend(&Footprint::write(base.offset(k)));
            }
            next.frame = Some(base);
            return tau(next, m, fp);
        }
        let Some(instr) = f.code.get(&core.pc) else {
            return abort();
        };
        match instr {
            Instr::Nop(n) => {
                next.pc = *n;
                tau(next, mem.clone(), Footprint::emp())
            }
            Instr::Op(op, args, dst, n) => {
                let v = match op {
                    Op::AddrGlobal(g, o) => match ge.lookup(g) {
                        Some(a) => Val::Ptr(a.offset(*o)),
                        None => return abort(),
                    },
                    Op::AddrStack(s) => {
                        if *s >= next.stack_slots {
                            return abort();
                        }
                        Val::Ptr(next.frame.expect("allocated").offset(*s))
                    }
                    other => {
                        let vals: Vec<Val> = args.iter().map(|&l| core.get(l)).collect();
                        match other.eval(&vals) {
                            Some(v) => v,
                            None => return abort(),
                        }
                    }
                };
                next.set(*dst, v);
                next.pc = *n;
                tau(next, mem.clone(), Footprint::emp())
            }
            Instr::Load(am, dst, n) => {
                let Some(a) = resolve_addr(am, core, ge) else {
                    return abort();
                };
                let Some(v) = mem.load(a) else {
                    return abort();
                };
                next.set(*dst, v);
                next.pc = *n;
                tau(next, mem.clone(), Footprint::read(a))
            }
            Instr::Store(am, src, n) => {
                let Some(a) = resolve_addr(am, core, ge) else {
                    return abort();
                };
                let mut m = mem.clone();
                if !m.store(a, core.get(*src)) {
                    return abort();
                }
                next.pc = *n;
                tau(next, m, Footprint::write(a))
            }
            Instr::Call(dst, callee, args, n) => {
                next.pc = *n;
                next.awaiting = Some(*dst);
                vec![LocalStep::Call {
                    callee: callee.clone(),
                    args: args.iter().map(|&l| core.get(l)).collect(),
                    cont: next,
                }]
            }
            Instr::Tailcall(callee, args) => {
                next.awaiting = Some(None);
                next.pc = TAILCALL_RET_NODE;
                vec![LocalStep::Call {
                    callee: callee.clone(),
                    args: args.iter().map(|&l| core.get(l)).collect(),
                    cont: next,
                }]
            }
            Instr::Cond(c, l1, l2, a, b) => {
                let Some(t) = c.eval(core.get(*l1), core.get(*l2)) else {
                    return abort();
                };
                next.pc = if t { *a } else { *b };
                tau(next, mem.clone(), Footprint::emp())
            }
            Instr::CondImm(c, l, i, a, b) => {
                let Some(t) = c.eval(core.get(*l), Val::Int(*i)) else {
                    return abort();
                };
                next.pc = if t { *a } else { *b };
                tau(next, mem.clone(), Footprint::emp())
            }
            Instr::Print(l, n) => match core.get(*l) {
                Val::Int(i) => {
                    next.pc = *n;
                    vec![LocalStep::Step {
                        msg: StepMsg::Event(Event::Print(i)),
                        fp: Footprint::emp(),
                        core: next,
                        mem: mem.clone(),
                    }]
                }
                _ => abort(),
            },
            Instr::Return(l) => vec![LocalStep::Ret {
                val: l.map_or(Val::Int(0), |l| core.get(l)),
            }],
        }
    }

    fn resume(&self, _module: &Self::Module, core: &Self::Core, ret: Val) -> Option<Self::Core> {
        let mut next = core.clone();
        let dst = next.awaiting.take()?;
        if next.pc == TAILCALL_RET_NODE {
            next.set(Loc::Reg(MReg::Eax), ret);
            return Some(next);
        }
        if let Some(l) = dst {
            next.set(l, ret);
        }
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_core::world::run_main;

    #[test]
    fn locations_hold_values() {
        // r(ecx) := 6; spill0 := ecx * 7; return spill0
        let code = BTreeMap::from([
            (0, Instr::Op(Op::Const(6), vec![], Loc::Reg(MReg::Ecx), 1)),
            (
                1,
                Instr::Op(Op::MulImm(7), vec![Loc::Reg(MReg::Ecx)], Loc::Spill(0), 2),
            ),
            (2, Instr::Return(Some(Loc::Spill(0)))),
        ]);
        let m = LtlModule {
            funcs: [(
                "f".to_string(),
                Function {
                    params: vec![],
                    stack_slots: 0,
                    spill_slots: 1,
                    entry: 0,
                    code,
                },
            )]
            .into(),
        };
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&LtlLang, &m, &ge, "f", &[], 100).expect("runs");
        assert_eq!(v, Val::Int(42));
    }

    #[test]
    fn spill_slots_are_not_memory() {
        // Writing a spill slot must produce no footprint and leave the
        // memory untouched.
        let code = BTreeMap::from([
            (0, Instr::Op(Op::Const(1), vec![], Loc::Spill(0), 1)),
            (1, Instr::Return(Some(Loc::Spill(0)))),
        ]);
        let m = LtlModule {
            funcs: [(
                "f".to_string(),
                Function {
                    params: vec![],
                    stack_slots: 0,
                    spill_slots: 1,
                    entry: 0,
                    code,
                },
            )]
            .into(),
        };
        let ge = GlobalEnv::new();
        let lang = LtlLang;
        let fl = FreeList::for_thread(0);
        let core = lang.init_core(&m, &ge, "f", &[]).expect("init");
        let steps = lang.step(&m, &ge, &fl, &core, &Memory::new());
        let LocalStep::Step { fp, mem, .. } = &steps[0] else {
            panic!("expected step");
        };
        assert!(fp.is_emp());
        assert!(mem.is_empty());
    }
}
