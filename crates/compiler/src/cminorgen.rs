//! The combined `Cshmgen` + `Cminorgen` pass: Clight → Cminor.
//!
//! Addressable local variables are laid out as slots of an explicit
//! stack frame, variable reads/writes become explicit loads/stores, and
//! `&x` becomes frame-slot (or global) address arithmetic. Temporaries,
//! control flow, calls and builtins translate structurally.
//!
//! The footprint obligation of the paper's simulation (§4) holds by
//! construction: the translated code touches exactly the same *shared*
//! locations (globals) as the source, while local accesses move from
//! scattered free-list cells to one frame block — invisible to
//! `FPmatch`, which constrains shared locations only.

use crate::cminor::{CminorModule, Expr as CmExpr, Function as CmFunction, Stmt as CmStmt};
use ccc_clight::ast::{ClightModule, Expr, Function, Stmt};
use std::collections::BTreeMap;

/// An error during translation (ill-formed source).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CminorgenError(pub String);

impl std::fmt::Display for CminorgenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cminorgen: {}", self.0)
    }
}

impl std::error::Error for CminorgenError {}

struct Ctx {
    slots: BTreeMap<String, u64>,
}

impl Ctx {
    /// The address expression denoted by an lvalue.
    fn lvalue_addr(&self, e: &Expr) -> Result<CmExpr, CminorgenError> {
        match e {
            Expr::Var(x) => Ok(match self.slots.get(x) {
                Some(&slot) => CmExpr::AddrStack(slot),
                None => CmExpr::AddrGlobal(x.clone()),
            }),
            Expr::Deref(inner) => self.rvalue(inner),
            other => Err(CminorgenError(format!("not an lvalue: {other:?}"))),
        }
    }

    fn rvalue(&self, e: &Expr) -> Result<CmExpr, CminorgenError> {
        Ok(match e {
            Expr::Const(i) => CmExpr::Const(*i),
            Expr::Temp(t) => CmExpr::Temp(t.clone()),
            Expr::Var(_) | Expr::Deref(_) => CmExpr::load(self.lvalue_addr(e)?),
            Expr::Addrof(lv) => self.lvalue_addr(lv)?,
            Expr::Unop(op, a) => CmExpr::Unop(*op, Box::new(self.rvalue(a)?)),
            Expr::Binop(op, a, b) => {
                CmExpr::Binop(*op, Box::new(self.rvalue(a)?), Box::new(self.rvalue(b)?))
            }
        })
    }

    fn stmt(&self, s: &Stmt) -> Result<CmStmt, CminorgenError> {
        Ok(match s {
            Stmt::Skip => CmStmt::Skip,
            Stmt::Assign(lv, rv) => CmStmt::Store(self.lvalue_addr(lv)?, self.rvalue(rv)?),
            Stmt::Set(t, e) => CmStmt::Set(t.clone(), self.rvalue(e)?),
            Stmt::Call(dst, f, args) => CmStmt::Call(
                dst.clone(),
                f.clone(),
                args.iter()
                    .map(|a| self.rvalue(a))
                    .collect::<Result<_, _>>()?,
            ),
            Stmt::Print(e) => CmStmt::Print(self.rvalue(e)?),
            Stmt::Seq(ss) => {
                CmStmt::Seq(ss.iter().map(|s| self.stmt(s)).collect::<Result<_, _>>()?)
            }
            Stmt::If(c, a, b) => CmStmt::If(
                self.rvalue(c)?,
                Box::new(self.stmt(a)?),
                Box::new(self.stmt(b)?),
            ),
            Stmt::While(c, b) => CmStmt::While(self.rvalue(c)?, Box::new(self.stmt(b)?)),
            Stmt::Break => CmStmt::Break,
            Stmt::Continue => CmStmt::Continue,
            Stmt::Return(e) => CmStmt::Return(e.as_ref().map(|e| self.rvalue(e)).transpose()?),
        })
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// Each local at its declaration index — the real pass.
    Clean,
    /// Every local at slot 0 (distinct locals alias).
    Collapse,
    /// The first two locals trade slots.
    SwapFirstTwo,
}

fn layout_with(f: &Function, layout: Layout) -> BTreeMap<String, u64> {
    f.vars
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let slot = match layout {
                Layout::Clean => i as u64,
                Layout::Collapse => 0,
                Layout::SwapFirstTwo if i < 2 && f.vars.len() >= 2 => 1 - i as u64,
                Layout::SwapFirstTwo => i as u64,
            };
            (v.clone(), slot)
        })
        .collect()
}

/// The untrusted frame-layout hint consumed by the symbolic translation
/// validator (`ccc-analysis::transval`): the frame slot each addressable
/// local of `f` is laid out at by the *reference* translation. A wrong
/// hint makes validation fail (a false rejection), never succeed on a
/// wrong translation.
#[must_use]
pub fn slot_layout(f: &Function) -> BTreeMap<String, u64> {
    layout_with(f, Layout::Clean)
}

fn translate_function_with(f: &Function, layout: Layout) -> Result<CmFunction, CminorgenError> {
    let ctx = Ctx {
        slots: layout_with(f, layout),
    };
    Ok(CmFunction {
        params: f.params.clone(),
        stack_slots: f.vars.len() as u64,
        body: ctx.stmt(&f.body)?,
    })
}

/// Translates one function.
pub fn translate_function(f: &Function) -> Result<CmFunction, CminorgenError> {
    translate_function_with(f, Layout::Clean)
}

/// Translates a whole module.
///
/// # Errors
///
/// Fails on ill-formed lvalues.
pub fn cminorgen(m: &ClightModule) -> Result<CminorModule, CminorgenError> {
    Ok(CminorModule {
        funcs: crate::pass_util::map_functions(&m.funcs, translate_function)?,
    })
}

/// Seeded-bug variant for mutation scoring ([`crate::mutant`]): every
/// local variable is laid out at frame slot 0, so distinct locals alias.
///
/// # Errors
///
/// Fails on ill-formed lvalues, like the real pass.
pub fn cminorgen_mutated(m: &ClightModule) -> Result<CminorModule, CminorgenError> {
    Ok(CminorModule {
        funcs: crate::pass_util::map_functions(&m.funcs, |f| {
            translate_function_with(f, Layout::Collapse)
        })?,
    })
}

/// Second seeded-bug variant: the first two locals of every function
/// trade frame slots while the reference layout hint still reports the
/// declaration order — a layout/hint divergence only the slot-aware
/// validator (or a differential run) can see.
///
/// # Errors
///
/// Fails on ill-formed lvalues, like the real pass.
pub fn cminorgen_swap_mutated(m: &ClightModule) -> Result<CminorModule, CminorgenError> {
    Ok(CminorModule {
        funcs: crate::pass_util::map_functions(&m.funcs, |f| {
            translate_function_with(f, Layout::SwapFirstTwo)
        })?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cminor::CMINOR;
    use ccc_clight::ast::Binop;
    use ccc_clight::ClightLang;
    use ccc_core::mem::{GlobalEnv, Val};
    use ccc_core::world::run_main;

    fn run_both(m: &ClightModule, ge: &GlobalEnv) -> (Option<Val>, Option<Val>) {
        let cm = cminorgen(m).expect("translates");
        let src = run_main(&ClightLang, m, ge, "f", &[], 100_000).map(|(v, _, _)| v);
        let tgt = run_main(&CMINOR, &cm, ge, "f", &[], 100_000).map(|(v, _, _)| v);
        (src, tgt)
    }

    #[test]
    fn locals_become_stack_slots() {
        use ccc_clight::ast::{Expr as E, Function, Stmt};
        let body = Stmt::seq([
            Stmt::Assign(E::var("a"), E::Const(3)),
            Stmt::Assign(E::var("b"), E::add(E::var("a"), E::Const(4))),
            Stmt::Return(Some(E::add(E::var("a"), E::var("b")))),
        ]);
        let m = ClightModule::new([(
            "f",
            Function {
                params: vec![],
                vars: vec!["a".into(), "b".into()],
                body,
            },
        )]);
        let ge = GlobalEnv::new();
        let (s, t) = run_both(&m, &ge);
        assert_eq!(s, Some(Val::Int(10)));
        assert_eq!(s, t);
    }

    #[test]
    fn pointers_to_locals_translate() {
        use ccc_clight::ast::{Expr as E, Function, Stmt};
        // f() { int b; b = 1; *(&b) = b + 9; return b; }
        let body = Stmt::seq([
            Stmt::Assign(E::var("b"), E::Const(1)),
            Stmt::Set("p".into(), E::Addrof(Box::new(E::var("b")))),
            Stmt::Assign(
                E::Deref(Box::new(E::temp("p"))),
                E::add(E::var("b"), E::Const(9)),
            ),
            Stmt::Return(Some(E::var("b"))),
        ]);
        let m = ClightModule::new([(
            "f",
            Function {
                params: vec![],
                vars: vec!["b".into()],
                body,
            },
        )]);
        let ge = GlobalEnv::new();
        let (s, t) = run_both(&m, &ge);
        assert_eq!(s, Some(Val::Int(10)));
        assert_eq!(s, t);
    }

    #[test]
    fn globals_stay_shared() {
        use ccc_clight::ast::{Expr as E, Function, Stmt};
        let mut ge = GlobalEnv::new();
        ge.define("x", Val::Int(5));
        let body = Stmt::seq([
            Stmt::Assign(E::var("x"), E::bin(Binop::Mul, E::var("x"), E::Const(2))),
            Stmt::Return(Some(E::var("x"))),
        ]);
        let m = ClightModule::new([("f", Function::simple(body))]);
        let (s, t) = run_both(&m, &ge);
        assert_eq!(s, Some(Val::Int(10)));
        assert_eq!(s, t);
    }

    #[test]
    fn random_programs_agree() {
        use ccc_clight::gen::{gen_module, GenCfg};
        for seed in 0..40 {
            let (m, ge) = gen_module(seed, &GenCfg::default());
            let cm = cminorgen(&m).expect("translates");
            let s = run_main(&ClightLang, &m, &ge, "f", &[], 200_000);
            let t = run_main(&CMINOR, &cm, &ge, "f", &[], 200_000);
            let (sv, smem, sev) = s.expect("source runs");
            let (tv, tmem, tev) = t.expect("target runs");
            assert_eq!(sv, tv, "seed {seed}: return values differ");
            assert_eq!(sev, tev, "seed {seed}: events differ");
            // Shared (global) memory must agree exactly.
            for (a, v) in ge.initial_memory().iter() {
                let _ = v;
                assert_eq!(smem.load(a), tmem.load(a), "seed {seed}: global at {a}");
            }
        }
    }
}
