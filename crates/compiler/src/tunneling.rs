//! The `Tunneling` optimization pass: LTL → LTL (Fig. 11).
//!
//! Branch tunneling: every edge that leads into a chain of `Nop`s is
//! redirected to the end of the chain, so the later `Linearize` pass
//! never materializes jumps-to-jumps. The `Nop`s themselves become
//! unreachable and are dropped.

use crate::ltl::{Function, Instr, LtlModule};
use crate::rtl::Node;
use std::collections::BTreeMap;

fn chase_with(f: &Function, mut n: Node, through_ops: bool) -> Node {
    // Bounded chase handles (degenerate) Nop cycles.
    for _ in 0..f.code.len() {
        match f.code.get(&n) {
            Some(Instr::Nop(next)) if *next != n => n = *next,
            // The seeded bug for mutation scoring: `Op`s are treated as
            // tunnelable too, so edges skip over real computation.
            Some(Instr::Op(_, _, _, next)) if through_ops && *next != n => n = *next,
            _ => break,
        }
    }
    n
}

/// Where the pass redirects an edge leading to `n`: the end of the
/// `Nop` chain starting at `n`. Exposed as the branch-map hint of the
/// `ccc-analysis` translation validator, which uses it as the candidate
/// node matching and re-discharges the per-block obligations itself.
pub fn branch_target(f: &Function, n: Node) -> Node {
    chase_with(f, n, false)
}

fn transform_function_with(f: &Function, through_ops: bool) -> Function {
    let mut code: BTreeMap<Node, Instr> = BTreeMap::new();
    for (&n, i) in &f.code {
        let mut i = i.clone();
        i.map_succs(|s| chase_with(f, s, through_ops));
        code.insert(n, i);
    }
    // Drop Nops that nothing reaches anymore (entry is chased too).
    let entry = chase_with(f, f.entry, through_ops);
    let mut reachable = std::collections::BTreeSet::new();
    let mut stack = vec![entry];
    while let Some(n) = stack.pop() {
        if !reachable.insert(n) {
            continue;
        }
        if let Some(i) = code.get(&n) {
            stack.extend(i.succs());
        }
    }
    code.retain(|n, _| reachable.contains(n));
    Function {
        params: f.params.clone(),
        stack_slots: f.stack_slots,
        spill_slots: f.spill_slots,
        entry,
        code,
    }
}

/// Runs branch tunneling over a module.
pub fn tunneling(m: &LtlModule) -> LtlModule {
    LtlModule {
        funcs: m
            .funcs
            .iter()
            .map(|(n, f)| (n.clone(), transform_function_with(f, false)))
            .collect(),
    }
}

/// Seeded-bug variant for mutation scoring ([`crate::mutant`]): the
/// chase also tunnels through `Op` instructions, skipping computation.
pub fn tunneling_mutated(m: &LtlModule) -> LtlModule {
    LtlModule {
        funcs: m
            .funcs
            .iter()
            .map(|(n, f)| (n.clone(), transform_function_with(f, true)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ltl::{Loc, LtlLang};
    use crate::ops::{Cmp, Op};
    use ccc_core::mem::{GlobalEnv, Val};
    use ccc_core::world::run_main;
    use ccc_machine::Reg;

    #[test]
    fn nop_chains_are_collapsed() {
        // 0: cond → (1 | 4); 1: nop→2; 2: nop→3; 3: ret; 4: ret
        let f = Function {
            params: vec![Loc::Spill(0)],
            stack_slots: 0,
            spill_slots: 1,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::CondImm(Cmp::Lt, Loc::Spill(0), 0, 1, 4)),
                (1, Instr::Nop(2)),
                (2, Instr::Nop(3)),
                (3, Instr::Op(Op::Const(1), vec![], Loc::Reg(Reg::Ecx), 5)),
                (4, Instr::Op(Op::Const(2), vec![], Loc::Reg(Reg::Ecx), 5)),
                (5, Instr::Return(Some(Loc::Reg(Reg::Ecx)))),
            ]),
        };
        let m = LtlModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let t = tunneling(&m);
        let tf = &t.funcs["f"];
        // The Nops are gone and the branch goes straight to 3.
        assert!(!tf.code.values().any(|i| matches!(i, Instr::Nop(_))));
        assert!(matches!(
            tf.code.get(&0),
            Some(Instr::CondImm(_, _, _, 3, 4))
        ));
        // Behaviour preserved.
        let ge = GlobalEnv::new();
        for arg in [-1, 1] {
            let (v1, _, _) = run_main(&LtlLang, &m, &ge, "f", &[Val::Int(arg)], 100).expect("orig");
            let (v2, _, _) =
                run_main(&LtlLang, &t, &ge, "f", &[Val::Int(arg)], 100).expect("tunneled");
            assert_eq!(v1, v2);
        }
    }

    #[test]
    fn nop_cycle_does_not_hang() {
        let f = Function {
            params: vec![],
            stack_slots: 0,
            spill_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Nop(1)),
                (1, Instr::Nop(0)), // cycle: a diverging function
            ]),
        };
        let m = LtlModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let t = tunneling(&m); // must terminate
        assert!(!t.funcs["f"].code.is_empty());
    }
}
