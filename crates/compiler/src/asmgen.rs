//! The `Asmgen` pass: Mach → x86 assembly (Fig. 11).
//!
//! The remaining gap to the machine: three-address operators become
//! two-address x86 instructions (relying on `Stacking`'s invariant that
//! non-commutative destinations never alias second operands),
//! comparisons materialize through the flags (`cmp` + `setcc`/`jcc`),
//! and tail calls lower to `call; ret` (frames are never freed in the
//! paper's memory model, so the stack-space argument for real tail
//! calls does not arise).

use crate::linear::Label;
use crate::mach::{Function as MFunction, Instr as MIn, MachModule};
use crate::ops::{AddrMode, Cmp, Op};
use ccc_machine::{AsmFunc, AsmModule, Cond, Instr, MemArg, Operand, Reg};

/// An error during assembly generation (violated invariants).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmgenError(pub String);

impl std::fmt::Display for AsmgenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "asmgen: {}", self.0)
    }
}

impl std::error::Error for AsmgenError {}

/// Which seeded bug (if any) an asmgen run carries — see
/// [`crate::mutant`].
#[derive(Clone, Copy, PartialEq, Eq)]
enum CodegenBug {
    /// The real pass.
    Clean,
    /// Strict less-than is emitted as the off-by-one `jle`/`setle`.
    LtAsLe,
    /// Conditional jumps on an immediate skip the `cmp`, consuming
    /// whatever flags the previous instruction happened to leave.
    DropCmp,
}

fn cond_of_with(c: Cmp, bug: CodegenBug) -> Cond {
    match c {
        Cmp::Eq => Cond::E,
        Cmp::Ne => Cond::Ne,
        Cmp::Lt if bug == CodegenBug::LtAsLe => Cond::Le,
        Cmp::Lt => Cond::L,
        Cmp::Le => Cond::Le,
        Cmp::Gt => Cond::G,
        Cmp::Ge => Cond::Ge,
    }
}

fn label_name(l: Label) -> String {
    format!("L{l}")
}

fn marg(am: &AddrMode<Reg>) -> MemArg {
    match am {
        AddrMode::Global(g, o) => MemArg::Global(g.clone(), *o),
        AddrMode::Stack(n) => MemArg::Stack(*n),
        AddrMode::Based(r, d) => MemArg::BaseDisp(*r, *d),
    }
}

/// Emits a two-operand ALU instruction `d := d ⊕ src`.
fn alu(op: &Op, d: Reg, src: Operand) -> Result<Instr, AsmgenError> {
    Ok(match op {
        Op::Add | Op::AddImm(_) => Instr::Add(d, src),
        Op::Sub => Instr::Sub(d, src),
        Op::Mul | Op::MulImm(_) => Instr::Imul(d, src),
        Op::Div => Instr::Idiv(d, src),
        Op::And => Instr::And(d, src),
        Op::Or => Instr::Or(d, src),
        Op::Xor => Instr::Xor(d, src),
        other => return Err(AsmgenError(format!("not an ALU operator: {other:?}"))),
    })
}

fn commutes(op: &Op) -> bool {
    matches!(op, Op::Add | Op::Mul | Op::And | Op::Or | Op::Xor)
}

fn emit_op(
    code: &mut Vec<Instr>,
    op: &Op,
    args: &[Reg],
    d: Reg,
    bug: CodegenBug,
) -> Result<(), AsmgenError> {
    match (op, args) {
        (Op::Const(i), []) => code.push(Instr::Mov(d, Operand::Imm(*i))),
        (Op::AddrGlobal(g, o), []) => code.push(Instr::Lea(d, MemArg::Global(g.clone(), *o))),
        (Op::AddrStack(s), []) => code.push(Instr::Lea(d, MemArg::Stack(*s))),
        (Op::Move, [a]) => {
            if *a != d {
                code.push(Instr::Mov(d, Operand::Reg(*a)));
            } else {
                // A no-op move must still take one step at the machine
                // level? No — Asm is allowed to take fewer τ-steps; skip.
            }
        }
        (Op::Neg, [a]) => {
            if *a != d {
                code.push(Instr::Mov(d, Operand::Reg(*a)));
            }
            code.push(Instr::Neg(d));
        }
        (Op::Not, [a]) => {
            code.push(Instr::Cmp(Operand::Reg(*a), Operand::Imm(0)));
            code.push(Instr::Setcc(Cond::E, d));
        }
        (Op::AddImm(i), [a]) => {
            if *a != d {
                code.push(Instr::Mov(d, Operand::Reg(*a)));
            }
            code.push(Instr::Add(d, Operand::Imm(*i)));
        }
        (Op::MulImm(i), [a]) => {
            if *a != d {
                code.push(Instr::Mov(d, Operand::Reg(*a)));
            }
            code.push(Instr::Imul(d, Operand::Imm(*i)));
        }
        (Op::CmpImm(c, i), [a]) => {
            code.push(Instr::Cmp(Operand::Reg(*a), Operand::Imm(*i)));
            code.push(Instr::Setcc(cond_of_with(*c, bug), d));
        }
        (Op::Cmp(c), [a, b]) => {
            code.push(Instr::Cmp(Operand::Reg(*a), Operand::Reg(*b)));
            code.push(Instr::Setcc(cond_of_with(*c, bug), d));
        }
        (two_ary, [a, b]) => {
            if d == *a {
                code.push(alu(two_ary, d, Operand::Reg(*b))?);
            } else if commutes(two_ary) && d == *b {
                code.push(alu(two_ary, d, Operand::Reg(*a))?);
            } else if d != *b {
                code.push(Instr::Mov(d, Operand::Reg(*a)));
                code.push(alu(two_ary, d, Operand::Reg(*b))?);
            } else {
                return Err(AsmgenError(format!(
                    "two-address invariant violated: {two_ary:?} dst {d} aliases 2nd operand"
                )));
            }
        }
        (op, args) => {
            return Err(AsmgenError(format!(
                "operator/arity mismatch: {op:?} with {} args",
                args.len()
            )))
        }
    }
    Ok(())
}

fn transform_function_with(f: &MFunction, bug: CodegenBug) -> Result<AsmFunc, AsmgenError> {
    let mut code = Vec::new();
    for i in &f.code {
        match i {
            MIn::Label(l) => code.push(Instr::Label(label_name(*l))),
            MIn::Goto(l) => code.push(Instr::Jmp(label_name(*l))),
            MIn::Op(op, args, d) => emit_op(&mut code, op, args, *d, bug)?,
            MIn::Load(am, d) => code.push(Instr::Load(*d, marg(am))),
            MIn::Store(am, s) => code.push(Instr::Store(marg(am), Operand::Reg(*s))),
            MIn::Call(f, n) => code.push(Instr::Call(f.clone(), *n)),
            MIn::Tailcall(f, n) => {
                code.push(Instr::Call(f.clone(), *n));
                code.push(Instr::Ret);
            }
            MIn::CondJump(c, a, b, l) => {
                code.push(Instr::Cmp(Operand::Reg(*a), Operand::Reg(*b)));
                code.push(Instr::Jcc(cond_of_with(*c, bug), label_name(*l)));
            }
            MIn::CondImmJump(c, a, i, l) => {
                if bug != CodegenBug::DropCmp {
                    code.push(Instr::Cmp(Operand::Reg(*a), Operand::Imm(*i)));
                }
                code.push(Instr::Jcc(cond_of_with(*c, bug), label_name(*l)));
            }
            MIn::Print(r) => code.push(Instr::Print(*r)),
            MIn::Return => code.push(Instr::Ret),
        }
    }
    Ok(AsmFunc {
        code,
        frame_slots: f.frame_slots,
        arity: f.arity,
    })
}

/// Generates assembly for one function — also the untrusted hint hook
/// of the symbolic translation validator: the re-derived lowering is
/// the predicted assembly the actual Asmgen output is compared against
/// (on top of the independent flag-convention and frame-cover
/// obligations).
///
/// # Errors
///
/// Fails on violated Stacking invariants.
pub fn transform_function(f: &MFunction) -> Result<AsmFunc, AsmgenError> {
    transform_function_with(f, CodegenBug::Clean)
}

/// Generates assembly for a whole module.
///
/// # Errors
///
/// Fails on violated Stacking invariants.
pub fn asmgen(m: &MachModule) -> Result<AsmModule, AsmgenError> {
    Ok(AsmModule {
        funcs: crate::pass_util::map_functions(&m.funcs, transform_function)?,
    })
}

/// Seeded-bug variant for mutation scoring ([`crate::mutant`]): every
/// `Lt` comparison is emitted with the off-by-one `Le` condition code.
///
/// # Errors
///
/// Fails on violated Stacking invariants, like the real pass.
pub fn asmgen_mutated(m: &MachModule) -> Result<AsmModule, AsmgenError> {
    Ok(AsmModule {
        funcs: crate::pass_util::map_functions(&m.funcs, |f| {
            transform_function_with(f, CodegenBug::LtAsLe)
        })?,
    })
}

/// Second seeded-bug variant: conditional jumps against an immediate
/// drop the `cmp`, so the branch consumes stale flags — a violation of
/// the flag convention the validator checks (every `jcc` must be
/// immediately preceded by the `cmp` that defines its flags).
///
/// # Errors
///
/// Fails on violated Stacking invariants, like the real pass.
pub fn asmgen_dropcmp_mutated(m: &MachModule) -> Result<AsmModule, AsmgenError> {
    Ok(AsmModule {
        funcs: crate::pass_util::map_functions(&m.funcs, |f| {
            transform_function_with(f, CodegenBug::DropCmp)
        })?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_core::mem::{GlobalEnv, Val};
    use ccc_core::world::run_main;
    use ccc_machine::X86Sc;

    #[test]
    fn ops_lower_to_two_address_form() {
        let f = MFunction {
            frame_slots: 0,
            arity: 0,
            code: vec![
                MIn::Op(Op::Const(10), vec![], Reg::Ecx),
                MIn::Op(Op::Const(3), vec![], Reg::Edx),
                MIn::Op(Op::Sub, vec![Reg::Ecx, Reg::Edx], Reg::Esi),
                MIn::Op(Op::Move, vec![Reg::Esi], Reg::Eax),
                MIn::Return,
            ],
        };
        let m = MachModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let asm = asmgen(&m).expect("asmgen");
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&X86Sc, &asm, &ge, "f", &[], 100).expect("runs");
        assert_eq!(v, Val::Int(7));
    }

    #[test]
    fn comparisons_materialize_through_flags() {
        let f = MFunction {
            frame_slots: 0,
            arity: 1,
            code: vec![
                MIn::Op(Op::CmpImm(Cmp::Lt, 10), vec![Reg::Edi], Reg::Eax),
                MIn::Return,
            ],
        };
        let m = MachModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let asm = asmgen(&m).expect("asmgen");
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&X86Sc, &asm, &ge, "f", &[Val::Int(5)], 100).expect("runs");
        assert_eq!(v, Val::Int(1));
        let (v, _, _) = run_main(&X86Sc, &asm, &ge, "f", &[Val::Int(15)], 100).expect("runs");
        assert_eq!(v, Val::Int(0));
    }

    #[test]
    fn tailcall_lowers_to_call_ret() {
        let f = MFunction {
            frame_slots: 0,
            arity: 0,
            code: vec![MIn::Tailcall("g".into(), 0)],
        };
        let m = MachModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let asm = asmgen(&m).expect("asmgen");
        let code = &asm.funcs["f"].code;
        assert!(matches!(code[0], Instr::Call(..)));
        assert!(matches!(code[1], Instr::Ret));
    }
}
