//! The `Allocation` pass: RTL → LTL — register allocation by liveness
//! analysis and greedy graph coloring.
//!
//! Design (correctness-first, documented in DESIGN.md):
//!
//! * a backward dataflow **liveness analysis** over the CFG;
//! * pseudo-registers **live across a call** are always spilled, so no
//!   register value ever needs to survive the callee's clobbering;
//! * **parameters** are spilled (the prologue stores the argument
//!   registers straight into their slots, avoiding parallel moves);
//! * **call arguments** are routed through fresh spill slots (moves
//!   inserted before the call), so `Stacking` can marshal them into the
//!   argument registers without interference analysis;
//! * remaining pseudo-registers are colored over the four allocatable
//!   registers (`ecx`, `edx`, `esi`, `edi` — `eax`/`ebx` are reserved
//!   as `Stacking` scratches), spilling on color exhaustion.

use crate::ltl::{Function as LtlFunction, Instr as LInstr, Loc, LtlModule};
use crate::ops::Op;
use crate::rtl::{Function, Instr, Node, PReg, RtlModule};
use ccc_machine::Reg as MReg;
use std::collections::{BTreeMap, BTreeSet};

/// The allocatable register pool.
pub const ALLOC_REGS: [MReg; 4] = [MReg::Ecx, MReg::Edx, MReg::Esi, MReg::Edi];

/// Computes per-node live-out sets by backward fixpoint iteration.
pub fn liveness(f: &Function) -> BTreeMap<Node, BTreeSet<PReg>> {
    let mut live_in: BTreeMap<Node, BTreeSet<PReg>> = BTreeMap::new();
    let mut live_out: BTreeMap<Node, BTreeSet<PReg>> = BTreeMap::new();
    let mut changed = true;
    while changed {
        changed = false;
        // Reverse order helps convergence but is not required.
        for (&n, instr) in f.code.iter().rev() {
            let mut out = BTreeSet::new();
            for s in instr.succs() {
                if let Some(li) = live_in.get(&s) {
                    out.extend(li.iter().copied());
                }
            }
            let mut inn: BTreeSet<PReg> = out.clone();
            if let Some(d) = instr.def() {
                inn.remove(&d);
            }
            inn.extend(instr.uses());
            if live_out.get(&n) != Some(&out) {
                live_out.insert(n, out);
                changed = true;
            }
            if live_in.get(&n) != Some(&inn) {
                live_in.insert(n, inn);
                changed = true;
            }
        }
    }
    live_out
}

struct Allocator {
    assign: BTreeMap<PReg, Loc>,
    next_spill: u32,
}

impl Allocator {
    fn spill(&mut self, r: PReg) -> Loc {
        let l = Loc::Spill(self.next_spill);
        self.next_spill += 1;
        self.assign.insert(r, l);
        l
    }

    fn loc(&self, r: PReg) -> Loc {
        *self.assign.get(&r).expect("every preg assigned")
    }
}

fn build_allocator(f: &Function, ignore_interference: bool) -> Allocator {
    let live_out = liveness(f);

    // Collect every preg mentioned.
    let mut pregs: BTreeSet<PReg> = f.params.iter().copied().collect();
    for i in f.code.values() {
        pregs.extend(i.uses());
        pregs.extend(i.def());
    }

    // Forced spills: parameters and values live across calls.
    let mut forced: BTreeSet<PReg> = f.params.iter().copied().collect();
    for (n, i) in &f.code {
        if matches!(i, Instr::Call(..)) {
            let mut survivors = live_out.get(n).cloned().unwrap_or_default();
            if let Some(d) = i.def() {
                survivors.remove(&d);
            }
            forced.extend(survivors);
        }
    }

    // Interference graph over the candidates.
    let mut interf: BTreeMap<PReg, BTreeSet<PReg>> = BTreeMap::new();
    for (n, i) in &f.code {
        if let Some(d) = i.def() {
            for &o in live_out.get(n).into_iter().flatten() {
                if o != d {
                    interf.entry(d).or_default().insert(o);
                    interf.entry(o).or_default().insert(d);
                }
            }
        }
    }

    let mut alloc = Allocator {
        assign: BTreeMap::new(),
        next_spill: 0,
    };
    // Parameters first, in order, so their slots are 0..n (the prologue
    // convention Stacking relies on).
    for &p in &f.params {
        alloc.spill(p);
    }
    for &r in &pregs {
        if alloc.assign.contains_key(&r) {
            continue;
        }
        if forced.contains(&r) {
            alloc.spill(r);
            continue;
        }
        // `ignore_interference` is the seeded bug for mutation scoring:
        // the coloring pretends no neighbor's register is taken, so
        // interfering live ranges coalesce onto the same register.
        let taken: BTreeSet<MReg> = if ignore_interference {
            BTreeSet::new()
        } else {
            interf
                .get(&r)
                .into_iter()
                .flatten()
                .filter_map(|o| match alloc.assign.get(o) {
                    Some(Loc::Reg(m)) => Some(*m),
                    _ => None,
                })
                .collect()
        };
        match ALLOC_REGS.iter().find(|m| !taken.contains(m)) {
            Some(&m) => {
                alloc.assign.insert(r, Loc::Reg(m));
            }
            None => {
                alloc.spill(r);
            }
        }
    }
    alloc
}

/// The location assigned to every pseudo-register (before call-argument
/// routing claims additional fresh spill slots). Exposed as the
/// structural hint of the `ccc-analysis` translation validator, which
/// checks the assignment's injectivity on live ranges and the induced
/// per-block simulation independently.
pub fn assignment(f: &Function) -> BTreeMap<PReg, Loc> {
    build_allocator(f, false).assign
}

fn transform_function_with(f: &Function, ignore_interference: bool) -> LtlFunction {
    let mut alloc = build_allocator(f, ignore_interference);

    // Rewrite the graph; calls get their arguments routed through fresh
    // spill slots via moves inserted ahead of the call.
    let mut code: BTreeMap<Node, LInstr> = BTreeMap::new();
    let mut next_node: Node = f.code.keys().max().map_or(0, |m| m + 1);
    // Routes a call's arguments through fresh spill slots, chaining the
    // needed moves from the call's original node id (so predecessor
    // edges keep working).
    let route_call = |n: Node,
                      args: &[PReg],
                      alloc: &mut Allocator,
                      code: &mut BTreeMap<Node, LInstr>,
                      next_node: &mut Node,
                      mk: &dyn Fn(Vec<Loc>) -> LInstr| {
        let mut spilled_args = Vec::new();
        let mut moves = Vec::new();
        for &a in args {
            let src = alloc.loc(a);
            if let Loc::Spill(_) = src {
                spilled_args.push(src);
            } else {
                let s = Loc::Spill(alloc.next_spill);
                alloc.next_spill += 1;
                moves.push((src, s));
                spilled_args.push(s);
            }
        }
        if moves.is_empty() {
            code.insert(n, mk(spilled_args));
            return;
        }
        let call_node = *next_node;
        *next_node += 1;
        code.insert(call_node, mk(spilled_args));
        let mut at = n;
        for (k, (src, dst)) in moves.iter().enumerate() {
            let nxt = if k + 1 == moves.len() {
                call_node
            } else {
                let fresh = *next_node;
                *next_node += 1;
                fresh
            };
            code.insert(at, LInstr::Op(Op::Move, vec![*src], *dst, nxt));
            at = nxt;
        }
    };

    for (&n, i) in &f.code {
        match i {
            Instr::Call(dst, callee, args, succ) if !args.is_empty() => {
                let dst = dst.map(|r| alloc.loc(r));
                let callee = callee.clone();
                let succ = *succ;
                route_call(n, args, &mut alloc, &mut code, &mut next_node, &{
                    let callee = callee.clone();
                    move |locs| LInstr::Call(dst, callee.clone(), locs, succ)
                });
            }
            Instr::Tailcall(callee, args) if !args.is_empty() => {
                let callee = callee.clone();
                route_call(n, args, &mut alloc, &mut code, &mut next_node, &{
                    let callee = callee.clone();
                    move |locs| LInstr::Tailcall(callee.clone(), locs)
                });
            }
            other => {
                code.insert(n, map_instr(other, &alloc));
            }
        }
    }

    LtlFunction {
        params: f.params.iter().map(|&p| alloc.loc(p)).collect(),
        stack_slots: f.stack_slots,
        spill_slots: alloc.next_spill,
        entry: f.entry,
        code,
    }
}

fn map_instr(i: &Instr, alloc: &Allocator) -> LInstr {
    let l = |r: &PReg| alloc.loc(*r);
    match i {
        Instr::Nop(n) => LInstr::Nop(*n),
        Instr::Op(op, args, dst, n) => {
            LInstr::Op(op.clone(), args.iter().map(l).collect(), l(dst), *n)
        }
        Instr::Load(am, dst, n) => LInstr::Load(am.clone().map(|r| alloc.loc(r)), l(dst), *n),
        Instr::Store(am, src, n) => LInstr::Store(am.clone().map(|r| alloc.loc(r)), l(src), *n),
        Instr::Call(dst, f, args, n) => LInstr::Call(
            dst.map(|r| alloc.loc(r)),
            f.clone(),
            args.iter().map(l).collect(),
            *n,
        ),
        Instr::Tailcall(f, args) => LInstr::Tailcall(f.clone(), args.iter().map(l).collect()),
        Instr::Cond(c, a, b, t, e) => LInstr::Cond(*c, l(a), l(b), *t, *e),
        Instr::CondImm(c, r, i, t, e) => LInstr::CondImm(*c, l(r), *i, *t, *e),
        Instr::Print(r, n) => LInstr::Print(l(r), *n),
        Instr::Return(r) => LInstr::Return(r.map(|r| alloc.loc(r))),
    }
}

/// Runs register allocation over a module.
pub fn allocation(m: &RtlModule) -> LtlModule {
    LtlModule {
        funcs: m
            .funcs
            .iter()
            .map(|(n, f)| (n.clone(), transform_function_with(f, false)))
            .collect(),
    }
}

/// Seeded-bug variant for mutation scoring ([`crate::mutant`]): the
/// coloring ignores the interference graph, coalescing interfering live
/// ranges onto the first allocatable register.
pub fn allocation_mutated(m: &RtlModule) -> LtlModule {
    LtlModule {
        funcs: m
            .funcs
            .iter()
            .map(|(n, f)| (n.clone(), transform_function_with(f, true)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cminorgen::cminorgen;
    use crate::ltl::LtlLang;
    use crate::renumber::renumber;
    use crate::rtl::RtlLang;
    use crate::rtlgen::rtlgen;
    use crate::selection::selection;
    use crate::tailcall::tailcall;
    use ccc_clight::gen::{gen_module, GenCfg};
    use ccc_core::mem::{GlobalEnv, Val};
    use ccc_core::world::run_main;

    fn pipeline_to_ltl(m: &ccc_clight::ClightModule) -> LtlModule {
        allocation(&renumber(&tailcall(&rtlgen(&selection(
            &cminorgen(m).expect("cminorgen"),
        )))))
    }

    #[test]
    fn liveness_sees_loop_carried_values() {
        // r0 := 0; loop: if r1 == 0 ret r0; r0 += r1; r1 -= 1; goto loop
        let f = Function {
            params: vec![1],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::Const(0), vec![], 0, 1)),
                (1, Instr::CondImm(crate::ops::Cmp::Eq, 1, 0, 4, 2)),
                (2, Instr::Op(Op::Add, vec![0, 1], 0, 3)),
                (3, Instr::Op(Op::AddImm(-1), vec![1], 1, 1)),
                (4, Instr::Return(Some(0))),
            ]),
        };
        let lo = liveness(&f);
        // Both r0 and r1 are live around the loop edge (out of node 3).
        assert!(lo[&3].contains(&0) && lo[&3].contains(&1));
    }

    #[test]
    fn values_across_calls_are_spilled() {
        // r1 := 7; r2 := g(); return r1 + r2   — r1 must not be in a reg.
        let f = Function {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::Const(7), vec![], 1, 1)),
                (1, Instr::Call(Some(2), "g".into(), vec![], 2)),
                (2, Instr::Op(Op::Add, vec![1, 2], 3, 3)),
                (3, Instr::Return(Some(3))),
            ]),
        };
        let m = RtlModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let l = allocation(&m);
        let lf = &l.funcs["f"];
        // Find the location assigned to preg 1 via the Const instruction.
        let const_dst = lf
            .code
            .values()
            .find_map(|i| match i {
                LInstr::Op(Op::Const(7), _, dst, _) => Some(*dst),
                _ => None,
            })
            .expect("const instruction survives");
        assert!(
            matches!(const_dst, Loc::Spill(_)),
            "live-across-call spilled"
        );
    }

    #[test]
    fn call_arguments_are_spill_slots() {
        let f = Function {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::Const(1), vec![], 1, 1)),
                (1, Instr::Op(Op::Const(2), vec![], 2, 2)),
                (2, Instr::Call(Some(3), "g".into(), vec![1, 2], 3)),
                (3, Instr::Return(Some(3))),
            ]),
        };
        let m = RtlModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let l = allocation(&m);
        for i in l.funcs["f"].code.values() {
            if let LInstr::Call(_, _, args, _) = i {
                assert!(args.iter().all(|a| matches!(a, Loc::Spill(_))));
            }
        }
    }

    #[test]
    fn random_programs_agree_through_allocation() {
        for seed in 0..40 {
            let (m, ge) = gen_module(seed, &GenCfg::default());
            let rtl = renumber(&tailcall(&rtlgen(&selection(
                &cminorgen(&m).expect("cminorgen"),
            ))));
            let ltl = allocation(&rtl);
            let r = run_main(&RtlLang, &rtl, &ge, "f", &[], 500_000).expect("rtl runs");
            let l = run_main(&LtlLang, &ltl, &ge, "f", &[], 500_000).expect("ltl runs");
            assert_eq!(r.0, l.0, "seed {seed}: return values");
            assert_eq!(r.2, l.2, "seed {seed}: events");
            for (a, _) in ge.initial_memory().iter() {
                assert_eq!(r.1.load(a), l.1.load(a), "seed {seed}: global {a}");
            }
        }
    }

    #[test]
    fn parameters_arrive_in_spill_slots() {
        use ccc_clight::ast::{Expr as E, Function as CF, Stmt};
        let m = ccc_clight::ClightModule::new([(
            "f",
            CF {
                params: vec!["n".into()],
                vars: vec![],
                body: Stmt::Return(Some(E::add(E::temp("n"), E::Const(1)))),
            },
        )]);
        let ltl = pipeline_to_ltl(&m);
        let lf = &ltl.funcs["f"];
        assert!(lf.params.iter().all(|p| matches!(p, Loc::Spill(_))));
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&LtlLang, &ltl, &ge, "f", &[Val::Int(41)], 1000).expect("runs");
        assert_eq!(v, Val::Int(42));
    }
}
