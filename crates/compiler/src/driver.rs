//! The compilation driver: the full CompCert-shaped pipeline of Fig. 11
//! and its per-pass validation hooks.
//!
//! `Comp` of §7.2: concurrent Clight client modules are compiled with
//! [`compile`] (all twelve passes); object modules (CImp) go through the
//! identity transformation `IdTrans` — syntactically unchanged, only
//! their semantics is reinterpreted at link time.
//!
//! Every intermediate program of a compilation is kept in
//! [`CompilationArtifacts`], so tests, the simulation checker, and the
//! benchmark harness can validate and time each pass individually (the
//! per-pass structure of the paper's Fig. 13).

use crate::allocation::allocation;
use crate::asmgen::{asmgen, AsmgenError};
use crate::cleanuplabels::cleanup_labels;
use crate::cminor::CminorModule;
use crate::cminorgen::{cminorgen, CminorgenError};
use crate::cminorsel::CminorSelModule;
use crate::linear::LinearModule;
use crate::linearize::linearize;
use crate::ltl::LtlModule;
use crate::mach::MachModule;
use crate::renumber::renumber;
use crate::rtl::RtlModule;
use crate::rtlgen::rtlgen;
use crate::selection::selection;
use crate::stacking::{stacking, StackingError};
use crate::tailcall::tailcall;
use crate::tunneling::tunneling;
use ccc_clight::ClightModule;
use ccc_machine::AsmModule;

/// A compilation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// The front-end rejected the program.
    Cminorgen(CminorgenError),
    /// Frame layout failed.
    Stacking(StackingError),
    /// Assembly generation failed.
    Asmgen(AsmgenError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Cminorgen(e) => e.fmt(f),
            CompileError::Stacking(e) => e.fmt(f),
            CompileError::Asmgen(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CompileError {}

/// The names of the pipeline passes, in order (Fig. 11).
pub const PASS_NAMES: [&str; 11] = [
    "Cshmgen/Cminorgen",
    "Selection",
    "RTLgen",
    "Tailcall",
    "Renumber",
    "Allocation",
    "Tunneling",
    "Linearize",
    "CleanupLabels",
    "Stacking",
    "Asmgen",
];

/// Every intermediate program of one compilation.
///
/// `PartialEq` is load-bearing for the incremental cache ([`crate::cache`]):
/// a cache hit is only trusted after the stored source stage is compared
/// bit-for-bit against the requested module, and the sepcomp test
/// battery asserts whole-artifact equality between cached and cold
/// builds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompilationArtifacts {
    /// The source.
    pub clight: ClightModule,
    /// After Cshmgen/Cminorgen.
    pub cminor: CminorModule,
    /// After Selection.
    pub cminorsel: CminorSelModule,
    /// After RTLgen.
    pub rtl: RtlModule,
    /// After Tailcall.
    pub rtl_tailcall: RtlModule,
    /// After Renumber.
    pub rtl_renumber: RtlModule,
    /// After the optional Constprop extension pass (`None` in the
    /// standard pipeline; `Some` under
    /// [`compile_optimized_with_artifacts`] and the mutation harness).
    /// When present, it is the input `Allocation` consumed.
    pub rtl_constprop: Option<RtlModule>,
    /// After Allocation.
    pub ltl: LtlModule,
    /// After Tunneling.
    pub ltl_tunneled: LtlModule,
    /// After Linearize.
    pub linear: LinearModule,
    /// After CleanupLabels.
    pub linear_clean: LinearModule,
    /// After Stacking.
    pub mach: MachModule,
    /// The final assembly.
    pub asm: AsmModule,
}

impl CompilationArtifacts {
    /// Display names for the programs held in the artifacts, in pipeline
    /// order. Stage 0 is the source; stage `i > 0` is the output of
    /// [`PASS_NAMES`]`[i - 1]`. Structural checkers (the `ccc-analysis`
    /// per-pass lint) iterate these to label per-stage diagnostics.
    pub const STAGE_NAMES: [&'static str; 12] = [
        "Clight",
        "Cminor",
        "CminorSel",
        "RTL",
        "RTL/tailcall",
        "RTL/renumber",
        "LTL",
        "LTL/tunneled",
        "Linear",
        "Linear/clean",
        "Mach",
        "Asm",
    ];
}

/// Runs the whole pipeline, keeping every intermediate program.
///
/// # Errors
///
/// Propagates the failing pass's error.
pub fn compile_with_artifacts(m: &ClightModule) -> Result<CompilationArtifacts, CompileError> {
    let cminor = cminorgen(m).map_err(CompileError::Cminorgen)?;
    let cminorsel = selection(&cminor);
    let rtl = rtlgen(&cminorsel);
    let rtl_tailcall = tailcall(&rtl);
    let rtl_renumber = renumber(&rtl_tailcall);
    let ltl = allocation(&rtl_renumber);
    let ltl_tunneled = tunneling(&ltl);
    let linear = linearize(&ltl_tunneled);
    let linear_clean = cleanup_labels(&linear);
    let mach = stacking(&linear_clean).map_err(CompileError::Stacking)?;
    let asm = asmgen(&mach).map_err(CompileError::Asmgen)?;
    Ok(CompilationArtifacts {
        clight: m.clone(),
        cminor,
        cminorsel,
        rtl,
        rtl_tailcall,
        rtl_renumber,
        rtl_constprop: None,
        ltl,
        ltl_tunneled,
        linear,
        linear_clean,
        mach,
        asm,
    })
}

/// `CompCert(γ)` — compiles a Clight client module to x86 assembly.
///
/// # Errors
///
/// Propagates the failing pass's error.
///
/// # Examples
///
/// ```
/// use ccc_clight::{ClightModule, Expr, Function, Stmt};
/// use ccc_compiler::driver::compile;
/// use ccc_core::mem::{GlobalEnv, Val};
/// use ccc_core::world::run_main;
/// use ccc_machine::X86Sc;
///
/// let m = ClightModule::new([(
///     "f",
///     Function::simple(Stmt::Return(Some(Expr::add(Expr::Const(40), Expr::Const(2))))),
/// )]);
/// let asm = compile(&m)?;
/// let ge = GlobalEnv::new();
/// let (v, _, _) = run_main(&X86Sc, &asm, &ge, "f", &[], 1000).expect("runs");
/// assert_eq!(v, Val::Int(42));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile(m: &ClightModule) -> Result<AsmModule, CompileError> {
    Ok(compile_with_artifacts(m)?.asm)
}

/// `IdTrans` — the identity transformation used for object modules
/// (§7.2): returns the module unchanged.
pub fn id_trans<M: Clone>(m: &M) -> M {
    m.clone()
}

/// The *extension* pipeline: the standard passes plus RTL constant
/// propagation after `Renumber` (one of the optimization passes the
/// paper leaves as future work; validated with the same simulation
/// machinery as the others).
///
/// # Errors
///
/// Propagates the failing pass's error.
pub fn compile_optimized(m: &ClightModule) -> Result<AsmModule, CompileError> {
    Ok(compile_optimized_with_artifacts(m)?.asm)
}

/// Like [`compile_with_artifacts`], but running the extension pipeline
/// (Constprop after Renumber); the artifacts carry the Constprop stage
/// in [`CompilationArtifacts::rtl_constprop`].
///
/// # Errors
///
/// Propagates the failing pass's error.
pub fn compile_optimized_with_artifacts(
    m: &ClightModule,
) -> Result<CompilationArtifacts, CompileError> {
    crate::mutant::compile_with_artifacts_mutated(m, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_clight::gen::{gen_module, GenCfg};
    use ccc_clight::ClightLang;
    use ccc_core::world::run_main;
    use ccc_machine::X86Sc;

    #[test]
    fn end_to_end_random_differential() {
        for seed in 0..60 {
            let (m, ge) = gen_module(seed, &GenCfg::default());
            let asm = compile(&m).expect("compiles");
            let s = run_main(&ClightLang, &m, &ge, "f", &[], 1_000_000)
                .unwrap_or_else(|| panic!("seed {seed}: source aborted"));
            let t = run_main(&X86Sc, &asm, &ge, "f", &[], 1_000_000)
                .unwrap_or_else(|| panic!("seed {seed}: target aborted"));
            assert_eq!(s.0, t.0, "seed {seed}: return values");
            assert_eq!(s.2, t.2, "seed {seed}: events");
            for (a, _) in ge.initial_memory().iter() {
                assert_eq!(s.1.load(a), t.1.load(a), "seed {seed}: global {a}");
            }
        }
    }

    #[test]
    fn every_intermediate_stage_agrees() {
        use crate::cminor::CMINOR;
        use crate::cminorsel::CMINORSEL;
        use crate::linear::LinearLang;
        use crate::ltl::LtlLang;
        use crate::mach::MachLang;
        use crate::rtl::RtlLang;

        for seed in [1u64, 7, 13, 23] {
            let (m, ge) = gen_module(seed, &GenCfg::default());
            let a = compile_with_artifacts(&m).expect("compiles");
            let reference =
                run_main(&ClightLang, &m, &ge, "f", &[], 1_000_000).expect("source runs");
            macro_rules! check_stage {
                ($lang:expr, $module:expr, $name:literal) => {{
                    let r = run_main(&$lang, $module, &ge, "f", &[], 1_000_000)
                        .unwrap_or_else(|| panic!("seed {seed}: {} aborted", $name));
                    assert_eq!(reference.0, r.0, "seed {seed}: {} value", $name);
                    assert_eq!(reference.2, r.2, "seed {seed}: {} events", $name);
                }};
            }
            check_stage!(CMINOR, &a.cminor, "Cminor");
            check_stage!(CMINORSEL, &a.cminorsel, "CminorSel");
            check_stage!(RtlLang, &a.rtl, "RTL");
            check_stage!(RtlLang, &a.rtl_tailcall, "RTL/tailcall");
            check_stage!(RtlLang, &a.rtl_renumber, "RTL/renumber");
            check_stage!(LtlLang, &a.ltl, "LTL");
            check_stage!(LtlLang, &a.ltl_tunneled, "LTL/tunneled");
            check_stage!(LinearLang, &a.linear, "Linear");
            check_stage!(LinearLang, &a.linear_clean, "Linear/clean");
            check_stage!(MachLang, &a.mach, "Mach");
            check_stage!(X86Sc, &a.asm, "Asm");
        }
    }

    #[test]
    fn compiled_code_is_wd_and_det() {
        let (m, ge) = gen_module(5, &GenCfg::default());
        let asm = compile(&m).expect("compiles");
        let cfg = ccc_core::refine::ExploreCfg {
            fuel: 5000,
            ..Default::default()
        };
        ccc_core::wd::check_wd(&X86Sc, &asm, &ge, "f", &ge.initial_memory(), &cfg)
            .expect("wd(compiled x86)");
        ccc_core::wd::check_det(&X86Sc, &asm, &ge, "f", &ge.initial_memory(), &cfg)
            .expect("det(compiled x86)");
    }

    #[test]
    fn internal_calls_compile() {
        use ccc_clight::ast::{Expr as E, Function as CF, Stmt};
        let g = CF {
            params: vec!["a".into()],
            vars: vec![],
            body: Stmt::Return(Some(E::add(E::temp("a"), E::Const(1)))),
        };
        let f = CF::simple(Stmt::seq([
            Stmt::Call(Some("t".into()), "g".into(), vec![E::Const(41)]),
            Stmt::Return(Some(E::temp("t"))),
        ]));
        let m = ClightModule::new([("f", f), ("g", g)]);
        let asm = compile(&m).expect("compiles");
        let ge = ccc_core::mem::GlobalEnv::new();
        let (v, _, _) = run_main(&X86Sc, &asm, &ge, "f", &[], 10_000).expect("runs");
        assert_eq!(v, ccc_core::mem::Val::Int(42));
    }

    #[test]
    fn external_calls_surface_at_asm_level() {
        use ccc_clight::ast::{Expr as E, Function as CF, Stmt};
        // Calls to `lock`/`unlock` are not defined in the module: they
        // must remain external calls in the assembly.
        let f = CF::simple(Stmt::seq([
            Stmt::call0("lock", vec![]),
            Stmt::call0("unlock", vec![]),
            Stmt::Return(Some(E::Const(0))),
        ]));
        let m = ClightModule::new([("f", f)]);
        let asm = compile(&m).expect("compiles");
        let names: Vec<_> = asm.funcs["f"]
            .code
            .iter()
            .filter_map(|i| match i {
                ccc_machine::Instr::Call(n, _) => Some(n.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["lock".to_string(), "unlock".to_string()]);
    }
}
