//! Linear: LTL linearized into an instruction list with labels and
//! explicit jumps (the `Linearize` output, cleaned by `CleanupLabels`).

use crate::ltl::Loc;
use crate::ops::{AddrMode, Cmp, Op};
use ccc_core::footprint::Footprint;
use ccc_core::lang::{Event, Lang, LocalStep, StepMsg};
use ccc_core::mem::{Addr, FreeList, GlobalEnv, Memory, Val};
use ccc_machine::Reg as MReg;
use std::collections::BTreeMap;

/// A code label.
pub type Label = u32;

/// One Linear instruction.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// `dst := op(args…)`.
    Op(Op, Vec<Loc>, Loc),
    /// `dst := [mode]`.
    Load(AddrMode<Loc>, Loc),
    /// `[mode] := src`.
    Store(AddrMode<Loc>, Loc),
    /// `dst := f(args…)` (arguments in spill slots).
    Call(Option<Loc>, String, Vec<Loc>),
    /// Tail call.
    Tailcall(String, Vec<Loc>),
    /// Conditional jump.
    CondJump(Cmp, Loc, Loc, Label),
    /// Conditional jump against an immediate.
    CondImmJump(Cmp, Loc, i64, Label),
    /// Unconditional jump.
    Goto(Label),
    /// A label definition.
    Label(Label),
    /// Output.
    Print(Loc),
    /// Return.
    Return(Option<Loc>),
}

/// A Linear function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Function {
    /// Parameter locations (spill slots).
    pub params: Vec<Loc>,
    /// Source-level frame slots.
    pub stack_slots: u64,
    /// Abstract spill slots.
    pub spill_slots: u32,
    /// The instruction list.
    pub code: Vec<Instr>,
}

/// A Linear module.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LinearModule {
    /// Functions by name.
    pub funcs: BTreeMap<String, Function>,
}

/// The Linear core state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LinearCore {
    fun: String,
    pc: usize,
    regs: BTreeMap<MReg, Val>,
    spills: BTreeMap<u32, Val>,
    frame: Option<Addr>,
    stack_slots: u64,
    awaiting: Option<Option<Loc>>,
    /// Set while a tail call is in flight: the next resume returns.
    tail_pending: bool,
}

impl LinearCore {
    fn get(&self, l: Loc) -> Val {
        match l {
            Loc::Reg(r) => self.regs.get(&r).copied().unwrap_or(Val::Undef),
            Loc::Spill(s) => self.spills.get(&s).copied().unwrap_or(Val::Undef),
        }
    }

    fn set(&mut self, l: Loc, v: Val) {
        match l {
            Loc::Reg(r) => {
                self.regs.insert(r, v);
            }
            Loc::Spill(s) => {
                self.spills.insert(s, v);
            }
        }
    }
}

/// The Linear language dispatcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LinearLang;

fn find_label(f: &Function, l: Label) -> Option<usize> {
    f.code
        .iter()
        .position(|i| matches!(i, Instr::Label(x) if *x == l))
}

fn resolve_addr(am: &AddrMode<Loc>, core: &LinearCore, ge: &GlobalEnv) -> Option<Addr> {
    match am {
        AddrMode::Global(g, o) => Some(ge.lookup(g)?.offset(*o)),
        AddrMode::Stack(n) => {
            if *n >= core.stack_slots {
                return None;
            }
            Some(core.frame?.offset(*n))
        }
        AddrMode::Based(l, d) => match core.get(*l) {
            Val::Ptr(a) => Some(Addr(a.0.wrapping_add(*d as u64))),
            _ => None,
        },
    }
}

impl Lang for LinearLang {
    type Module = LinearModule;
    type Core = LinearCore;

    fn name(&self) -> &'static str {
        "Linear"
    }

    fn exports(&self, module: &Self::Module) -> Vec<String> {
        module.funcs.keys().cloned().collect()
    }

    fn init_core(
        &self,
        module: &Self::Module,
        _ge: &GlobalEnv,
        entry: &str,
        args: &[Val],
    ) -> Option<Self::Core> {
        let f = module.funcs.get(entry)?;
        if args.len() > f.params.len() {
            return None;
        }
        let mut core = LinearCore {
            fun: entry.to_string(),
            pc: 0,
            regs: BTreeMap::new(),
            spills: BTreeMap::new(),
            frame: (f.stack_slots == 0).then_some(Addr(0)),
            stack_slots: f.stack_slots,
            awaiting: None,
            tail_pending: false,
        };
        for (&p, &v) in f.params.iter().zip(args) {
            core.set(p, v);
        }
        Some(core)
    }

    fn step(
        &self,
        module: &Self::Module,
        ge: &GlobalEnv,
        flist: &FreeList,
        core: &Self::Core,
        mem: &Memory,
    ) -> Vec<LocalStep<Self::Core>> {
        let tau = |core: LinearCore, mem: Memory, fp: Footprint| {
            vec![LocalStep::Step {
                msg: StepMsg::Tau,
                fp,
                core,
                mem,
            }]
        };
        let abort = || vec![LocalStep::Abort];
        let Some(f) = module.funcs.get(&core.fun) else {
            return abort();
        };
        let mut next = core.clone();
        if next.awaiting.is_some() {
            return abort();
        }
        if next.tail_pending {
            return vec![LocalStep::Ret {
                val: core.get(Loc::Reg(MReg::Eax)),
            }];
        }
        if next.frame.is_none() {
            let base = crate::stmt_sem::first_free_block(flist, mem, next.stack_slots);
            let mut m = mem.clone();
            let mut fp = Footprint::emp();
            for k in 0..next.stack_slots {
                m.alloc(base.offset(k), Val::Undef);
                fp.extend(&Footprint::write(base.offset(k)));
            }
            next.frame = Some(base);
            return tau(next, m, fp);
        }
        let Some(instr) = f.code.get(core.pc) else {
            return abort(); // fell off the end
        };
        next.pc += 1;
        match instr {
            Instr::Label(_) => tau(next, mem.clone(), Footprint::emp()),
            Instr::Op(op, args, dst) => {
                let v = match op {
                    Op::AddrGlobal(g, o) => match ge.lookup(g) {
                        Some(a) => Val::Ptr(a.offset(*o)),
                        None => return abort(),
                    },
                    Op::AddrStack(s) => {
                        if *s >= next.stack_slots {
                            return abort();
                        }
                        Val::Ptr(next.frame.expect("allocated").offset(*s))
                    }
                    other => {
                        let vals: Vec<Val> = args.iter().map(|&l| core.get(l)).collect();
                        match other.eval(&vals) {
                            Some(v) => v,
                            None => return abort(),
                        }
                    }
                };
                next.set(*dst, v);
                tau(next, mem.clone(), Footprint::emp())
            }
            Instr::Load(am, dst) => {
                let Some(a) = resolve_addr(am, core, ge) else {
                    return abort();
                };
                let Some(v) = mem.load(a) else {
                    return abort();
                };
                next.set(*dst, v);
                tau(next, mem.clone(), Footprint::read(a))
            }
            Instr::Store(am, src) => {
                let Some(a) = resolve_addr(am, core, ge) else {
                    return abort();
                };
                let mut m = mem.clone();
                if !m.store(a, core.get(*src)) {
                    return abort();
                }
                tau(next, m, Footprint::write(a))
            }
            Instr::Call(dst, callee, args) => {
                next.awaiting = Some(*dst);
                vec![LocalStep::Call {
                    callee: callee.clone(),
                    args: args.iter().map(|&l| core.get(l)).collect(),
                    cont: next,
                }]
            }
            Instr::Tailcall(callee, args) => {
                next.awaiting = Some(None);
                next.tail_pending = true;
                vec![LocalStep::Call {
                    callee: callee.clone(),
                    args: args.iter().map(|&l| core.get(l)).collect(),
                    cont: next,
                }]
            }
            Instr::CondJump(c, l1, l2, lab) => {
                let Some(t) = c.eval(core.get(*l1), core.get(*l2)) else {
                    return abort();
                };
                if t {
                    let Some(pos) = find_label(f, *lab) else {
                        return abort();
                    };
                    next.pc = pos;
                }
                tau(next, mem.clone(), Footprint::emp())
            }
            Instr::CondImmJump(c, l, i, lab) => {
                let Some(t) = c.eval(core.get(*l), Val::Int(*i)) else {
                    return abort();
                };
                if t {
                    let Some(pos) = find_label(f, *lab) else {
                        return abort();
                    };
                    next.pc = pos;
                }
                tau(next, mem.clone(), Footprint::emp())
            }
            Instr::Goto(lab) => {
                let Some(pos) = find_label(f, *lab) else {
                    return abort();
                };
                next.pc = pos;
                tau(next, mem.clone(), Footprint::emp())
            }
            Instr::Print(l) => match core.get(*l) {
                Val::Int(i) => vec![LocalStep::Step {
                    msg: StepMsg::Event(Event::Print(i)),
                    fp: Footprint::emp(),
                    core: next,
                    mem: mem.clone(),
                }],
                _ => abort(),
            },
            Instr::Return(l) => vec![LocalStep::Ret {
                val: l.map_or(Val::Int(0), |l| core.get(l)),
            }],
        }
    }

    fn resume(&self, _module: &Self::Module, core: &Self::Core, ret: Val) -> Option<Self::Core> {
        let mut next = core.clone();
        let dst = next.awaiting.take()?;
        if next.tail_pending {
            next.set(Loc::Reg(MReg::Eax), ret);
            return Some(next);
        }
        if let Some(l) = dst {
            next.set(l, ret);
        }
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_core::world::run_main;

    #[test]
    fn labels_and_jumps_execute() {
        // ecx := 0; loop: if spill0 == 0 goto end; ecx += spill0;
        // spill0 -= 1; goto loop; end: return ecx
        let f = Function {
            params: vec![Loc::Spill(0)],
            stack_slots: 0,
            spill_slots: 1,
            code: vec![
                Instr::Op(Op::Const(0), vec![], Loc::Reg(MReg::Ecx)),
                Instr::Label(0),
                Instr::CondImmJump(Cmp::Eq, Loc::Spill(0), 0, 1),
                Instr::Op(
                    Op::Add,
                    vec![Loc::Reg(MReg::Ecx), Loc::Spill(0)],
                    Loc::Reg(MReg::Ecx),
                ),
                Instr::Op(Op::AddImm(-1), vec![Loc::Spill(0)], Loc::Spill(0)),
                Instr::Goto(0),
                Instr::Label(1),
                Instr::Return(Some(Loc::Reg(MReg::Ecx))),
            ],
        };
        let m = LinearModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&LinearLang, &m, &ge, "f", &[Val::Int(4)], 1000).expect("runs");
        assert_eq!(v, Val::Int(10));
    }

    #[test]
    fn missing_label_aborts() {
        let f = Function {
            params: vec![],
            stack_slots: 0,
            spill_slots: 0,
            code: vec![Instr::Goto(9)],
        };
        let m = LinearModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let ge = GlobalEnv::new();
        assert!(run_main(&LinearLang, &m, &ge, "f", &[], 100).is_none());
    }
}
