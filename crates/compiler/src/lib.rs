//! # ccc-compiler — the CompCert-shaped compilation pipeline
//!
//! From-scratch reproduction of the CompCert pass structure that
//! CASCompCert verifies (Fig. 11 of the paper):
//!
//! ```text
//! Clight ─Cshmgen/Cminorgen→ Cminor ─Selection→ CminorSel ─RTLgen→ RTL
//!   ─Tailcall→ RTL ─Renumber→ RTL ─Allocation→ LTL ─Tunneling→ LTL
//!   ─Linearize→ Linear ─CleanupLabels→ Linear ─Stacking→ Mach
//!   ─Asmgen→ x86
//! ```
//!
//! Every IR has a **footprint-instrumented interpreter** implementing
//! [`ccc_core::lang::Lang`], so each pass can be validated against the
//! paper's footprint-preserving simulation (`ccc_core::sim`) and by
//! differential execution — the executable substitute for the Coq
//! correctness proofs (Fig. 13).
//!
//! See [`driver`] for the composed pipeline (`CompCert(·)` of §7.2) and
//! per-pass artifacts.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allocation;
pub mod asmgen;
pub mod cache;
pub mod cleanuplabels;
pub mod cminor;
pub mod cminorgen;
pub mod cminorsel;
pub mod constprop;
pub mod driver;
pub mod linear;
pub mod linearize;
pub mod ltl;
pub mod mach;
pub mod mutant;
pub mod ops;
pub mod pass_util;
pub mod pretty;
pub mod renumber;
pub mod rtl;
pub mod rtlgen;
pub mod selection;
pub mod service;
pub mod stacking;
pub mod stmt_sem;
pub mod tailcall;
pub mod tunneling;
pub mod verif;

pub use cache::{
    artifact_digests, module_hash, module_hash_with_version, CacheEntry, CacheError, CacheOutcome,
    CacheStats, CachedCompilation, Certifier, CompileCache, RecheckDepth, TrustingCertifier,
    CACHE_FORMAT_VERSION,
};
pub use driver::{compile, compile_with_artifacts, CompilationArtifacts, CompileError, PASS_NAMES};
pub use mutant::{compile_with_artifacts_mutated, id_trans_drop_assert, id_trans_mutated, Mutant};
pub use service::{CompileReply, CompileService, ServiceCfg};
