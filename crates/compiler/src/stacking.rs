//! The `Stacking` pass: Linear → Mach (Fig. 11) — concrete stack-frame
//! layout and calling-convention expansion.
//!
//! * spill slot `i` becomes frame offset `stack_slots + i` (after the
//!   source-level `AddrStack` slots, whose offsets are preserved);
//! * spill reads/writes become frame loads/stores through the reserved
//!   scratch registers (`%ebx` for first operands and destinations,
//!   `%eax` for second operands — neither is allocatable);
//! * call arguments (always spill slots, by the allocator's convention)
//!   are loaded into the argument registers; results and return values
//!   move through `%eax`.
//!
//! In the paper this is the pass with the largest proof delta (Fig. 13),
//! precisely because of the argument-marshalling it introduces.

use crate::linear::{Function as LinFunction, Instr as LIn, LinearModule};
use crate::ltl::Loc;
use crate::mach::{Function as MFunction, Instr as MIn, MachModule};
use crate::ops::{AddrMode, Op};
use ccc_machine::Reg as MReg;

/// An error during stacking (violated allocator conventions).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StackingError(pub String);

impl std::fmt::Display for StackingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stacking: {}", self.0)
    }
}

impl std::error::Error for StackingError {}

const SCRATCH1: MReg = MReg::Ebx;
const SCRATCH2: MReg = MReg::Eax;

/// Which seeded bug (if any) a stacking run carries — see
/// [`crate::mutant`].
#[derive(Clone, Copy, PartialEq, Eq)]
enum FrameBug {
    /// The real pass.
    Clean,
    /// Spill offsets forget the `stack_slots` base, aliasing the
    /// source-level `AddrStack` slots.
    ForgetBase,
    /// Spill offsets are shifted by one, so the last spill slot lands
    /// outside the declared frame.
    OffByOne,
}

struct Ctx {
    stack_slots: u64,
    code: Vec<MIn>,
    bug: FrameBug,
}

impl Ctx {
    fn off(&self, spill: u32) -> u64 {
        match self.bug {
            FrameBug::Clean => self.stack_slots + spill as u64,
            FrameBug::ForgetBase => spill as u64,
            FrameBug::OffByOne => self.stack_slots + spill as u64 + 1,
        }
    }

    /// Materializes a location into a register, using `scratch` for
    /// spills.
    fn read(&mut self, l: Loc, scratch: MReg) -> MReg {
        match l {
            Loc::Reg(r) => r,
            Loc::Spill(s) => {
                self.code
                    .push(MIn::Load(AddrMode::Stack(self.off(s)), scratch));
                scratch
            }
        }
    }

    /// The register a destination computes into, plus the flush-back
    /// slot for spilled destinations.
    fn dst(&self, l: Loc) -> (MReg, Option<u64>) {
        match l {
            Loc::Reg(r) => (r, None),
            Loc::Spill(s) => (SCRATCH1, Some(self.off(s))),
        }
    }

    fn flush(&mut self, slot: Option<u64>) {
        if let Some(o) = slot {
            self.code.push(MIn::Store(AddrMode::Stack(o), SCRATCH1));
        }
    }

    fn addr_mode(&mut self, am: &AddrMode<Loc>) -> AddrMode<MReg> {
        match am {
            AddrMode::Global(g, o) => AddrMode::Global(g.clone(), *o),
            AddrMode::Stack(n) => AddrMode::Stack(*n),
            AddrMode::Based(l, d) => AddrMode::Based(self.read(*l, SCRATCH2), *d),
        }
    }

    fn marshal_args(&mut self, args: &[Loc]) -> Result<usize, StackingError> {
        if args.len() > MReg::ARGS.len() {
            return Err(StackingError(format!("too many call args: {}", args.len())));
        }
        for (i, &a) in args.iter().enumerate() {
            match a {
                Loc::Spill(s) => self
                    .code
                    .push(MIn::Load(AddrMode::Stack(self.off(s)), MReg::ARGS[i])),
                Loc::Reg(_) => {
                    return Err(StackingError(
                        "call argument in a register (allocator convention violated)".into(),
                    ))
                }
            }
        }
        Ok(args.len())
    }
}

fn op_commutes(op: &Op) -> bool {
    matches!(op, Op::Add | Op::Mul | Op::And | Op::Or | Op::Xor)
}

fn transform_function_with(f: &LinFunction, bug: FrameBug) -> Result<MFunction, StackingError> {
    let mut ctx = Ctx {
        stack_slots: f.stack_slots,
        code: Vec::new(),
        bug,
    };
    // Prologue: store incoming argument registers into the parameter
    // slots.
    if f.params.len() > MReg::ARGS.len() {
        return Err(StackingError("too many parameters".into()));
    }
    for (i, &p) in f.params.iter().enumerate() {
        match p {
            Loc::Spill(s) => {
                let o = ctx.off(s);
                ctx.code.push(MIn::Store(AddrMode::Stack(o), MReg::ARGS[i]));
            }
            Loc::Reg(r) => ctx.code.push(MIn::Op(Op::Move, vec![MReg::ARGS[i]], r)),
        }
    }

    for i in &f.code {
        match i {
            LIn::Label(l) => ctx.code.push(MIn::Label(*l)),
            LIn::Goto(l) => ctx.code.push(MIn::Goto(*l)),
            LIn::Op(op, args, dst) => match args.len() {
                0 => {
                    let (dreg, flush) = ctx.dst(*dst);
                    ctx.code.push(MIn::Op(op.clone(), vec![], dreg));
                    ctx.flush(flush);
                }
                1 => {
                    let a = ctx.read(args[0], SCRATCH2);
                    let (dreg, flush) = ctx.dst(*dst);
                    ctx.code.push(MIn::Op(op.clone(), vec![a], dreg));
                    ctx.flush(flush);
                }
                2 => {
                    let a = ctx.read(args[0], SCRATCH1);
                    let mut b = ctx.read(args[1], SCRATCH2);
                    let (dreg, flush) = ctx.dst(*dst);
                    // Keep Asmgen's two-address invariant: for
                    // non-commutative operators the destination must not
                    // alias the second operand.
                    if !op_commutes(op) && dreg == b {
                        ctx.code.push(MIn::Op(Op::Move, vec![b], SCRATCH2));
                        b = SCRATCH2;
                    }
                    ctx.code.push(MIn::Op(op.clone(), vec![a, b], dreg));
                    ctx.flush(flush);
                }
                n => return Err(StackingError(format!("operator arity {n}"))),
            },
            LIn::Load(am, dst) => {
                let mode = ctx.addr_mode(am);
                let (dreg, flush) = ctx.dst(*dst);
                ctx.code.push(MIn::Load(mode, dreg));
                ctx.flush(flush);
            }
            LIn::Store(am, src) => {
                let sreg = ctx.read(*src, SCRATCH1);
                let mode = ctx.addr_mode(am);
                ctx.code.push(MIn::Store(mode, sreg));
            }
            LIn::Call(dst, callee, args) => {
                let n = ctx.marshal_args(args)?;
                ctx.code.push(MIn::Call(callee.clone(), n));
                match dst {
                    Some(Loc::Reg(r)) => ctx.code.push(MIn::Op(Op::Move, vec![MReg::Eax], *r)),
                    Some(Loc::Spill(s)) => {
                        let o = ctx.off(*s);
                        ctx.code.push(MIn::Store(AddrMode::Stack(o), MReg::Eax));
                    }
                    None => {}
                }
            }
            LIn::Tailcall(callee, args) => {
                let n = ctx.marshal_args(args)?;
                ctx.code.push(MIn::Tailcall(callee.clone(), n));
            }
            LIn::CondJump(c, l1, l2, lab) => {
                let a = ctx.read(*l1, SCRATCH1);
                let b = ctx.read(*l2, SCRATCH2);
                ctx.code.push(MIn::CondJump(*c, a, b, *lab));
            }
            LIn::CondImmJump(c, l, i, lab) => {
                let a = ctx.read(*l, SCRATCH1);
                ctx.code.push(MIn::CondImmJump(*c, a, *i, *lab));
            }
            LIn::Print(l) => {
                let r = ctx.read(*l, SCRATCH1);
                ctx.code.push(MIn::Print(r));
            }
            LIn::Return(l) => {
                match l {
                    Some(Loc::Reg(r)) => ctx.code.push(MIn::Op(Op::Move, vec![*r], MReg::Eax)),
                    Some(Loc::Spill(s)) => {
                        let o = ctx.off(*s);
                        ctx.code.push(MIn::Load(AddrMode::Stack(o), MReg::Eax));
                    }
                    None => ctx.code.push(MIn::Op(Op::Const(0), vec![], MReg::Eax)),
                }
                ctx.code.push(MIn::Return);
            }
        }
    }

    Ok(MFunction {
        frame_slots: f.stack_slots + f.spill_slots as u64,
        arity: f.params.len(),
        code: ctx.code,
    })
}

/// Transforms one function — also the untrusted hint hook of the
/// symbolic translation validator: the re-derived expansion is the
/// predicted Mach code the actual Stacking output is compared against
/// (on top of the independent frame-cover obligations).
///
/// # Errors
///
/// Fails if the allocator's conventions were violated.
pub fn transform_function(f: &LinFunction) -> Result<MFunction, StackingError> {
    transform_function_with(f, FrameBug::Clean)
}

/// Runs frame layout over a module.
///
/// # Errors
///
/// Fails if the allocator's conventions were violated.
pub fn stacking(m: &LinearModule) -> Result<MachModule, StackingError> {
    Ok(MachModule {
        funcs: crate::pass_util::map_functions(&m.funcs, transform_function)?,
    })
}

/// Seeded-bug variant for mutation scoring ([`crate::mutant`]): spill
/// slot `i` is laid out at frame offset `i` instead of
/// `stack_slots + i`, so spills overwrite source-level stack variables.
///
/// # Errors
///
/// Fails if the allocator's conventions were violated, like the real
/// pass.
pub fn stacking_mutated(m: &LinearModule) -> Result<MachModule, StackingError> {
    Ok(MachModule {
        funcs: crate::pass_util::map_functions(&m.funcs, |f| {
            transform_function_with(f, FrameBug::ForgetBase)
        })?,
    })
}

/// Second seeded-bug variant: spill slot `i` is laid out at
/// `stack_slots + i + 1`, so adjacent spills alias and the last one
/// falls outside the declared frame (a frame-cover violation).
///
/// # Errors
///
/// Fails if the allocator's conventions were violated, like the real
/// pass.
pub fn stacking_off_mutated(m: &LinearModule) -> Result<MachModule, StackingError> {
    Ok(MachModule {
        funcs: crate::pass_util::map_functions(&m.funcs, |f| {
            transform_function_with(f, FrameBug::OffByOne)
        })?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mach::MachLang;
    use ccc_core::mem::{GlobalEnv, Val};
    use ccc_core::world::run_main;

    #[test]
    fn spills_become_frame_slots() {
        // f(spill0): spill1 := spill0 + 1; return spill1
        let f = LinFunction {
            params: vec![Loc::Spill(0)],
            stack_slots: 2, // two source slots shift the spill area
            spill_slots: 2,
            code: vec![
                LIn::Op(Op::AddImm(1), vec![Loc::Spill(0)], Loc::Spill(1)),
                LIn::Return(Some(Loc::Spill(1))),
            ],
        };
        let m = LinearModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let mach = stacking(&m).expect("stacks");
        let mf = &mach.funcs["f"];
        assert_eq!(mf.frame_slots, 4);
        // Spill 0 lives at offset 2.
        assert!(mf
            .code
            .iter()
            .any(|i| matches!(i, MIn::Store(AddrMode::Stack(2), _))));
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&MachLang, &mach, &ge, "f", &[Val::Int(41)], 100).expect("runs");
        assert_eq!(v, Val::Int(42));
    }

    #[test]
    fn register_call_arguments_are_rejected() {
        let f = LinFunction {
            params: vec![],
            stack_slots: 0,
            spill_slots: 0,
            code: vec![LIn::Call(None, "g".into(), vec![Loc::Reg(MReg::Ecx)])],
        };
        let m = LinearModule {
            funcs: [("f".to_string(), f)].into(),
        };
        assert!(stacking(&m).is_err());
    }

    #[test]
    fn non_commutative_dst_aliasing_is_resolved() {
        // ecx := 10 - ecx  (dst aliases the second operand).
        let f = LinFunction {
            params: vec![],
            stack_slots: 0,
            spill_slots: 0,
            code: vec![
                LIn::Op(Op::Const(3), vec![], Loc::Reg(MReg::Ecx)),
                LIn::Op(Op::Const(10), vec![], Loc::Reg(MReg::Edx)),
                LIn::Op(
                    Op::Sub,
                    vec![Loc::Reg(MReg::Edx), Loc::Reg(MReg::Ecx)],
                    Loc::Reg(MReg::Ecx),
                ),
                LIn::Return(Some(Loc::Reg(MReg::Ecx))),
            ],
        };
        let m = LinearModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let mach = stacking(&m).expect("stacks");
        // The invariant holds in the output…
        for i in mach.funcs["f"].code.iter() {
            if let MIn::Op(op, args, dst) = i {
                if args.len() == 2 && !op_commutes(op) {
                    assert_ne!(*dst, args[1], "asmgen invariant");
                }
            }
        }
        // …and the value is right.
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&MachLang, &mach, &ge, "f", &[], 100).expect("runs");
        assert_eq!(v, Val::Int(7));
    }
}
