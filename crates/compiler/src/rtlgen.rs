//! The `RTLgen` pass: CminorSel → RTL.
//!
//! Structured statements become a control-flow graph; expression trees
//! are flattened into sequences of three-address instructions over fresh
//! pseudo-registers, preserving CminorSel's left-to-right evaluation
//! order (and hence the order of loads, aborts and footprints).

use crate::cminorsel::{CminorSelModule, Expr as SelExpr};
use crate::ops::{AddrMode, Cmp, Op};
use crate::rtl::{Function as RtlFunction, Instr, Node, PReg, RtlModule};
use crate::stmt_sem::Stmt;
use std::collections::BTreeMap;

struct Builder {
    code: BTreeMap<Node, Instr>,
    next_node: Node,
    next_reg: PReg,
    temps: BTreeMap<String, PReg>,
    /// The seeded bug for mutation scoring: emit `If` branches swapped.
    swap_if: bool,
    /// Second seeded bug: `return e` still evaluates `e` but emits a
    /// bare `Return`, so every non-unit return value becomes 0.
    ret_zero: bool,
}

impl Builder {
    fn add(&mut self, i: Instr) -> Node {
        let n = self.next_node;
        self.next_node += 1;
        self.code.insert(n, i);
        n
    }

    /// Reserves a node id to be filled in later (loop headers).
    fn reserve(&mut self) -> Node {
        let n = self.next_node;
        self.next_node += 1;
        n
    }

    fn fresh(&mut self) -> PReg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn temp(&mut self, t: &str) -> PReg {
        if let Some(&r) = self.temps.get(t) {
            return r;
        }
        let r = self.fresh();
        self.temps.insert(t.to_string(), r);
        r
    }

    /// Emits code computing `e` into `dst`, continuing at `succ`;
    /// returns the entry node.
    fn expr(&mut self, e: &SelExpr, dst: PReg, succ: Node) -> Node {
        match e {
            SelExpr::Temp(t) => {
                let src = self.temp(t);
                self.add(Instr::Op(Op::Move, vec![src], dst, succ))
            }
            SelExpr::Op(op, args) => {
                let regs: Vec<PReg> = args.iter().map(|_| self.fresh()).collect();
                let mut entry = self.add(Instr::Op(op.clone(), regs.clone(), dst, succ));
                for (a, &r) in args.iter().zip(&regs).rev() {
                    entry = self.expr(a, r, entry);
                }
                entry
            }
            SelExpr::Load(am) => match am {
                AddrMode::Global(g, o) => {
                    self.add(Instr::Load(AddrMode::Global(g.clone(), *o), dst, succ))
                }
                AddrMode::Stack(n) => self.add(Instr::Load(AddrMode::Stack(*n), dst, succ)),
                AddrMode::Based(e, d) => {
                    let r = self.fresh();
                    let ld = self.add(Instr::Load(AddrMode::Based(r, *d), dst, succ));
                    self.expr(e, r, ld)
                }
            },
        }
    }

    /// Emits a statement, continuing at `succ`; `loops` is the stack of
    /// `(continue, break)` targets.
    fn stmt(&mut self, s: &Stmt<SelExpr>, succ: Node, loops: &mut Vec<(Node, Node)>) -> Node {
        match s {
            Stmt::Skip => succ,
            Stmt::Set(t, e) => {
                let dst = self.temp(t);
                self.expr(e, dst, succ)
            }
            Stmt::Store(ea, ev) => {
                // Recover the addressing mode from the address expression
                // (the Selection pass emits AddrGlobal/AddrStack/AddImm
                // shapes for it).
                let v = self.fresh();
                match ea {
                    SelExpr::Op(Op::AddrGlobal(g, o), args) if args.is_empty() => {
                        let st = self.add(Instr::Store(AddrMode::Global(g.clone(), *o), v, succ));
                        self.expr(ev, v, st)
                    }
                    SelExpr::Op(Op::AddrStack(n), args) if args.is_empty() => {
                        let st = self.add(Instr::Store(AddrMode::Stack(*n), v, succ));
                        self.expr(ev, v, st)
                    }
                    SelExpr::Op(Op::AddImm(d), args) if args.len() == 1 => {
                        let a = self.fresh();
                        let st = self.add(Instr::Store(AddrMode::Based(a, *d), v, succ));
                        let ve = self.expr(ev, v, st);
                        self.expr(&args[0], a, ve)
                    }
                    other => {
                        let a = self.fresh();
                        let st = self.add(Instr::Store(AddrMode::Based(a, 0), v, succ));
                        let ve = self.expr(ev, v, st);
                        self.expr(other, a, ve)
                    }
                }
            }
            Stmt::Call(dst, f, args) => {
                let dreg = dst.as_ref().map(|t| self.temp(t));
                let regs: Vec<PReg> = args.iter().map(|_| self.fresh()).collect();
                let mut entry = self.add(Instr::Call(dreg, f.clone(), regs.clone(), succ));
                for (a, &r) in args.iter().zip(&regs).rev() {
                    entry = self.expr(a, r, entry);
                }
                entry
            }
            Stmt::Print(e) => {
                let r = self.fresh();
                let p = self.add(Instr::Print(r, succ));
                self.expr(e, r, p)
            }
            Stmt::Seq(ss) => {
                let mut entry = succ;
                for s in ss.iter().rev() {
                    entry = self.stmt(s, entry, loops);
                }
                entry
            }
            Stmt::If(c, a, b) => {
                let then_e = self.stmt(a, succ, loops);
                let else_e = self.stmt(b, succ, loops);
                let r = self.fresh();
                let cond = if self.swap_if {
                    self.add(Instr::CondImm(Cmp::Ne, r, 0, else_e, then_e))
                } else {
                    self.add(Instr::CondImm(Cmp::Ne, r, 0, then_e, else_e))
                };
                self.expr(c, r, cond)
            }
            Stmt::While(c, b) => {
                let head = self.reserve();
                loops.push((head, succ));
                let body_entry = self.stmt(b, head, loops);
                loops.pop();
                let r = self.fresh();
                let cond = self.add(Instr::CondImm(Cmp::Ne, r, 0, body_entry, succ));
                let cond_entry = self.expr(c, r, cond);
                self.code.insert(head, Instr::Nop(cond_entry));
                head
            }
            Stmt::Break => loops.last().map_or(succ, |&(_, brk)| brk),
            Stmt::Continue => loops.last().map_or(succ, |&(cont, _)| cont),
            Stmt::Return(None) => self.add(Instr::Return(None)),
            Stmt::Return(Some(e)) => {
                let r = self.fresh();
                let ret = if self.ret_zero {
                    self.add(Instr::Return(None))
                } else {
                    self.add(Instr::Return(Some(r)))
                };
                self.expr(e, r, ret)
            }
        }
    }
}

fn translate_function_with(
    f: &crate::stmt_sem::Function<SelExpr>,
    swap_if: bool,
    ret_zero: bool,
) -> RtlFunction {
    let mut b = Builder {
        code: BTreeMap::new(),
        next_node: 0,
        next_reg: 0,
        temps: BTreeMap::new(),
        swap_if,
        ret_zero,
    };
    let params: Vec<PReg> = f.params.iter().map(|p| b.temp(p)).collect();
    let ret0 = b.add(Instr::Return(None));
    let mut loops = Vec::new();
    let entry = b.stmt(&f.body, ret0, &mut loops);
    RtlFunction {
        params,
        stack_slots: f.stack_slots,
        entry,
        code: b.code,
    }
}

/// Translates one function. Doubles as the untrusted hint hook of the
/// symbolic translation validator: the re-derived CFG is the predicted
/// shape the actual RTLgen output is matched against, block by block.
pub fn translate_function(f: &crate::stmt_sem::Function<SelExpr>) -> RtlFunction {
    translate_function_with(f, false, false)
}

/// Runs RTL generation over a whole module.
pub fn rtlgen(m: &CminorSelModule) -> RtlModule {
    RtlModule {
        funcs: crate::pass_util::map_functions_total(&m.funcs, translate_function),
    }
}

/// Seeded-bug variant for mutation scoring ([`crate::mutant`]):
/// conditionals branch to the *else* arm when the condition holds.
pub fn rtlgen_mutated(m: &CminorSelModule) -> RtlModule {
    RtlModule {
        funcs: crate::pass_util::map_functions_total(&m.funcs, |f| {
            translate_function_with(f, true, false)
        }),
    }
}

/// Second seeded-bug variant: `return e` evaluates `e` but returns 0.
pub fn rtlgen_ret_mutated(m: &CminorSelModule) -> RtlModule {
    RtlModule {
        funcs: crate::pass_util::map_functions_total(&m.funcs, |f| {
            translate_function_with(f, false, true)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cminorgen::cminorgen;
    use crate::cminorsel::CMINORSEL;
    use crate::rtl::RtlLang;
    use crate::selection::selection;
    use ccc_clight::gen::{gen_module, GenCfg};
    use ccc_clight::ClightLang;
    use ccc_core::mem::{GlobalEnv, Val};
    use ccc_core::world::run_main;

    #[test]
    fn break_and_continue_translate() {
        use ccc_clight::ast::{Binop, Expr as E, Function, Stmt};
        let body = Stmt::seq([
            Stmt::Set("s".into(), E::Const(0)),
            Stmt::Set("i".into(), E::Const(0)),
            Stmt::while_loop(
                E::Const(1),
                Stmt::seq([
                    Stmt::Set("i".into(), E::add(E::temp("i"), E::Const(1))),
                    Stmt::if_else(E::eq(E::temp("i"), E::Const(3)), Stmt::Continue, Stmt::Skip),
                    Stmt::if_else(
                        E::bin(Binop::Lt, E::Const(5), E::temp("i")),
                        Stmt::Break,
                        Stmt::Skip,
                    ),
                    Stmt::Set("s".into(), E::add(E::temp("s"), E::temp("i"))),
                ]),
            ),
            Stmt::Return(Some(E::temp("s"))),
        ]);
        let m = ccc_clight::ClightModule::new([("f", Function::simple(body))]);
        let rtl = rtlgen(&selection(&cminorgen(&m).expect("cminorgen")));
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&RtlLang, &rtl, &ge, "f", &[], 10_000).expect("runs");
        assert_eq!(v, Val::Int(12));
    }

    #[test]
    fn random_programs_agree_through_rtlgen() {
        for seed in 0..40 {
            let (m, ge) = gen_module(seed, &GenCfg::default());
            let sel = selection(&cminorgen(&m).expect("cminorgen"));
            let rtl = rtlgen(&sel);
            let s = run_main(&ClightLang, &m, &ge, "f", &[], 500_000).expect("clight runs");
            let c = run_main(&CMINORSEL, &sel, &ge, "f", &[], 500_000).expect("cminorsel runs");
            let t = run_main(&RtlLang, &rtl, &ge, "f", &[], 500_000).expect("rtl runs");
            assert_eq!(s.0, t.0, "seed {seed}: return values");
            assert_eq!(c.2, t.2, "seed {seed}: events");
            for (a, _) in ge.initial_memory().iter() {
                assert_eq!(c.1.load(a), t.1.load(a), "seed {seed}: global {a}");
            }
        }
    }

    #[test]
    fn rtlgen_output_is_wd_and_det() {
        let (m, ge) = gen_module(3, &GenCfg::default());
        let rtl = rtlgen(&selection(&cminorgen(&m).expect("cminorgen")));
        let cfg = ccc_core::refine::ExploreCfg {
            fuel: 3000,
            ..Default::default()
        };
        ccc_core::wd::check_wd(&RtlLang, &rtl, &ge, "f", &ge.initial_memory(), &cfg)
            .expect("wd(RTL output)");
        ccc_core::wd::check_det(&RtlLang, &rtl, &ge, "f", &ge.initial_memory(), &cfg)
            .expect("det(RTL output)");
    }
}
