//! Machine-level operators shared by the back-end IRs (CminorSel, RTL,
//! LTL, Linear, Mach).
//!
//! The `Selection` pass (§7.2, Fig. 11/12 of the paper) rewrites Cminor
//! operators into these — folding constants into immediate forms and
//! address arithmetic into addressing modes — and every later IR keeps
//! them unchanged until `Asmgen` maps them onto x86 instructions.

use ccc_core::mem::{Addr, Val};

/// Comparison predicates (signed).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

impl Cmp {
    /// Evaluates the predicate on two values; `None` when undefined
    /// (e.g. ordering a pointer against an integer).
    pub fn eval(self, a: Val, b: Val) -> Option<bool> {
        match (self, a, b) {
            (_, Val::Undef, _) | (_, _, Val::Undef) => None,
            (Cmp::Eq, x, y) => Some(x == y),
            (Cmp::Ne, x, y) => Some(x != y),
            (Cmp::Lt, Val::Int(x), Val::Int(y)) => Some(x < y),
            (Cmp::Le, Val::Int(x), Val::Int(y)) => Some(x <= y),
            (Cmp::Gt, Val::Int(x), Val::Int(y)) => Some(x > y),
            (Cmp::Ge, Val::Int(x), Val::Int(y)) => Some(x >= y),
            _ => None,
        }
    }

    /// The swapped predicate (`a ? b` ⇔ `b ?.swap a`).
    pub fn swap(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Eq,
            Cmp::Ne => Cmp::Ne,
            Cmp::Lt => Cmp::Gt,
            Cmp::Le => Cmp::Ge,
            Cmp::Gt => Cmp::Lt,
            Cmp::Ge => Cmp::Le,
        }
    }

    /// The negated predicate.
    pub fn negate(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
            Cmp::Lt => Cmp::Ge,
            Cmp::Le => Cmp::Gt,
            Cmp::Gt => Cmp::Le,
            Cmp::Ge => Cmp::Lt,
        }
    }
}

/// A selected operator, taking its arguments from registers (the arity
/// is implied by the variant).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// 0-ary: an integer constant.
    Const(i64),
    /// 0-ary: the address of a global (plus word offset).
    AddrGlobal(String, u64),
    /// 0-ary: the address of a stack slot of the current frame.
    AddrStack(u64),
    /// 1-ary: identity move.
    Move,
    /// 1-ary: arithmetic negation.
    Neg,
    /// 1-ary: logical not (`e == 0`).
    Not,
    /// 1-ary: add an immediate (also valid on pointers).
    AddImm(i64),
    /// 1-ary: multiply by an immediate.
    MulImm(i64),
    /// 1-ary: compare against an immediate.
    CmpImm(Cmp, i64),
    /// 2-ary: addition (also `ptr + int`).
    Add,
    /// 2-ary: subtraction (also `ptr - int`).
    Sub,
    /// 2-ary: multiplication.
    Mul,
    /// 2-ary: signed division (aborts on division by zero / overflow).
    Div,
    /// 2-ary: bitwise and.
    And,
    /// 2-ary: bitwise or.
    Or,
    /// 2-ary: bitwise xor.
    Xor,
    /// 2-ary: comparison producing 0/1.
    Cmp(Cmp),
}

impl Op {
    /// The number of register arguments the operator consumes.
    pub fn arity(&self) -> usize {
        match self {
            Op::Const(_) | Op::AddrGlobal(..) | Op::AddrStack(_) => 0,
            Op::Move | Op::Neg | Op::Not | Op::AddImm(_) | Op::MulImm(_) | Op::CmpImm(..) => 1,
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::And | Op::Or | Op::Xor | Op::Cmp(_) => 2,
        }
    }

    /// Evaluates the operator. Address operators are resolved by the
    /// caller (they need the global environment / frame base); passing
    /// them here returns `None`.
    pub fn eval(&self, args: &[Val]) -> Option<Val> {
        if args.len() != self.arity() {
            return None;
        }
        let int = |v: Val| v.as_int();
        Some(match self {
            Op::Const(i) => Val::Int(*i),
            Op::AddrGlobal(..) | Op::AddrStack(_) => return None,
            Op::Move => args[0],
            Op::Neg => Val::Int(int(args[0])?.wrapping_neg()),
            Op::Not => Val::Int(i64::from(int(args[0])? == 0)),
            Op::AddImm(i) => match args[0] {
                Val::Int(x) => Val::Int(x.wrapping_add(*i)),
                Val::Ptr(p) => Val::Ptr(Addr(p.0.wrapping_add(*i as u64))),
                Val::Undef => return None,
            },
            Op::MulImm(i) => Val::Int(int(args[0])?.wrapping_mul(*i)),
            Op::CmpImm(c, i) => Val::Int(i64::from(c.eval(args[0], Val::Int(*i))?)),
            Op::Add => match (args[0], args[1]) {
                (Val::Int(x), Val::Int(y)) => Val::Int(x.wrapping_add(y)),
                (Val::Ptr(p), Val::Int(y)) | (Val::Int(y), Val::Ptr(p)) => {
                    Val::Ptr(Addr(p.0.wrapping_add(y as u64)))
                }
                _ => return None,
            },
            Op::Sub => match (args[0], args[1]) {
                (Val::Int(x), Val::Int(y)) => Val::Int(x.wrapping_sub(y)),
                (Val::Ptr(p), Val::Int(y)) => Val::Ptr(Addr(p.0.wrapping_sub(y as u64))),
                _ => return None,
            },
            Op::Mul => Val::Int(int(args[0])?.wrapping_mul(int(args[1])?)),
            Op::Div => {
                let (x, y) = (int(args[0])?, int(args[1])?);
                if y == 0 || (x == i64::MIN && y == -1) {
                    return None;
                }
                Val::Int(x / y)
            }
            Op::And => Val::Int(int(args[0])? & int(args[1])?),
            Op::Or => Val::Int(int(args[0])? | int(args[1])?),
            Op::Xor => Val::Int(int(args[0])? ^ int(args[1])?),
            Op::Cmp(c) => Val::Int(i64::from(c.eval(args[0], args[1])?)),
        })
    }
}

/// An addressing mode of a selected load/store, parameterized by how
/// register arguments are named (expressions in CminorSel, pseudo-regs
/// in RTL, locations in LTL/Linear, machine regs in Mach).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum AddrMode<R> {
    /// A global plus word offset.
    Global(String, u64),
    /// A stack slot of the current frame.
    Stack(u64),
    /// A register holding a pointer, plus displacement.
    Based(R, i64),
}

impl<R> AddrMode<R> {
    /// Maps the register argument.
    pub fn map<S>(self, f: impl FnOnce(R) -> S) -> AddrMode<S> {
        match self {
            AddrMode::Global(g, o) => AddrMode::Global(g, o),
            AddrMode::Stack(s) => AddrMode::Stack(s),
            AddrMode::Based(r, d) => AddrMode::Based(f(r), d),
        }
    }

    /// The register argument, if any.
    pub fn base(&self) -> Option<&R> {
        match self {
            AddrMode::Based(r, _) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_arities_respected() {
        assert_eq!(Op::Const(3).eval(&[]), Some(Val::Int(3)));
        assert_eq!(Op::Const(3).eval(&[Val::Int(0)]), None);
        assert_eq!(Op::Add.eval(&[Val::Int(2), Val::Int(3)]), Some(Val::Int(5)));
        assert_eq!(Op::Add.eval(&[Val::Int(2)]), None);
    }

    #[test]
    fn pointer_arithmetic() {
        let p = Val::Ptr(Addr(100));
        assert_eq!(Op::Add.eval(&[p, Val::Int(4)]), Some(Val::Ptr(Addr(104))));
        assert_eq!(Op::AddImm(-4).eval(&[p]), Some(Val::Ptr(Addr(96))));
        assert_eq!(Op::Mul.eval(&[p, Val::Int(2)]), None);
    }

    #[test]
    fn division_ub() {
        assert_eq!(Op::Div.eval(&[Val::Int(7), Val::Int(2)]), Some(Val::Int(3)));
        assert_eq!(Op::Div.eval(&[Val::Int(1), Val::Int(0)]), None);
        assert_eq!(Op::Div.eval(&[Val::Int(i64::MIN), Val::Int(-1)]), None);
    }

    #[test]
    fn cmp_eval_and_transforms() {
        assert_eq!(Cmp::Lt.eval(Val::Int(1), Val::Int(2)), Some(true));
        assert_eq!(Cmp::Lt.swap().eval(Val::Int(2), Val::Int(1)), Some(true));
        assert_eq!(Cmp::Lt.negate().eval(Val::Int(1), Val::Int(2)), Some(false));
        assert_eq!(Cmp::Lt.eval(Val::Ptr(Addr(1)), Val::Int(2)), None);
        assert_eq!(
            Cmp::Eq.eval(Val::Ptr(Addr(1)), Val::Ptr(Addr(1))),
            Some(true)
        );
    }

    #[test]
    fn undef_propagates_to_none() {
        assert_eq!(Op::Move.eval(&[Val::Undef]), Some(Val::Undef));
        assert_eq!(Op::Neg.eval(&[Val::Undef]), None);
        assert_eq!(Cmp::Eq.eval(Val::Undef, Val::Int(0)), None);
    }
}
