//! Cminor: the first back-end IR (covering CompCert's C#minor and
//! Cminor levels, produced by the combined `Cshmgen`/`Cminorgen` pass).
//!
//! Differences from Clight: there are no addressable local *variables* —
//! the front-end has laid them out as slots of an explicit stack frame —
//! and every memory access is an explicit [`Expr::Load`] or
//! `Store`. Temporaries and structured control flow remain; the
//! statement layer and interpreter are shared with CminorSel (see
//! [`crate::stmt_sem`]).

use crate::stmt_sem::{EvalCtx, ExprEval, StmtLang, StmtModule};
use ccc_clight::ast::{Binop, Unop};
use ccc_clight::sem::{eval_binop, eval_unop};
use ccc_core::footprint::Footprint;
use ccc_core::mem::Val;

/// Cminor expressions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// An integer literal.
    Const(i64),
    /// A temporary read.
    Temp(String),
    /// The address of a global.
    AddrGlobal(String),
    /// The address of stack slot `n` of the current frame.
    AddrStack(u64),
    /// An explicit memory load.
    Load(Box<Expr>),
    /// A unary operation (Clight's operator set).
    Unop(Unop, Box<Expr>),
    /// A binary operation (Clight's operator set).
    Binop(Binop, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A load from an address expression.
    pub fn load(e: Expr) -> Expr {
        Expr::Load(Box::new(e))
    }

    /// A temporary read.
    pub fn temp(name: impl Into<String>) -> Expr {
        Expr::Temp(name.into())
    }

    /// A binary operation.
    pub fn bin(op: Binop, a: Expr, b: Expr) -> Expr {
        Expr::Binop(op, Box::new(a), Box::new(b))
    }
}

impl ExprEval for Expr {
    const LANG_NAME: &'static str = "Cminor";

    fn eval(&self, ctx: &EvalCtx<'_>) -> Option<(Val, Footprint)> {
        match self {
            Expr::Const(i) => Some((Val::Int(*i), Footprint::emp())),
            Expr::Temp(t) => Some((ctx.temp(t), Footprint::emp())),
            Expr::AddrGlobal(g) => Some((Val::Ptr(ctx.ge.lookup(g)?), Footprint::emp())),
            Expr::AddrStack(n) => Some((Val::Ptr(ctx.slot_addr(*n)?), Footprint::emp())),
            Expr::Load(a) => {
                let (av, mut fp) = a.eval(ctx)?;
                let Val::Ptr(addr) = av else {
                    return None;
                };
                let v = ctx.load(addr, &mut fp)?;
                Some((v, fp))
            }
            Expr::Unop(op, e) => {
                let (v, fp) = e.eval(ctx)?;
                Some((eval_unop(*op, v)?, fp))
            }
            Expr::Binop(op, a, b) => {
                let (va, fpa) = a.eval(ctx)?;
                let (vb, fpb) = b.eval(ctx)?;
                Some((eval_binop(*op, va, vb)?, fpa.union(&fpb)))
            }
        }
    }
}

/// Cminor statements.
pub type Stmt = crate::stmt_sem::Stmt<Expr>;
/// Cminor functions.
pub type Function = crate::stmt_sem::Function<Expr>;
/// Cminor modules.
pub type CminorModule = StmtModule<Expr>;
/// The Cminor language dispatcher.
pub type CminorLang = StmtLang<Expr>;

/// The Cminor dispatcher value.
pub const CMINOR: CminorLang = StmtLang::new();

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_core::mem::{GlobalEnv, Val};
    use ccc_core::refine::ExploreCfg;
    use ccc_core::wd::{check_det, check_wd};
    use ccc_core::world::run_main;

    #[test]
    fn stack_slots_roundtrip() {
        // f() { [slot0] := 5; t := [slot0] + 1; return t; }
        let body = Stmt::seq([
            Stmt::Store(Expr::AddrStack(0), Expr::Const(5)),
            Stmt::Set(
                "t".into(),
                Expr::bin(Binop::Add, Expr::load(Expr::AddrStack(0)), Expr::Const(1)),
            ),
            Stmt::Return(Some(Expr::temp("t"))),
        ]);
        let m = CminorModule::new([(
            "f",
            Function {
                params: vec![],
                stack_slots: 1,
                body,
            },
        )]);
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&CMINOR, &m, &ge, "f", &[], 1000).expect("runs");
        assert_eq!(v, Val::Int(6));
    }

    #[test]
    fn out_of_range_slot_aborts() {
        let body = Stmt::Store(Expr::AddrStack(3), Expr::Const(1));
        let m = CminorModule::new([(
            "f",
            Function {
                params: vec![],
                stack_slots: 1,
                body,
            },
        )]);
        let ge = GlobalEnv::new();
        assert!(run_main(&CMINOR, &m, &ge, "f", &[], 100).is_none());
    }

    #[test]
    fn cminor_is_well_defined_and_deterministic() {
        let mut ge = GlobalEnv::new();
        ge.define("x", Val::Int(2));
        let body = Stmt::seq([
            Stmt::Store(Expr::AddrStack(0), Expr::load(Expr::AddrGlobal("x".into()))),
            Stmt::Store(
                Expr::AddrGlobal("x".into()),
                Expr::bin(Binop::Add, Expr::load(Expr::AddrStack(0)), Expr::Const(1)),
            ),
            Stmt::Print(Expr::load(Expr::AddrGlobal("x".into()))),
            Stmt::Return(Some(Expr::load(Expr::AddrStack(0)))),
        ]);
        let m = CminorModule::new([(
            "f",
            Function {
                params: vec![],
                stack_slots: 1,
                body,
            },
        )]);
        let cfg = ExploreCfg::default();
        check_wd(&CMINOR, &m, &ge, "f", &ge.initial_memory(), &cfg).expect("wd(Cminor)");
        check_det(&CMINOR, &m, &ge, "f", &ge.initial_memory(), &cfg).expect("det(Cminor)");
    }
}
