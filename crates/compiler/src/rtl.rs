//! RTL: a control-flow graph of three-address instructions over
//! infinitely many pseudo-registers — the IR where CompCert (and this
//! pipeline) performs its optimizations.
//!
//! Unlike the statement IRs, every transition executes exactly one CFG
//! instruction, so footprints are per-instruction; calls, returns and
//! prints read only registers and hence carry empty footprints without
//! any staging.

use crate::ops::{AddrMode, Cmp, Op};
use ccc_core::footprint::Footprint;
use ccc_core::lang::{Event, Lang, LocalStep, StepMsg};
use ccc_core::mem::{Addr, FreeList, GlobalEnv, Memory, Val};
use std::collections::BTreeMap;

/// A CFG node id.
pub type Node = u32;
/// A pseudo-register.
pub type PReg = u32;

/// One RTL instruction; each carries its successor node(s).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// No-op, jump to successor.
    Nop(Node),
    /// `dst := op(args…)`.
    Op(Op, Vec<PReg>, PReg, Node),
    /// `dst := [mode]`.
    Load(AddrMode<PReg>, PReg, Node),
    /// `[mode] := src`.
    Store(AddrMode<PReg>, PReg, Node),
    /// `dst := f(args…)`.
    Call(Option<PReg>, String, Vec<PReg>, Node),
    /// Tail call: `return f(args…)` without growing this activation.
    Tailcall(String, Vec<PReg>),
    /// Two-way branch on `r1 ? r2`.
    Cond(Cmp, PReg, PReg, Node, Node),
    /// Two-way branch on `r ? imm`.
    CondImm(Cmp, PReg, i64, Node, Node),
    /// Output `r`, continue.
    Print(PReg, Node),
    /// Return (`None` returns 0).
    Return(Option<PReg>),
}

impl Instr {
    /// The successor nodes of this instruction.
    pub fn succs(&self) -> Vec<Node> {
        match self {
            Instr::Nop(n)
            | Instr::Op(.., n)
            | Instr::Load(.., n)
            | Instr::Store(.., n)
            | Instr::Call(.., n)
            | Instr::Print(_, n) => vec![*n],
            Instr::Cond(.., a, b) | Instr::CondImm(.., a, b) => vec![*a, *b],
            Instr::Tailcall(..) | Instr::Return(_) => vec![],
        }
    }

    /// Rewrites every successor through `f`.
    pub fn map_succs(&mut self, f: impl Fn(Node) -> Node) {
        match self {
            Instr::Nop(n)
            | Instr::Op(.., n)
            | Instr::Load(.., n)
            | Instr::Store(.., n)
            | Instr::Call(.., n)
            | Instr::Print(_, n) => *n = f(*n),
            Instr::Cond(.., a, b) | Instr::CondImm(.., a, b) => {
                *a = f(*a);
                *b = f(*b);
            }
            Instr::Tailcall(..) | Instr::Return(_) => {}
        }
    }

    /// The registers this instruction reads.
    pub fn uses(&self) -> Vec<PReg> {
        let mut out = Vec::new();
        match self {
            Instr::Nop(_) | Instr::Return(None) => {}
            Instr::Op(_, args, ..) => out.extend(args),
            Instr::Load(am, ..) => out.extend(am.base().copied()),
            Instr::Store(am, src, _) => {
                out.extend(am.base().copied());
                out.push(*src);
            }
            Instr::Call(_, _, args, _) | Instr::Tailcall(_, args) => out.extend(args),
            Instr::Cond(_, a, b, ..) => out.extend([*a, *b]),
            Instr::CondImm(_, r, ..) => out.push(*r),
            Instr::Print(r, _) => out.push(*r),
            Instr::Return(Some(r)) => out.push(*r),
        }
        out
    }

    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<PReg> {
        match self {
            Instr::Op(.., dst, _) => Some(*dst),
            Instr::Load(_, dst, _) => Some(*dst),
            Instr::Call(dst, ..) => *dst,
            _ => None,
        }
    }
}

/// An RTL function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Function {
    /// Parameter registers.
    pub params: Vec<PReg>,
    /// Frame size in words.
    pub stack_slots: u64,
    /// The entry node.
    pub entry: Node,
    /// The graph.
    pub code: BTreeMap<Node, Instr>,
}

/// An RTL module.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RtlModule {
    /// Functions by name.
    pub funcs: BTreeMap<String, Function>,
}

/// The RTL core state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RtlCore {
    fun: String,
    pc: Node,
    regs: BTreeMap<PReg, Val>,
    frame: Option<Addr>,
    stack_slots: u64,
    /// `Some(dst)` while waiting for an external call's result.
    awaiting: Option<Option<PReg>>,
}

impl RtlCore {
    fn reg(&self, r: PReg) -> Val {
        self.regs.get(&r).copied().unwrap_or(Val::Undef)
    }
}

/// The RTL language dispatcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RtlLang;

fn resolve_addr(am: &AddrMode<PReg>, core: &RtlCore, ge: &GlobalEnv) -> Option<Addr> {
    match am {
        AddrMode::Global(g, o) => Some(ge.lookup(g)?.offset(*o)),
        AddrMode::Stack(n) => {
            if *n >= core.stack_slots {
                return None;
            }
            Some(core.frame?.offset(*n))
        }
        AddrMode::Based(r, d) => match core.reg(*r) {
            Val::Ptr(a) => Some(Addr(a.0.wrapping_add(*d as u64))),
            _ => None,
        },
    }
}

impl Lang for RtlLang {
    type Module = RtlModule;
    type Core = RtlCore;

    fn name(&self) -> &'static str {
        "RTL"
    }

    fn exports(&self, module: &Self::Module) -> Vec<String> {
        module.funcs.keys().cloned().collect()
    }

    fn init_core(
        &self,
        module: &Self::Module,
        _ge: &GlobalEnv,
        entry: &str,
        args: &[Val],
    ) -> Option<Self::Core> {
        let f = module.funcs.get(entry)?;
        if args.len() > f.params.len() {
            return None;
        }
        let mut regs = BTreeMap::new();
        for (&p, &v) in f.params.iter().zip(args) {
            regs.insert(p, v);
        }
        Some(RtlCore {
            fun: entry.to_string(),
            pc: f.entry,
            regs,
            frame: (f.stack_slots == 0).then_some(Addr(0)),
            stack_slots: f.stack_slots,
            awaiting: None,
        })
    }

    fn step(
        &self,
        module: &Self::Module,
        ge: &GlobalEnv,
        flist: &FreeList,
        core: &Self::Core,
        mem: &Memory,
    ) -> Vec<LocalStep<Self::Core>> {
        let tau = |core: RtlCore, mem: Memory, fp: Footprint| {
            vec![LocalStep::Step {
                msg: StepMsg::Tau,
                fp,
                core,
                mem,
            }]
        };
        let abort = || vec![LocalStep::Abort];
        let Some(f) = module.funcs.get(&core.fun) else {
            return abort();
        };
        let mut next = core.clone();
        if next.awaiting.is_some() {
            return abort(); // a call result arrived without resume
        }
        if next.pc == TAILCALL_RET_NODE {
            // A completed tail call: forward the callee's value.
            return vec![LocalStep::Ret {
                val: core.reg(TAILCALL_RET_REG),
            }];
        }

        // Pending frame allocation is the first step.
        if next.frame.is_none() {
            let base = crate::stmt_sem::first_free_block(flist, mem, next.stack_slots);
            let mut m = mem.clone();
            let mut fp = Footprint::emp();
            for k in 0..next.stack_slots {
                m.alloc(base.offset(k), Val::Undef);
                fp.extend(&Footprint::write(base.offset(k)));
            }
            next.frame = Some(base);
            return tau(next, m, fp);
        }

        let Some(instr) = f.code.get(&core.pc) else {
            return abort();
        };
        match instr {
            Instr::Nop(n) => {
                next.pc = *n;
                tau(next, mem.clone(), Footprint::emp())
            }
            Instr::Op(op, args, dst, n) => {
                let v = match op {
                    Op::AddrGlobal(g, o) => match ge.lookup(g) {
                        Some(a) => Val::Ptr(a.offset(*o)),
                        None => return abort(),
                    },
                    Op::AddrStack(s) => {
                        if *s >= next.stack_slots {
                            return abort();
                        }
                        Val::Ptr(next.frame.expect("allocated").offset(*s))
                    }
                    other => {
                        let vals: Vec<Val> = args.iter().map(|&r| core.reg(r)).collect();
                        match other.eval(&vals) {
                            Some(v) => v,
                            None => return abort(),
                        }
                    }
                };
                next.regs.insert(*dst, v);
                next.pc = *n;
                tau(next, mem.clone(), Footprint::emp())
            }
            Instr::Load(am, dst, n) => {
                let Some(a) = resolve_addr(am, core, ge) else {
                    return abort();
                };
                let Some(v) = mem.load(a) else {
                    return abort();
                };
                next.regs.insert(*dst, v);
                next.pc = *n;
                tau(next, mem.clone(), Footprint::read(a))
            }
            Instr::Store(am, src, n) => {
                let Some(a) = resolve_addr(am, core, ge) else {
                    return abort();
                };
                let mut m = mem.clone();
                if !m.store(a, core.reg(*src)) {
                    return abort();
                }
                next.pc = *n;
                tau(next, m, Footprint::write(a))
            }
            Instr::Call(dst, callee, args, n) => {
                next.pc = *n;
                next.awaiting = Some(*dst);
                vec![LocalStep::Call {
                    callee: callee.clone(),
                    args: args.iter().map(|&r| core.reg(r)).collect(),
                    cont: next,
                }]
            }
            Instr::Tailcall(callee, args) => {
                // A tail call transfers control without a continuation:
                // the callee's return value becomes ours. Modelled as a
                // call whose continuation immediately returns.
                next.awaiting = Some(None);
                next.pc = TAILCALL_RET_NODE;
                vec![LocalStep::Call {
                    callee: callee.clone(),
                    args: args.iter().map(|&r| core.reg(r)).collect(),
                    cont: next,
                }]
            }
            Instr::Cond(c, r1, r2, a, b) => {
                let Some(t) = c.eval(core.reg(*r1), core.reg(*r2)) else {
                    return abort();
                };
                next.pc = if t { *a } else { *b };
                tau(next, mem.clone(), Footprint::emp())
            }
            Instr::CondImm(c, r, i, a, b) => {
                let Some(t) = c.eval(core.reg(*r), Val::Int(*i)) else {
                    return abort();
                };
                next.pc = if t { *a } else { *b };
                tau(next, mem.clone(), Footprint::emp())
            }
            Instr::Print(r, n) => match core.reg(*r) {
                Val::Int(i) => {
                    next.pc = *n;
                    vec![LocalStep::Step {
                        msg: StepMsg::Event(Event::Print(i)),
                        fp: Footprint::emp(),
                        core: next,
                        mem: mem.clone(),
                    }]
                }
                _ => abort(),
            },
            Instr::Return(r) => vec![LocalStep::Ret {
                val: r.map_or(Val::Int(0), |r| core.reg(r)),
            }],
        }
    }

    fn resume(&self, module: &Self::Module, core: &Self::Core, ret: Val) -> Option<Self::Core> {
        let mut next = core.clone();
        let dst = next.awaiting.take()?;
        if next.pc == TAILCALL_RET_NODE {
            // Tail call: forward the value out of this activation. The
            // caller of `resume` will step us next; make that step a
            // return of `ret`.
            next.regs.insert(TAILCALL_RET_REG, ret);
            return Some(next);
        }
        if let Some(r) = dst {
            next.regs.insert(r, ret);
        }
        let _ = module;
        Some(next)
    }
}

/// The reserved node a tail call "returns through" (see
/// [`Instr::Tailcall`]); functions must not use it. The interpreter
/// fabricates a `Return` of [`TAILCALL_RET_REG`] there.
pub const TAILCALL_RET_NODE: Node = u32::MAX;
/// The reserved register holding a tail call's forwarded result.
pub const TAILCALL_RET_REG: PReg = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_core::world::run_main;

    fn module_of(f: Function) -> RtlModule {
        RtlModule {
            funcs: [("f".to_string(), f)].into(),
        }
    }

    #[test]
    fn straightline_ops() {
        // r1 := 6; r2 := r1 * 7; return r2
        let code = BTreeMap::from([
            (0, Instr::Op(Op::Const(6), vec![], 1, 1)),
            (1, Instr::Op(Op::MulImm(7), vec![1], 2, 2)),
            (2, Instr::Return(Some(2))),
        ]);
        let m = module_of(Function {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code,
        });
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&RtlLang, &m, &ge, "f", &[], 100).expect("runs");
        assert_eq!(v, Val::Int(42));
    }

    #[test]
    fn loop_via_cond() {
        // sum 1..=n (param r0): r1 := 0; while (r0 != 0) { r1 += r0; r0 -= 1 }
        let code = BTreeMap::from([
            (0, Instr::Op(Op::Const(0), vec![], 1, 1)),
            (1, Instr::CondImm(Cmp::Ne, 0, 0, 2, 4)),
            (2, Instr::Op(Op::Add, vec![1, 0], 1, 3)),
            (3, Instr::Op(Op::AddImm(-1), vec![0], 0, 1)),
            (4, Instr::Return(Some(1))),
        ]);
        let m = module_of(Function {
            params: vec![0],
            stack_slots: 0,
            entry: 0,
            code,
        });
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&RtlLang, &m, &ge, "f", &[Val::Int(5)], 1000).expect("runs");
        assert_eq!(v, Val::Int(15));
    }

    #[test]
    fn loads_and_stores_report_footprints() {
        let mut ge = GlobalEnv::new();
        ge.define("x", Val::Int(3));
        let code = BTreeMap::from([
            (0, Instr::Load(AddrMode::Global("x".into(), 0), 1, 1)),
            (1, Instr::Op(Op::AddImm(1), vec![1], 2, 2)),
            (2, Instr::Store(AddrMode::Global("x".into(), 0), 2, 3)),
            (3, Instr::Return(Some(2))),
        ]);
        let m = module_of(Function {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code,
        });
        let lang = RtlLang;
        let fl = FreeList::for_thread(0);
        let mut core = lang.init_core(&m, &ge, "f", &[]).expect("init");
        let mut mem = ge.initial_memory();
        let x = ge.lookup("x").unwrap();
        let mut saw_read = false;
        let mut saw_write = false;
        loop {
            match lang
                .step(&m, &ge, &fl, &core, &mem)
                .into_iter()
                .next()
                .expect("steps")
            {
                LocalStep::Step {
                    fp,
                    core: c,
                    mem: m2,
                    ..
                } => {
                    saw_read |= fp.rs.contains(&x);
                    saw_write |= fp.ws.contains(&x);
                    core = c;
                    mem = m2;
                }
                LocalStep::Ret { val } => {
                    assert_eq!(val, Val::Int(4));
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_read && saw_write);
    }

    #[test]
    fn rtl_is_well_defined_and_deterministic() {
        let mut ge = GlobalEnv::new();
        ge.define("x", Val::Int(1));
        let code = BTreeMap::from([
            (0, Instr::Op(Op::AddrStack(0), vec![], 1, 1)),
            (1, Instr::Load(AddrMode::Global("x".into(), 0), 2, 2)),
            (2, Instr::Store(AddrMode::Based(1, 0), 2, 3)),
            (3, Instr::Load(AddrMode::Stack(0), 3, 4)),
            (4, Instr::Print(3, 5)),
            (5, Instr::Return(Some(3))),
        ]);
        let m = module_of(Function {
            params: vec![],
            stack_slots: 1,
            entry: 0,
            code,
        });
        let cfg = ccc_core::refine::ExploreCfg::default();
        ccc_core::wd::check_wd(&RtlLang, &m, &ge, "f", &ge.initial_memory(), &cfg)
            .expect("wd(RTL)");
        ccc_core::wd::check_det(&RtlLang, &m, &ge, "f", &ge.initial_memory(), &cfg)
            .expect("det(RTL)");
    }
}
