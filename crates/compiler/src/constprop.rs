//! Constant propagation on RTL — an *extension* pass beyond the four
//! optimizations the paper verifies ("proving other optimization passes
//! would be similar and is left as future work", §7.2 / §8).
//!
//! A forward dataflow analysis computes, per CFG node, which
//! pseudo-registers surely hold which integer constants; the rewrite
//! then folds fully-constant operators, strengthens register operands
//! into immediate forms, and folds decided conditional branches.
//!
//! The pass only ever *removes* register evaluations — loads, stores
//! and calls are untouched — so footprints can only shrink, exactly the
//! direction the footprint-preserving simulation (§4) permits. Division
//! is folded only when defined, preserving abort behaviour.

use crate::ops::Op;
use crate::rtl::{Function, Instr, Node, PReg, RtlModule};
use ccc_core::mem::Val;
use std::collections::BTreeMap;

/// The abstract value of a register: a known integer constant or
/// unknown. (Pointers are never tracked — their values are runtime
/// dependent.)
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AVal {
    Const(i64),
    Top,
}

type Env = BTreeMap<PReg, AVal>;

fn lookup(env: &Env, r: PReg) -> AVal {
    env.get(&r).copied().unwrap_or(AVal::Top)
}

fn join(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (&r, &va) in a {
        if let AVal::Const(ca) = va {
            if lookup(b, r) == AVal::Const(ca) {
                out.insert(r, va);
            }
        }
    }
    out
}

/// Abstract evaluation of an operator over known constants.
fn abstract_op(op: &Op, args: &[AVal]) -> AVal {
    let consts: Option<Vec<Val>> = args
        .iter()
        .map(|a| match a {
            AVal::Const(i) => Some(Val::Int(*i)),
            AVal::Top => None,
        })
        .collect();
    match (op, consts) {
        (Op::Const(i), _) => AVal::Const(*i),
        (Op::AddrGlobal(..) | Op::AddrStack(_), _) => AVal::Top,
        (op, Some(vals)) => match op.eval(&vals) {
            Some(Val::Int(i)) => AVal::Const(i),
            _ => AVal::Top, // undefined (e.g. division by zero): keep
        },
        _ => AVal::Top,
    }
}

fn transfer(i: &Instr, env: &Env) -> Env {
    let mut out = env.clone();
    match i {
        Instr::Op(op, args, dst, _) => {
            let avs: Vec<AVal> = args.iter().map(|&r| lookup(env, r)).collect();
            match abstract_op(op, &avs) {
                AVal::Const(c) => {
                    out.insert(*dst, AVal::Const(c));
                }
                AVal::Top => {
                    out.remove(dst);
                }
            }
        }
        Instr::Load(_, dst, _) => {
            out.remove(dst);
        }
        Instr::Call(Some(dst), ..) => {
            out.remove(dst);
        }
        _ => {}
    }
    out
}

/// Per-node input environments by forward fixpoint iteration.
fn analyze(f: &Function) -> BTreeMap<Node, Env> {
    let mut inputs: BTreeMap<Node, Env> = BTreeMap::new();
    inputs.insert(f.entry, Env::new());
    let mut work: Vec<Node> = vec![f.entry];
    while let Some(n) = work.pop() {
        let Some(instr) = f.code.get(&n) else {
            continue;
        };
        let env_in = inputs.get(&n).cloned().unwrap_or_default();
        let env_out = transfer(instr, &env_in);
        for s in instr.succs() {
            let merged = match inputs.get(&s) {
                Some(prev) => join(prev, &env_out),
                None => env_out.clone(),
            };
            if inputs.get(&s) != Some(&merged) {
                inputs.insert(s, merged);
                work.push(s);
            }
        }
    }
    inputs
}

/// The per-node constant facts the rewrite consumes: for every node the
/// analysis reaches, the registers known to hold a specific integer on
/// entry. Exposed as the structural hint of the `ccc-analysis`
/// translation validator, which independently re-checks the facts'
/// inductiveness before seeding its symbolic states with them.
pub fn constant_facts(f: &Function) -> BTreeMap<Node, BTreeMap<PReg, i64>> {
    analyze(f)
        .into_iter()
        .map(|(n, env)| {
            let facts = env
                .into_iter()
                .filter_map(|(r, v)| match v {
                    AVal::Const(c) => Some((r, c)),
                    AVal::Top => None,
                })
                .collect();
            (n, facts)
        })
        .collect()
}

fn rewrite(i: &Instr, env: &Env, mx: bool) -> Instr {
    match i {
        Instr::Op(op, args, dst, n) => {
            let avs: Vec<AVal> = args.iter().map(|&r| lookup(env, r)).collect();
            // Full fold.
            if let AVal::Const(c) = abstract_op(op, &avs) {
                return Instr::Op(Op::Const(c), vec![], *dst, *n);
            }
            // Strength reduction of 2-ary ops with one known operand.
            if args.len() == 2 {
                let (a, b) = (args[0], args[1]);
                match (op, lookup(env, a), lookup(env, b)) {
                    (Op::Add, AVal::Const(c), _) => {
                        return Instr::Op(Op::AddImm(c), vec![b], *dst, *n)
                    }
                    (Op::Add, _, AVal::Const(c)) => {
                        return Instr::Op(Op::AddImm(c), vec![a], *dst, *n)
                    }
                    (Op::Sub, _, AVal::Const(c)) if c != i64::MIN => {
                        return Instr::Op(Op::AddImm(-c), vec![a], *dst, *n)
                    }
                    (Op::Mul, AVal::Const(c), _) => {
                        return Instr::Op(Op::MulImm(c), vec![b], *dst, *n)
                    }
                    (Op::Mul, _, AVal::Const(c)) => {
                        return Instr::Op(Op::MulImm(c), vec![a], *dst, *n)
                    }
                    (Op::Cmp(cc), _, AVal::Const(c)) => {
                        return Instr::Op(Op::CmpImm(*cc, c), vec![a], *dst, *n)
                    }
                    (Op::Cmp(cc), AVal::Const(c), _) => {
                        return Instr::Op(Op::CmpImm(cc.swap(), c), vec![b], *dst, *n)
                    }
                    _ => {}
                }
            }
            i.clone()
        }
        // Branch folding on decided conditions.
        Instr::Cond(c, r1, r2, t, e) => {
            if let (AVal::Const(a), AVal::Const(b)) = (lookup(env, *r1), lookup(env, *r2)) {
                if let Some(taken) = c.eval(Val::Int(a), Val::Int(b)) {
                    // `mx` is the seeded bug for mutation scoring:
                    // decided branches fold to the *wrong* arm.
                    return Instr::Nop(if taken != mx { *t } else { *e });
                }
            }
            if let AVal::Const(b) = lookup(env, *r2) {
                return Instr::CondImm(*c, *r1, b, *t, *e);
            }
            if let AVal::Const(a) = lookup(env, *r1) {
                return Instr::CondImm(c.swap(), *r2, a, *t, *e);
            }
            i.clone()
        }
        Instr::CondImm(c, r, imm, t, e) => {
            if let AVal::Const(a) = lookup(env, *r) {
                if let Some(taken) = c.eval(Val::Int(a), Val::Int(*imm)) {
                    return Instr::Nop(if taken != mx { *t } else { *e });
                }
            }
            i.clone()
        }
        other => other.clone(),
    }
}

fn transform_function_with(f: &Function, mx: bool) -> Function {
    let inputs = analyze(f);
    let mut code = BTreeMap::new();
    for (&n, i) in &f.code {
        match inputs.get(&n) {
            Some(env) => code.insert(n, rewrite(i, env, mx)),
            None => code.insert(n, i.clone()), // unreachable node: keep
        };
    }
    Function {
        params: f.params.clone(),
        stack_slots: f.stack_slots,
        entry: f.entry,
        code,
    }
}

/// Runs constant propagation over a module.
pub fn constprop(m: &RtlModule) -> RtlModule {
    RtlModule {
        funcs: m
            .funcs
            .iter()
            .map(|(n, f)| (n.clone(), transform_function_with(f, false)))
            .collect(),
    }
}

/// Seeded-bug variant for mutation scoring ([`crate::mutant`]): branch
/// folding on decided conditions picks the arm the condition does *not*
/// take.
pub fn constprop_mutated(m: &RtlModule) -> RtlModule {
    RtlModule {
        funcs: m
            .funcs
            .iter()
            .map(|(n, f)| (n.clone(), transform_function_with(f, true)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Cmp;
    use crate::rtl::RtlLang;
    use ccc_core::mem::{GlobalEnv, Val};
    use ccc_core::world::run_main;

    fn module_of(f: Function) -> RtlModule {
        RtlModule {
            funcs: [("f".to_string(), f)].into(),
        }
    }

    #[test]
    fn straightline_constants_fold() {
        // r1 := 6; r2 := r1 * 7; return r2 — becomes r2 := 42.
        let f = Function {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::Const(6), vec![], 1, 1)),
                (1, Instr::Op(Op::MulImm(7), vec![1], 2, 2)),
                (2, Instr::Return(Some(2))),
            ]),
        };
        let m = constprop(&module_of(f));
        assert!(matches!(
            m.funcs["f"].code.get(&1),
            Some(Instr::Op(Op::Const(42), ..))
        ));
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&RtlLang, &m, &ge, "f", &[], 100).expect("runs");
        assert_eq!(v, Val::Int(42));
    }

    #[test]
    fn decided_branches_fold_to_nops() {
        let f = Function {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::Const(1), vec![], 1, 1)),
                (1, Instr::CondImm(Cmp::Eq, 1, 1, 2, 3)),
                (2, Instr::Return(Some(1))),
                (3, Instr::Op(Op::Const(99), vec![], 1, 2)),
            ]),
        };
        let m = constprop(&module_of(f));
        assert!(matches!(m.funcs["f"].code.get(&1), Some(Instr::Nop(2))));
    }

    #[test]
    fn join_loses_disagreeing_constants() {
        // if (param) r := 1 else r := 2; return r — r unknown at merge.
        let f = Function {
            params: vec![0],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::CondImm(Cmp::Ne, 0, 0, 1, 2)),
                (1, Instr::Op(Op::Const(1), vec![], 1, 3)),
                (2, Instr::Op(Op::Const(2), vec![], 1, 3)),
                (3, Instr::Return(Some(1))),
            ]),
        };
        let m = constprop(&module_of(f));
        // Node 3 unchanged; both constants kept.
        assert!(matches!(
            m.funcs["f"].code.get(&3),
            Some(Instr::Return(Some(1)))
        ));
        let ge = GlobalEnv::new();
        for (arg, expect) in [(5, 1), (0, 2)] {
            let (v, _, _) = run_main(&RtlLang, &m, &ge, "f", &[Val::Int(arg)], 100).expect("runs");
            assert_eq!(v, Val::Int(expect));
        }
    }

    #[test]
    fn division_by_zero_is_not_folded_away() {
        let f = Function {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::Const(1), vec![], 1, 1)),
                (1, Instr::Op(Op::Const(0), vec![], 2, 2)),
                (2, Instr::Op(Op::Div, vec![1, 2], 3, 3)),
                (3, Instr::Return(Some(3))),
            ]),
        };
        let m = constprop(&module_of(f));
        // The division stays (possibly strength-reduced is fine, but it
        // must still abort at runtime).
        let ge = GlobalEnv::new();
        assert!(run_main(&RtlLang, &m, &ge, "f", &[], 100).is_none());
    }

    #[test]
    fn loop_carried_values_are_not_miscounted() {
        // r := 0; while (p != 0) { r := r + 1; p := p - 1 }; return r.
        // r is NOT constant at the loop head.
        let f = Function {
            params: vec![0],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::Const(0), vec![], 1, 1)),
                (1, Instr::CondImm(Cmp::Ne, 0, 0, 2, 4)),
                (2, Instr::Op(Op::AddImm(1), vec![1], 1, 3)),
                (3, Instr::Op(Op::AddImm(-1), vec![0], 0, 1)),
                (4, Instr::Return(Some(1))),
            ]),
        };
        let m = constprop(&module_of(f));
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&RtlLang, &m, &ge, "f", &[Val::Int(4)], 1000).expect("runs");
        assert_eq!(v, Val::Int(4));
    }

    #[test]
    fn random_programs_agree_through_constprop() {
        use crate::cminorgen::cminorgen;
        use crate::rtlgen::rtlgen;
        use crate::selection::selection;
        use ccc_clight::gen::{gen_module, GenCfg};
        for seed in 0..30 {
            let (m, ge) = gen_module(seed, &GenCfg::default());
            let rtl = rtlgen(&selection(&cminorgen(&m).expect("cminorgen")));
            let opt = constprop(&rtl);
            let a = run_main(&RtlLang, &rtl, &ge, "f", &[], 500_000).expect("rtl runs");
            let b = run_main(&RtlLang, &opt, &ge, "f", &[], 500_000).expect("opt runs");
            assert_eq!(a.0, b.0, "seed {seed}: return values");
            assert_eq!(a.2, b.2, "seed {seed}: events");
        }
    }
}
