//! Sparse conditional constant propagation on RTL — an *extension*
//! pass beyond the four optimizations the paper verifies ("proving
//! other optimization passes would be similar and is left as future
//! work", §7.2 / §8).
//!
//! Two forward dataflow analyses run side by side:
//!
//! * a plain constant analysis (per node, which pseudo-registers surely
//!   hold which integer), kept as the first hint of the translation
//!   validator, and
//! * an **interval analysis** over [`ccc_core::Interval`] in the SCCP
//!   style: conditional edges refine the branched-on registers, edges
//!   whose refinement is unsatisfiable are statically infeasible and
//!   never propagated, and loop heads are widened after a few updates
//!   so the fixpoint terminates.
//!
//! The rewrite folds operators decided by either analysis, strengthens
//! register operands into immediate forms, prunes conditional branches
//! whose outcome the intervals decide, and eliminates stores to frame
//! slots that are never loaded back (only in modules where no frame
//! address is ever taken, so the frame is invisible to every other
//! access path). Loads, calls and *shared* stores are untouched, so
//! shared footprints only shrink — exactly the direction the
//! footprint-preserving simulation (§4) permits. Division is folded
//! only when defined, preserving abort behaviour.
//!
//! Both analyses are exported ([`constant_facts`], [`interval_facts`])
//! as *untrusted hints* of the `ccc-analysis` translation validator,
//! which re-checks their soundness (inductiveness / edge closure) with
//! an independent engine before believing a single claim.

use crate::ops::{AddrMode, Cmp, Op};
use crate::rtl::{Function, Instr, Node, PReg, RtlModule};
use ccc_core::mem::Val;
use ccc_core::Interval;
use std::collections::BTreeMap;

/// The abstract value of a register: a known integer constant or
/// unknown. (Pointers are never tracked — their values are runtime
/// dependent.)
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AVal {
    Const(i64),
    Top,
}

type Env = BTreeMap<PReg, AVal>;

fn lookup(env: &Env, r: PReg) -> AVal {
    env.get(&r).copied().unwrap_or(AVal::Top)
}

fn join(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (&r, &va) in a {
        if let AVal::Const(ca) = va {
            if lookup(b, r) == AVal::Const(ca) {
                out.insert(r, va);
            }
        }
    }
    out
}

/// Abstract evaluation of an operator over known constants.
fn abstract_op(op: &Op, args: &[AVal]) -> AVal {
    let consts: Option<Vec<Val>> = args
        .iter()
        .map(|a| match a {
            AVal::Const(i) => Some(Val::Int(*i)),
            AVal::Top => None,
        })
        .collect();
    match (op, consts) {
        (Op::Const(i), _) => AVal::Const(*i),
        (Op::AddrGlobal(..) | Op::AddrStack(_), _) => AVal::Top,
        (op, Some(vals)) => match op.eval(&vals) {
            Some(Val::Int(i)) => AVal::Const(i),
            _ => AVal::Top, // undefined (e.g. division by zero): keep
        },
        _ => AVal::Top,
    }
}

fn transfer(i: &Instr, env: &Env) -> Env {
    let mut out = env.clone();
    match i {
        Instr::Op(op, args, dst, _) => {
            let avs: Vec<AVal> = args.iter().map(|&r| lookup(env, r)).collect();
            match abstract_op(op, &avs) {
                AVal::Const(c) => {
                    out.insert(*dst, AVal::Const(c));
                }
                AVal::Top => {
                    out.remove(dst);
                }
            }
        }
        Instr::Load(_, dst, _) => {
            out.remove(dst);
        }
        Instr::Call(Some(dst), ..) => {
            out.remove(dst);
        }
        _ => {}
    }
    out
}

/// Per-node input environments by forward fixpoint iteration.
fn analyze(f: &Function) -> BTreeMap<Node, Env> {
    let mut inputs: BTreeMap<Node, Env> = BTreeMap::new();
    inputs.insert(f.entry, Env::new());
    let mut work: Vec<Node> = vec![f.entry];
    while let Some(n) = work.pop() {
        let Some(instr) = f.code.get(&n) else {
            continue;
        };
        let env_in = inputs.get(&n).cloned().unwrap_or_default();
        let env_out = transfer(instr, &env_in);
        for s in instr.succs() {
            let merged = match inputs.get(&s) {
                Some(prev) => join(prev, &env_out),
                None => env_out.clone(),
            };
            if inputs.get(&s) != Some(&merged) {
                inputs.insert(s, merged);
                work.push(s);
            }
        }
    }
    inputs
}

/// The per-node constant facts the rewrite consumes: for every node the
/// analysis reaches, the registers known to hold a specific integer on
/// entry. Exposed as the structural hint of the `ccc-analysis`
/// translation validator, which independently re-checks the facts'
/// inductiveness before seeding its symbolic states with them.
pub fn constant_facts(f: &Function) -> BTreeMap<Node, BTreeMap<PReg, i64>> {
    analyze(f)
        .into_iter()
        .map(|(n, env)| {
            let facts = env
                .into_iter()
                .filter_map(|(r, v)| match v {
                    AVal::Const(c) => Some((r, c)),
                    AVal::Top => None,
                })
                .collect();
            (n, facts)
        })
        .collect()
}

// ---------------------------------------------------------------------
// The interval half: SCCP over `ccc_core::Interval`.
// ---------------------------------------------------------------------

/// Per-register interval facts at one program point. A register bound
/// in the map definitely holds `Val::Int(c)` with `c` inside the
/// interval; an unbound register is unknown (possibly a pointer or
/// undefined).
pub type IntervalEnv = BTreeMap<PReg, Interval>;

/// Decides `a cc b` from the operand ranges, when they do not overlap
/// the boundary.
fn cmp_decide(c: Cmp, a: &Interval, b: &Interval) -> Option<bool> {
    match c {
        Cmp::Eq => a.eq_decide(b),
        Cmp::Ne => a.eq_decide(b).map(|r| !r),
        Cmp::Lt => a.lt(b),
        Cmp::Le => a.le(b),
        Cmp::Gt => b.lt(a),
        Cmp::Ge => b.le(a),
    }
}

/// Refines `a` under the assumption `a cc b`; `None` when the
/// assumption is unsatisfiable.
fn assume(cc: Cmp, a: &Interval, b: &Interval) -> Option<Interval> {
    match cc {
        Cmp::Eq => a.assume_eq(b),
        Cmp::Ne => a.assume_ne(b),
        Cmp::Lt => a.assume_lt(b),
        Cmp::Le => a.assume_le(b),
        Cmp::Gt => a.assume_gt(b),
        Cmp::Ge => a.assume_ge(b),
    }
}

/// Abstract evaluation of an operator over interval arguments (`None`
/// per argument = untracked). All-singleton arguments go through the
/// concrete [`Op::eval`] for exact (wrapping) semantics; otherwise the
/// interval operators of [`ccc_core::Interval`] apply. Returns `None`
/// when nothing sound can be claimed about the result (division and
/// bitwise operators on non-singletons, address operators, undefined
/// evaluations).
fn ieval_op(op: &Op, args: &[Option<Interval>]) -> Option<Interval> {
    let consts: Option<Vec<i64>> = args
        .iter()
        .map(|a| a.as_ref().and_then(Interval::as_const))
        .collect();
    if let Some(cs) = consts {
        let vals: Vec<Val> = cs.into_iter().map(Val::Int).collect();
        return match op.eval(&vals) {
            Some(Val::Int(c)) => Some(Interval::constant(c)),
            _ => None,
        };
    }
    let a = |k: usize| -> Option<Interval> { args.get(k).copied().flatten() };
    Some(match op {
        Op::Const(c) => Interval::constant(*c),
        Op::Move => a(0)?,
        Op::Neg => a(0)?.neg(),
        Op::Not => a(0)?.not(),
        Op::AddImm(c) => a(0)?.add(&Interval::constant(*c)),
        Op::MulImm(c) => a(0)?.mul(&Interval::constant(*c)),
        Op::CmpImm(cc, c) => match cmp_decide(*cc, &a(0)?, &Interval::constant(*c)) {
            Some(b) => Interval::constant(i64::from(b)),
            None => Interval::boolean(),
        },
        Op::Add => a(0)?.add(&a(1)?),
        Op::Sub => a(0)?.sub(&a(1)?),
        Op::Mul => a(0)?.mul(&a(1)?),
        Op::Cmp(cc) => match cmp_decide(*cc, &a(0)?, &a(1)?) {
            Some(b) => Interval::constant(i64::from(b)),
            None => Interval::boolean(),
        },
        // Division and bitwise operators are only evaluated on
        // singletons (above); addresses are never integers.
        _ => return None,
    })
}

fn itransfer(i: &Instr, env: &IntervalEnv) -> IntervalEnv {
    let mut out = env.clone();
    match i {
        Instr::Op(op, args, dst, _) => {
            let iargs: Vec<Option<Interval>> = args.iter().map(|r| env.get(r).copied()).collect();
            match ieval_op(op, &iargs) {
                Some(iv) => {
                    out.insert(*dst, iv);
                }
                None => {
                    out.remove(dst);
                }
            }
        }
        Instr::Load(_, dst, _) => {
            out.remove(dst);
        }
        Instr::Call(Some(dst), ..) => {
            out.remove(dst);
        }
        _ => {}
    }
    out
}

/// Refines the binding for `r` in `out` under `r eff other`, where
/// `mine`/`other` are the *pre-refinement* operand intervals (`None` =
/// untracked). Returns `false` when the assumption is unsatisfiable —
/// the edge is statically infeasible.
///
/// Soundness of *inserting* a binding for an untracked `r`: a binding
/// asserts "definitely an integer in this range". `Cmp::eval` defines
/// the ordered comparisons only on integer pairs, so a taken ordered
/// edge proves `r` holds an `Int`; `Eq` against a tracked (integer)
/// side proves the same. `Ne` proves nothing about an untracked side —
/// a pointer is `Ne` to every integer.
fn refine_side(
    out: &mut IntervalEnv,
    r: PReg,
    eff: Cmp,
    mine: Option<Interval>,
    other: Option<Interval>,
) -> bool {
    let may_bind = mine.is_some()
        || matches!(eff, Cmp::Lt | Cmp::Le | Cmp::Gt | Cmp::Ge)
        || (eff == Cmp::Eq && other.is_some());
    if !may_bind {
        return true;
    }
    let base = mine.unwrap_or(Interval::TOP);
    let ob = other.unwrap_or(Interval::TOP);
    match assume(eff, &base, &ob) {
        Some(iv) => {
            out.insert(r, iv);
            true
        }
        None => false,
    }
}

/// The per-edge successor environments of `i` from input `env`:
/// conditional edges are branch-refined on both operands, and edges
/// whose refinement is unsatisfiable are dropped entirely — the
/// "sparse conditional" half of the analysis.
fn interval_edges(i: &Instr, env: &IntervalEnv) -> Vec<(Node, IntervalEnv)> {
    let out = itransfer(i, env);
    match i {
        Instr::Cond(c, r1, r2, t, e) => {
            let (i1, i2) = (env.get(r1).copied(), env.get(r2).copied());
            let mut edges = Vec::new();
            for (node, taken) in [(*t, true), (*e, false)] {
                let eff = if taken { *c } else { c.negate() };
                let mut refined = out.clone();
                if refine_side(&mut refined, *r1, eff, i1, i2)
                    && refine_side(&mut refined, *r2, eff.swap(), i2, i1)
                {
                    edges.push((node, refined));
                }
            }
            edges
        }
        Instr::CondImm(c, r, imm, t, e) => {
            let ir = env.get(r).copied();
            let ii = Some(Interval::constant(*imm));
            let mut edges = Vec::new();
            for (node, taken) in [(*t, true), (*e, false)] {
                let eff = if taken { *c } else { c.negate() };
                let mut refined = out.clone();
                if refine_side(&mut refined, *r, eff, ir, ii) {
                    edges.push((node, refined));
                }
            }
            edges
        }
        other => other
            .succs()
            .into_iter()
            .map(|s| (s, out.clone()))
            .collect(),
    }
}

/// Pointwise join: only registers tracked on *both* sides survive.
fn ienv_join(a: &IntervalEnv, b: &IntervalEnv) -> IntervalEnv {
    a.iter()
        .filter_map(|(r, ia)| b.get(r).map(|ib| (*r, ia.join(ib))))
        .collect()
}

/// Pointwise widening of `prev` by `joined` (whose keys are a subset of
/// `prev`'s by construction of [`ienv_join`]).
fn ienv_widen(prev: &IntervalEnv, joined: &IntervalEnv) -> IntervalEnv {
    joined
        .iter()
        .map(|(r, iv)| match prev.get(r) {
            Some(p) => (*r, p.widen(iv)),
            None => (*r, *iv),
        })
        .collect()
}

/// After how many input changes a node's merge switches from join to
/// widening. Small enough to terminate fast, large enough to let short
/// ascending chains (e.g. a bounded count-up) stabilize exactly.
const WIDEN_AFTER: u32 = 3;

fn interval_analyze(f: &Function, bad_widen: bool) -> BTreeMap<Node, IntervalEnv> {
    let mut inputs: BTreeMap<Node, IntervalEnv> = BTreeMap::new();
    inputs.insert(f.entry, IntervalEnv::new());
    let mut updates: BTreeMap<Node, u32> = BTreeMap::new();
    let mut work: Vec<Node> = vec![f.entry];
    while let Some(n) = work.pop() {
        let Some(instr) = f.code.get(&n) else {
            continue;
        };
        let env_in = inputs.get(&n).cloned().unwrap_or_default();
        for (s, env_out) in interval_edges(instr, &env_in) {
            let merged = match inputs.get(&s) {
                None => env_out,
                // The seeded widening bug: once a node has an input,
                // later flows are ignored instead of joined, so
                // loop-carried registers keep their first-iteration
                // intervals — unsound claims a validator must reject.
                Some(prev) if bad_widen => prev.clone(),
                Some(prev) => {
                    let joined = ienv_join(prev, &env_out);
                    if updates.get(&s).copied().unwrap_or(0) >= WIDEN_AFTER {
                        ienv_widen(prev, &joined)
                    } else {
                        joined
                    }
                }
            };
            if inputs.get(&s) != Some(&merged) {
                *updates.entry(s).or_insert(0) += 1;
                inputs.insert(s, merged);
                work.push(s);
            }
        }
    }
    inputs
}

/// The per-node interval facts of the SCCP analysis: for every node the
/// analysis can reach along statically feasible edges, the register
/// ranges holding on entry. Nodes absent from the map are proven
/// unreachable.
///
/// Like [`constant_facts`], this is the *untrusted hint* handed to the
/// `ccc-analysis` translation validator: the validator re-checks edge
/// closure of the claimed facts with its own independent interval
/// engine (`ccc-analysis`' `absint`), so a wrong hint can only make
/// validation fail, never accept a wrong translation.
pub fn interval_facts(f: &Function) -> BTreeMap<Node, IntervalEnv> {
    interval_analyze(f, false)
}

// ---------------------------------------------------------------------
// The rewrite.
// ---------------------------------------------------------------------

/// Which seeded bug (if any) a constprop run carries — see
/// [`crate::mutant`].
#[derive(Clone, Copy, PartialEq, Eq)]
enum CpBug {
    /// The real pass.
    Clean,
    /// Constant-decided branches fold to the arm the condition does
    /// *not* take.
    WrongArm,
    /// The interval fixpoint ignores joins ([`interval_analyze`]), so
    /// loop-carried intervals are stuck at their first iteration.
    BadWiden,
    /// Interval-decided branches (not decided by plain constants) are
    /// pruned to the wrong arm.
    WrongPrune,
    /// Dead-store elimination fires even for frame slots that *are*
    /// loaded back.
    UnsoundDse,
}

/// True when some instruction of `f` loads frame slot `s`.
fn loads_slot(f: &Function, s: u64) -> bool {
    f.code
        .values()
        .any(|i| matches!(i, Instr::Load(AddrMode::Stack(x), _, _) if *x == s))
}

/// True when any function of the module materializes a frame address
/// (`Op::AddrStack`). If none does, no pointer to any frame ever
/// exists, so frame slots are only reachable through `Stack(s)`
/// addressing in the owning function — the premise of the dead-store
/// elimination.
fn module_frame_escapes(m: &RtlModule) -> bool {
    m.funcs.values().any(|f| {
        f.code
            .values()
            .any(|i| matches!(i, Instr::Op(Op::AddrStack(_), ..)))
    })
}

fn rewrite(
    f: &Function,
    i: &Instr,
    cenv: Option<&Env>,
    ienv: Option<&IntervalEnv>,
    frame_escapes: bool,
    bug: CpBug,
) -> Instr {
    // Merged constant view: a plain constant fact, else an interval
    // singleton.
    let kconst = |r: PReg| -> Option<i64> {
        if let Some(env) = cenv {
            if let AVal::Const(c) = lookup(env, r) {
                return Some(c);
            }
        }
        ienv.and_then(|e| e.get(&r).and_then(Interval::as_const))
    };
    // Merged interval view: the interval fact, else a constant fact as
    // a singleton.
    let itv = |r: PReg| -> Option<Interval> {
        if let Some(iv) = ienv.and_then(|e| e.get(&r).copied()) {
            return Some(iv);
        }
        kconst(r).map(Interval::constant)
    };
    // Plain-constant view (no interval information), so the two seeded
    // branch bugs split cleanly: `WrongArm` corrupts decisions the
    // constant analysis alone justifies, `WrongPrune` those needing
    // interval facts.
    let cconst = |r: PReg| -> Option<i64> {
        cenv.and_then(|env| match lookup(env, r) {
            AVal::Const(c) => Some(c),
            _ => None,
        })
    };
    match i {
        Instr::Op(op, args, dst, n) => {
            // Full fold over known constants (exact wrapping semantics
            // through the concrete evaluator; undefined results — e.g.
            // division by zero — are never folded).
            let consts: Option<Vec<Val>> = args.iter().map(|&r| kconst(r).map(Val::Int)).collect();
            if let Some(vals) = consts {
                if let Some(Val::Int(c)) = op.eval(&vals) {
                    return Instr::Op(Op::Const(c), vec![], *dst, *n);
                }
            }
            // Interval fold: ranges that pin the result without any
            // operand being constant (e.g. a comparison decided by
            // non-overlapping ranges).
            let iargs: Vec<Option<Interval>> = args.iter().map(|&r| itv(r)).collect();
            if let Some(c) = ieval_op(op, &iargs).as_ref().and_then(Interval::as_const) {
                return Instr::Op(Op::Const(c), vec![], *dst, *n);
            }
            // Strength reduction of 2-ary ops with one known operand.
            if args.len() == 2 {
                let (a, b) = (args[0], args[1]);
                match (op, kconst(a), kconst(b)) {
                    (Op::Add, Some(c), _) => return Instr::Op(Op::AddImm(c), vec![b], *dst, *n),
                    (Op::Add, _, Some(c)) => return Instr::Op(Op::AddImm(c), vec![a], *dst, *n),
                    (Op::Sub, _, Some(c)) if c != i64::MIN => {
                        return Instr::Op(Op::AddImm(-c), vec![a], *dst, *n)
                    }
                    (Op::Mul, Some(c), _) => return Instr::Op(Op::MulImm(c), vec![b], *dst, *n),
                    (Op::Mul, _, Some(c)) => return Instr::Op(Op::MulImm(c), vec![a], *dst, *n),
                    (Op::Cmp(cc), _, Some(c)) => {
                        return Instr::Op(Op::CmpImm(*cc, c), vec![a], *dst, *n)
                    }
                    (Op::Cmp(cc), Some(c), _) => {
                        return Instr::Op(Op::CmpImm(cc.swap(), c), vec![b], *dst, *n)
                    }
                    _ => {}
                }
            }
            i.clone()
        }
        // Branch folding on decided conditions.
        Instr::Cond(c, r1, r2, t, e) => {
            if let (Some(a), Some(b)) = (cconst(*r1), cconst(*r2)) {
                if let Some(taken) = c.eval(Val::Int(a), Val::Int(b)) {
                    // `WrongArm` is the seeded bug for mutation
                    // scoring: decided branches fold to the wrong arm.
                    let taken = taken != (bug == CpBug::WrongArm);
                    return Instr::Nop(if taken { *t } else { *e });
                }
            }
            if let (Some(a), Some(b)) = (itv(*r1), itv(*r2)) {
                if let Some(taken) = cmp_decide(*c, &a, &b) {
                    let taken = taken != (bug == CpBug::WrongPrune);
                    return Instr::Nop(if taken { *t } else { *e });
                }
            }
            if let Some(b) = kconst(*r2) {
                return Instr::CondImm(*c, *r1, b, *t, *e);
            }
            if let Some(a) = kconst(*r1) {
                return Instr::CondImm(c.swap(), *r2, a, *t, *e);
            }
            i.clone()
        }
        Instr::CondImm(c, r, imm, t, e) => {
            if let Some(a) = cconst(*r) {
                if let Some(taken) = c.eval(Val::Int(a), Val::Int(*imm)) {
                    let taken = taken != (bug == CpBug::WrongArm);
                    return Instr::Nop(if taken { *t } else { *e });
                }
            }
            if let Some(a) = itv(*r) {
                if let Some(taken) = cmp_decide(*c, &a, &Interval::constant(*imm)) {
                    let taken = taken != (bug == CpBug::WrongPrune);
                    return Instr::Nop(if taken { *t } else { *e });
                }
            }
            i.clone()
        }
        // Dead-store elimination on frame slots: a store to a slot
        // nobody loads, in a module where frames never escape, cannot
        // be observed. The store never aborts either (frames are fully
        // allocated at entry and `s` is in range), so dropping it
        // preserves behaviour exactly.
        Instr::Store(AddrMode::Stack(s), _, succ) => {
            if !frame_escapes
                && *s < f.stack_slots
                && (bug == CpBug::UnsoundDse || !loads_slot(f, *s))
            {
                return Instr::Nop(*succ);
            }
            i.clone()
        }
        other => other.clone(),
    }
}

fn transform_function_with(f: &Function, frame_escapes: bool, bug: CpBug) -> Function {
    let cfacts = analyze(f);
    let ifacts = interval_analyze(f, bug == CpBug::BadWiden);
    let mut code = BTreeMap::new();
    for (&n, i) in &f.code {
        code.insert(
            n,
            rewrite(f, i, cfacts.get(&n), ifacts.get(&n), frame_escapes, bug),
        );
    }
    Function {
        params: f.params.clone(),
        stack_slots: f.stack_slots,
        entry: f.entry,
        code,
    }
}

fn transform_module_with(m: &RtlModule, bug: CpBug) -> RtlModule {
    let esc = module_frame_escapes(m);
    RtlModule {
        funcs: crate::pass_util::map_functions_total(&m.funcs, |f| {
            transform_function_with(f, esc, bug)
        }),
    }
}

/// Runs sparse conditional constant propagation over a module.
pub fn constprop(m: &RtlModule) -> RtlModule {
    transform_module_with(m, CpBug::Clean)
}

/// Seeded-bug variant for mutation scoring ([`crate::mutant`]): branch
/// folding on constant-decided conditions picks the arm the condition
/// does *not* take.
pub fn constprop_mutated(m: &RtlModule) -> RtlModule {
    transform_module_with(m, CpBug::WrongArm)
}

/// Second seeded-bug variant: the interval fixpoint ignores joins, so
/// loop heads keep their first-iteration intervals — loop-carried
/// registers get unsoundly narrow ranges and guards prune wrongly.
pub fn constprop_widen_mutated(m: &RtlModule) -> RtlModule {
    transform_module_with(m, CpBug::BadWiden)
}

/// Third seeded-bug variant: branches decided by intervals (but not by
/// plain constants) are pruned to the wrong arm.
pub fn constprop_branch_mutated(m: &RtlModule) -> RtlModule {
    transform_module_with(m, CpBug::WrongPrune)
}

/// Fourth seeded-bug variant: dead-store elimination drops frame stores
/// even when the slot is loaded back later.
pub fn constprop_deadstore_mutated(m: &RtlModule) -> RtlModule {
    transform_module_with(m, CpBug::UnsoundDse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Cmp;
    use crate::rtl::RtlLang;
    use ccc_core::mem::{GlobalEnv, Val};
    use ccc_core::world::run_main;

    fn module_of(f: Function) -> RtlModule {
        RtlModule {
            funcs: [("f".to_string(), f)].into(),
        }
    }

    #[test]
    fn straightline_constants_fold() {
        // r1 := 6; r2 := r1 * 7; return r2 — becomes r2 := 42.
        let f = Function {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::Const(6), vec![], 1, 1)),
                (1, Instr::Op(Op::MulImm(7), vec![1], 2, 2)),
                (2, Instr::Return(Some(2))),
            ]),
        };
        let m = constprop(&module_of(f));
        assert!(matches!(
            m.funcs["f"].code.get(&1),
            Some(Instr::Op(Op::Const(42), ..))
        ));
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&RtlLang, &m, &ge, "f", &[], 100).expect("runs");
        assert_eq!(v, Val::Int(42));
    }

    #[test]
    fn decided_branches_fold_to_nops() {
        let f = Function {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::Const(1), vec![], 1, 1)),
                (1, Instr::CondImm(Cmp::Eq, 1, 1, 2, 3)),
                (2, Instr::Return(Some(1))),
                (3, Instr::Op(Op::Const(99), vec![], 1, 2)),
            ]),
        };
        let m = constprop(&module_of(f));
        assert!(matches!(m.funcs["f"].code.get(&1), Some(Instr::Nop(2))));
    }

    #[test]
    fn join_loses_disagreeing_constants() {
        // if (param) r := 1 else r := 2; return r — r unknown at merge.
        let f = Function {
            params: vec![0],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::CondImm(Cmp::Ne, 0, 0, 1, 2)),
                (1, Instr::Op(Op::Const(1), vec![], 1, 3)),
                (2, Instr::Op(Op::Const(2), vec![], 1, 3)),
                (3, Instr::Return(Some(1))),
            ]),
        };
        let m = constprop(&module_of(f));
        // Node 3 unchanged; both constants kept.
        assert!(matches!(
            m.funcs["f"].code.get(&3),
            Some(Instr::Return(Some(1)))
        ));
        let ge = GlobalEnv::new();
        for (arg, expect) in [(5, 1), (0, 2)] {
            let (v, _, _) = run_main(&RtlLang, &m, &ge, "f", &[Val::Int(arg)], 100).expect("runs");
            assert_eq!(v, Val::Int(expect));
        }
    }

    #[test]
    fn division_by_zero_is_not_folded_away() {
        let f = Function {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::Const(1), vec![], 1, 1)),
                (1, Instr::Op(Op::Const(0), vec![], 2, 2)),
                (2, Instr::Op(Op::Div, vec![1, 2], 3, 3)),
                (3, Instr::Return(Some(3))),
            ]),
        };
        let m = constprop(&module_of(f));
        // The division stays (possibly strength-reduced is fine, but it
        // must still abort at runtime).
        let ge = GlobalEnv::new();
        assert!(run_main(&RtlLang, &m, &ge, "f", &[], 100).is_none());
    }

    #[test]
    fn loop_carried_values_are_not_miscounted() {
        // r := 0; while (p != 0) { r := r + 1; p := p - 1 }; return r.
        // r is NOT constant at the loop head.
        let f = Function {
            params: vec![0],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::Const(0), vec![], 1, 1)),
                (1, Instr::CondImm(Cmp::Ne, 0, 0, 2, 4)),
                (2, Instr::Op(Op::AddImm(1), vec![1], 1, 3)),
                (3, Instr::Op(Op::AddImm(-1), vec![0], 0, 1)),
                (4, Instr::Return(Some(1))),
            ]),
        };
        let m = constprop(&module_of(f));
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&RtlLang, &m, &ge, "f", &[Val::Int(4)], 1000).expect("runs");
        assert_eq!(v, Val::Int(4));
    }

    #[test]
    fn branch_refinement_decides_nested_range_checks() {
        // if (p < 10) { if (p < 20) return p; } return — the inner
        // check is decided by the refined range [MIN, 9], though p is
        // never a constant.
        let f = Function {
            params: vec![0],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::CondImm(Cmp::Lt, 0, 10, 1, 3)),
                (1, Instr::CondImm(Cmp::Lt, 0, 20, 2, 3)),
                (2, Instr::Return(Some(0))),
                (3, Instr::Return(None)),
            ]),
        };
        let m = constprop(&module_of(f));
        assert!(matches!(m.funcs["f"].code.get(&1), Some(Instr::Nop(2))));
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&RtlLang, &m, &ge, "f", &[Val::Int(5)], 100).expect("runs");
        assert_eq!(v, Val::Int(5));
    }

    #[test]
    fn widening_keeps_stable_bounds_and_prunes_redundant_guard() {
        // i := 0; s := 0; while (i < 3) { if (i >= 0) s := s + i else
        // s := s - 1; i := i + 1 }; return s. The inner guard is
        // decided by the widened loop interval (lo = 0 is stable) but
        // never by plain constants.
        let f = Function {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::Const(0), vec![], 1, 1)),
                (1, Instr::Op(Op::Const(0), vec![], 2, 2)),
                (2, Instr::CondImm(Cmp::Lt, 1, 3, 3, 7)),
                (3, Instr::CondImm(Cmp::Ge, 1, 0, 4, 5)),
                (4, Instr::Op(Op::Add, vec![2, 1], 2, 6)),
                (5, Instr::Op(Op::AddImm(-1), vec![2], 2, 6)),
                (6, Instr::Op(Op::AddImm(1), vec![1], 1, 2)),
                (7, Instr::Return(Some(2))),
            ]),
        };
        let m = constprop(&module_of(f.clone()));
        assert!(matches!(m.funcs["f"].code.get(&3), Some(Instr::Nop(4))));
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&RtlLang, &m, &ge, "f", &[], 1000).expect("runs");
        assert_eq!(v, Val::Int(3));
        // The wrong-prune mutant picks the other arm — observably so.
        let bad = constprop_branch_mutated(&module_of(f));
        assert!(matches!(bad.funcs["f"].code.get(&3), Some(Instr::Nop(5))));
        let (v, _, _) = run_main(&RtlLang, &bad, &ge, "f", &[], 1000).expect("runs");
        assert_eq!(v, Val::Int(-3));
    }

    #[test]
    fn dead_frame_stores_are_eliminated() {
        let f = Function {
            params: vec![],
            stack_slots: 1,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::Const(7), vec![], 1, 1)),
                (1, Instr::Store(AddrMode::Stack(0), 1, 2)),
                (2, Instr::Return(Some(1))),
            ]),
        };
        let m = constprop(&module_of(f));
        assert!(matches!(m.funcs["f"].code.get(&1), Some(Instr::Nop(2))));
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&RtlLang, &m, &ge, "f", &[], 100).expect("runs");
        assert_eq!(v, Val::Int(7));
    }

    #[test]
    fn loaded_frame_stores_are_kept() {
        let f = Function {
            params: vec![],
            stack_slots: 1,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::Const(7), vec![], 1, 1)),
                (1, Instr::Store(AddrMode::Stack(0), 1, 2)),
                (2, Instr::Load(AddrMode::Stack(0), 2, 3)),
                (3, Instr::Return(Some(2))),
            ]),
        };
        let m = constprop(&module_of(f.clone()));
        assert!(matches!(
            m.funcs["f"].code.get(&1),
            Some(Instr::Store(AddrMode::Stack(0), 1, 2))
        ));
        let ge = GlobalEnv::new();
        let (v, _, _) = run_main(&RtlLang, &m, &ge, "f", &[], 100).expect("runs");
        assert_eq!(v, Val::Int(7));
        // The unsound-DSE mutant drops it anyway, so the load sees the
        // frame's initial Undef instead of 7 — an observable difference.
        let bad = constprop_deadstore_mutated(&module_of(f));
        assert!(matches!(bad.funcs["f"].code.get(&1), Some(Instr::Nop(2))));
        let r = run_main(&RtlLang, &bad, &ge, "f", &[], 100);
        assert_ne!(r.map(|t| t.0), Some(Val::Int(7)));
    }

    #[test]
    fn escaping_frames_disable_dead_store_elimination() {
        // The module takes a frame address somewhere, so even an
        // apparently dead store must stay.
        let f = Function {
            params: vec![],
            stack_slots: 1,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::Const(7), vec![], 1, 1)),
                (1, Instr::Store(AddrMode::Stack(0), 1, 2)),
                (2, Instr::Op(Op::AddrStack(0), vec![], 2, 3)),
                (3, Instr::Return(Some(1))),
            ]),
        };
        let m = constprop(&module_of(f));
        assert!(matches!(
            m.funcs["f"].code.get(&1),
            Some(Instr::Store(AddrMode::Stack(0), 1, 2))
        ));
    }

    #[test]
    fn random_programs_agree_through_constprop() {
        use crate::cminorgen::cminorgen;
        use crate::rtlgen::rtlgen;
        use crate::selection::selection;
        use ccc_clight::gen::{gen_module, GenCfg};
        for seed in 0..30 {
            let (m, ge) = gen_module(seed, &GenCfg::default());
            let rtl = rtlgen(&selection(&cminorgen(&m).expect("cminorgen")));
            let opt = constprop(&rtl);
            let a = run_main(&RtlLang, &rtl, &ge, "f", &[], 500_000).expect("rtl runs");
            let b = run_main(&RtlLang, &opt, &ge, "f", &[], 500_000).expect("opt runs");
            assert_eq!(a.0, b.0, "seed {seed}: return values");
            assert_eq!(a.2, b.2, "seed {seed}: events");
        }
    }
}
