//! The `Tailcall` optimization pass: RTL → RTL (one of the four
//! CompCert optimization passes verified in the paper, Fig. 11).
//!
//! A call whose continuation immediately returns the call's result —
//! possibly through a chain of `Nop`s — is turned into a
//! [`Instr::Tailcall`], eliminating the useless continuation.

use crate::rtl::{Function, Instr, Node, RtlModule};

/// Follows `Nop` chains from `n` (bounded by the graph size, so cycles
/// of `Nop`s terminate the walk). Public because it doubles as the
/// structural hint of the `ccc-analysis` translation validator, which
/// re-checks the call-to-tailcall pattern against the source graph.
pub fn skip_nops(f: &Function, mut n: Node) -> Node {
    for _ in 0..f.code.len() {
        match f.code.get(&n) {
            Some(Instr::Nop(next)) => n = *next,
            _ => break,
        }
    }
    n
}

fn transform_function_with(f: &Function, drop_continuations: bool) -> Function {
    let mut out = f.clone();
    for (node, instr) in &f.code {
        match instr {
            Instr::Call(Some(dst), callee, args, succ) => {
                let ret = skip_nops(f, *succ);
                if let Some(Instr::Return(Some(r))) = f.code.get(&ret) {
                    if r == dst {
                        out.code
                            .insert(*node, Instr::Tailcall(callee.clone(), args.clone()));
                    }
                }
            }
            Instr::Call(None, callee, args, _succ) if drop_continuations => {
                // The seeded bug: a discarded-result call is treated as a
                // tail call, silently dropping the whole continuation.
                out.code
                    .insert(*node, Instr::Tailcall(callee.clone(), args.clone()));
            }
            _ => {}
        }
    }
    out
}

/// Runs the transformation over a module.
pub fn tailcall(m: &RtlModule) -> RtlModule {
    RtlModule {
        funcs: m
            .funcs
            .iter()
            .map(|(n, f)| (n.clone(), transform_function_with(f, false)))
            .collect(),
    }
}

/// Seeded-bug variant for mutation scoring ([`crate::mutant`]): also
/// "optimizes" discarded-result calls into tail calls, dropping every
/// statement after them.
pub fn tailcall_mutated(m: &RtlModule) -> RtlModule {
    RtlModule {
        funcs: m
            .funcs
            .iter()
            .map(|(n, f)| (n.clone(), transform_function_with(f, true)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Op;
    use crate::rtl::RtlLang;
    use ccc_core::mem::{GlobalEnv, Val};
    use ccc_core::world::run_main;
    use std::collections::BTreeMap;

    fn call_then_return_module() -> RtlModule {
        // g(a): return a + 1        f(): r := g(41); nop; return r
        let g = Function {
            params: vec![0],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::AddImm(1), vec![0], 1, 1)),
                (1, Instr::Return(Some(1))),
            ]),
        };
        let f = Function {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(Op::Const(41), vec![], 1, 1)),
                (1, Instr::Call(Some(2), "g".into(), vec![1], 2)),
                (2, Instr::Nop(3)),
                (3, Instr::Return(Some(2))),
            ]),
        };
        RtlModule {
            funcs: [("f".to_string(), f), ("g".to_string(), g)].into(),
        }
    }

    #[test]
    fn call_return_becomes_tailcall() {
        let m = call_then_return_module();
        let t = tailcall(&m);
        assert!(matches!(
            t.funcs["f"].code.get(&1),
            Some(Instr::Tailcall(callee, _)) if callee == "g"
        ));
        // g is unchanged (its call-free body has no candidates).
        assert_eq!(t.funcs["g"], m.funcs["g"]);
    }

    #[test]
    fn transformed_program_behaves_identically() {
        let m = call_then_return_module();
        let t = tailcall(&m);
        let ge = GlobalEnv::new();
        let (v1, _, _) = run_main(&RtlLang, &m, &ge, "f", &[], 1000).expect("orig runs");
        let (v2, _, _) = run_main(&RtlLang, &t, &ge, "f", &[], 1000).expect("tc runs");
        assert_eq!(v1, Val::Int(42));
        assert_eq!(v1, v2);
    }

    #[test]
    fn mismatched_return_register_not_transformed() {
        // r := g(x); return OTHER — must not become a tail call.
        let f = Function {
            params: vec![0],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Call(Some(1), "g".into(), vec![0], 1)),
                (1, Instr::Return(Some(0))),
            ]),
        };
        let m = RtlModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let t = tailcall(&m);
        assert!(matches!(t.funcs["f"].code.get(&0), Some(Instr::Call(..))));
    }

    #[test]
    fn discarded_result_not_transformed() {
        let f = Function {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Call(None, "g".into(), vec![], 1)),
                (1, Instr::Return(None)),
            ]),
        };
        let m = RtlModule {
            funcs: [("f".to_string(), f)].into(),
        };
        let t = tailcall(&m);
        // Return(None) returns 0, not g's value: not a tail call.
        assert!(matches!(t.funcs["f"].code.get(&0), Some(Instr::Call(..))));
    }
}
