//! First-order fuzz-program representation and its lowering to Clight.
//!
//! The fuzzer does not generate [`ccc_clight::ast`] trees directly:
//! instead it generates a small first-order [`FuzzProgram`] value whose
//! every instance lowers to a *well-formed* Clight module (temporaries
//! initialized, addressable locals assigned before use, loops bounded,
//! lock/unlock always balanced). Keeping the representation first-order
//! is what makes the delta-debugging shrinker ([`crate::shrink`]) and
//! the textual regression corpus ([`crate::corpus`]) simple: every
//! structural edit of a `FuzzProgram` is again a valid program.

use ccc_clight::ast::{Binop, ClightModule, Expr, Function, Stmt, Unop};
use ccc_core::mem::{GlobalEnv, Val};

/// Number of integer temporaries (`t0..`) every generated thread owns.
pub const NUM_TEMPS: u8 = 4;
/// Number of addressable locals (`v0..`) every generated thread owns.
pub const NUM_VARS: u8 = 2;

/// Binary operators of the fuzz expression language (a subset of
/// [`Binop`] that avoids division, whose UB makes differential runs
/// abort-heavy).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum SBin {
    Add,
    Sub,
    Mul,
    Eq,
    Ne,
    Lt,
    Le,
    And,
    Or,
    Xor,
}

impl SBin {
    /// All operators, for the generator to index into.
    pub const ALL: [SBin; 10] = [
        SBin::Add,
        SBin::Sub,
        SBin::Mul,
        SBin::Eq,
        SBin::Ne,
        SBin::Lt,
        SBin::Le,
        SBin::And,
        SBin::Or,
        SBin::Xor,
    ];

    /// The corresponding Clight operator.
    #[must_use]
    pub fn to_binop(self) -> Binop {
        match self {
            SBin::Add => Binop::Add,
            SBin::Sub => Binop::Sub,
            SBin::Mul => Binop::Mul,
            SBin::Eq => Binop::Eq,
            SBin::Ne => Binop::Ne,
            SBin::Lt => Binop::Lt,
            SBin::Le => Binop::Le,
            SBin::And => Binop::And,
            SBin::Or => Binop::Or,
            SBin::Xor => Binop::Xor,
        }
    }

    /// Lower-case token used by the textual corpus format.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            SBin::Add => "add",
            SBin::Sub => "sub",
            SBin::Mul => "mul",
            SBin::Eq => "eq",
            SBin::Ne => "ne",
            SBin::Lt => "lt",
            SBin::Le => "le",
            SBin::And => "and",
            SBin::Or => "or",
            SBin::Xor => "xor",
        }
    }
}

/// A fuzz expression. Indices are taken modulo the available resource
/// counts at lowering time, so *every* `SExpr` value is lowerable — the
/// shrinker never has to re-validate after an edit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SExpr {
    /// An integer literal.
    Const(i64),
    /// Temporary `t{i mod NUM_TEMPS}`.
    Temp(u8),
    /// Addressable local `v{i mod NUM_VARS}`.
    Var(u8),
    /// Shared global `g{i mod globals}` (falls back to a constant when
    /// the program declares no globals).
    Global(u8),
    /// Arithmetic negation.
    Neg(Box<SExpr>),
    /// Logical negation.
    Not(Box<SExpr>),
    /// A binary operation.
    Bin(SBin, Box<SExpr>, Box<SExpr>),
}

/// A fuzz statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SStmt {
    /// `t{i} = e`.
    SetTemp(u8, SExpr),
    /// `v{i} = e`.
    SetVar(u8, SExpr),
    /// `g{i} = e`.
    SetGlobal(u8, SExpr),
    /// `p = &v{i}; *p = e` — a pointer roundtrip through an addressable
    /// local (the pointer lives in the dedicated temporary `p`).
    PtrWrite(u8, SExpr),
    /// `print(e)`.
    Print(SExpr),
    /// `if (e) { … } else { … }`.
    If(SExpr, Vec<SStmt>, Vec<SStmt>),
    /// A bounded counting loop running the body `n` times (`n` is
    /// clamped to `0..=4` at lowering, so programs always terminate).
    Loop(u8, Vec<SStmt>),
    /// `t{dst} = h{i}(e)` — call a pure helper, keeping the result.
    Call(u8, u8, SExpr),
    /// `h{i}(e)` — call a pure helper, discarding the result (the shape
    /// the Tailcall pass rewrites).
    CallDrop(u8, SExpr),
    /// `lock(); … unlock()` — a balanced critical section. Lock calls
    /// only ever appear through this constructor, so deleting or
    /// unwrapping statements can never unbalance the lock discipline.
    Locked(Vec<SStmt>),
}

/// A pure helper function `h{i}`: a fold of wrapping binary operations
/// over the single parameter `x`. Helpers have no locals, no globals,
/// no prints and no aborts, so a call site never changes the
/// abort-freedom of its caller.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HelperSpec {
    /// The operation chain applied to the parameter.
    pub ops: Vec<(SBin, i64)>,
}

/// A whole fuzz program: shared globals, pure helpers, and one body per
/// thread. `threads.len() == 1` without [`SStmt::Locked`] is the
/// *sequential* shape driven through every IR interpreter; anything
/// else is the *concurrent* shape linked against the CImp lock object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuzzProgram {
    /// Number of shared globals `g0..` (initialized to `1, 2, …` so
    /// collapsing two globals is observable).
    pub globals: u8,
    /// Pure helpers callable from any thread.
    pub helpers: Vec<HelperSpec>,
    /// One statement list per thread.
    pub threads: Vec<Vec<SStmt>>,
}

impl FuzzProgram {
    /// True when any statement (recursively) is a [`SStmt::Locked`]
    /// section — such programs need the CImp lock object linked in.
    #[must_use]
    pub fn uses_lock(&self) -> bool {
        fn any_locked(ss: &[SStmt]) -> bool {
            ss.iter().any(|s| match s {
                SStmt::Locked(_) => true,
                SStmt::If(_, a, b) => any_locked(a) || any_locked(b),
                SStmt::Loop(_, b) => any_locked(b),
                _ => false,
            })
        }
        self.threads.iter().any(|t| any_locked(t))
    }

    /// True when the program can be driven through the per-stage
    /// sequential oracle (single thread, no lock object needed).
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        self.threads.len() == 1 && !self.uses_lock()
    }

    /// Total number of statements, counted recursively — the size the
    /// shrinker minimizes.
    #[must_use]
    pub fn size(&self) -> usize {
        fn count(ss: &[SStmt]) -> usize {
            ss.iter()
                .map(|s| match s {
                    SStmt::If(_, a, b) => 1 + count(a) + count(b),
                    SStmt::Loop(_, b) | SStmt::Locked(b) => 1 + count(b),
                    _ => 1,
                })
                .sum()
        }
        self.threads.iter().map(|t| count(t)).sum()
    }
}

fn temp_name(i: u8) -> String {
    format!("t{}", i % NUM_TEMPS)
}

fn var_name(i: u8) -> String {
    format!("v{}", i % NUM_VARS)
}

fn global_name(p: &FuzzProgram, px: &str, i: u8) -> Option<String> {
    if p.globals == 0 {
        None
    } else {
        Some(format!("{px}g{}", i % p.globals))
    }
}

fn helper_name(p: &FuzzProgram, px: &str, i: u8) -> Option<String> {
    if p.helpers.is_empty() {
        None
    } else {
        Some(format!("{px}h{}", i as usize % p.helpers.len()))
    }
}

fn lower_expr(p: &FuzzProgram, px: &str, e: &SExpr) -> Expr {
    match e {
        SExpr::Const(k) => Expr::Const(*k),
        SExpr::Temp(i) => Expr::temp(temp_name(*i)),
        SExpr::Var(i) => Expr::var(var_name(*i)),
        SExpr::Global(i) => match global_name(p, px, *i) {
            Some(g) => Expr::var(g),
            None => Expr::Const(i64::from(*i)),
        },
        SExpr::Neg(a) => Expr::Unop(Unop::Neg, Box::new(lower_expr(p, px, a))),
        SExpr::Not(a) => Expr::Unop(Unop::Not, Box::new(lower_expr(p, px, a))),
        SExpr::Bin(op, a, b) => {
            Expr::bin(op.to_binop(), lower_expr(p, px, a), lower_expr(p, px, b))
        }
    }
}

fn lower_stmt(p: &FuzzProgram, px: &str, s: &SStmt, loop_id: &mut usize) -> Stmt {
    match s {
        SStmt::SetTemp(i, e) => Stmt::Set(temp_name(*i), lower_expr(p, px, e)),
        SStmt::SetVar(i, e) => Stmt::Assign(Expr::var(var_name(*i)), lower_expr(p, px, e)),
        SStmt::SetGlobal(i, e) => match global_name(p, px, *i) {
            Some(g) => Stmt::Assign(Expr::var(g), lower_expr(p, px, e)),
            None => Stmt::Skip,
        },
        SStmt::PtrWrite(i, e) => Stmt::seq([
            Stmt::Set("p".into(), Expr::Addrof(Box::new(Expr::var(var_name(*i))))),
            Stmt::Assign(Expr::Deref(Box::new(Expr::temp("p"))), lower_expr(p, px, e)),
        ]),
        SStmt::Print(e) => Stmt::Print(lower_expr(p, px, e)),
        SStmt::If(c, a, b) => Stmt::if_else(
            lower_expr(p, px, c),
            lower_block(p, px, a, loop_id),
            lower_block(p, px, b, loop_id),
        ),
        SStmt::Loop(n, body) => {
            // i = n; while (0 < i) { i = i - 1; body } — the `0 < i`
            // guard is a deliberate `Lt` whose operands meet at the
            // loop exit, so an off-by-one comparison in the back end
            // runs one extra iteration.
            let i = format!("loop{}", {
                *loop_id += 1;
                *loop_id
            });
            let k = i64::from((*n).min(4));
            Stmt::seq([
                Stmt::Set(i.clone(), Expr::Const(k)),
                Stmt::while_loop(
                    Expr::bin(Binop::Lt, Expr::Const(0), Expr::temp(i.clone())),
                    Stmt::seq([
                        Stmt::Set(
                            i.clone(),
                            Expr::bin(Binop::Sub, Expr::temp(i.clone()), Expr::Const(1)),
                        ),
                        lower_block(p, px, body, loop_id),
                    ]),
                ),
            ])
        }
        SStmt::Call(dst, h, e) => match helper_name(p, px, *h) {
            Some(h) => Stmt::Call(Some(temp_name(*dst)), h, vec![lower_expr(p, px, e)]),
            None => Stmt::Set(temp_name(*dst), lower_expr(p, px, e)),
        },
        SStmt::CallDrop(h, e) => match helper_name(p, px, *h) {
            Some(h) => Stmt::Call(None, h, vec![lower_expr(p, px, e)]),
            None => Stmt::Skip,
        },
        SStmt::Locked(body) => Stmt::seq([
            Stmt::call0("lock", vec![]),
            lower_block(p, px, body, loop_id),
            Stmt::call0("unlock", vec![]),
        ]),
    }
}

fn lower_block(p: &FuzzProgram, px: &str, ss: &[SStmt], loop_id: &mut usize) -> Stmt {
    Stmt::seq(ss.iter().map(|s| lower_stmt(p, px, s, loop_id)))
}

fn lower_thread(p: &FuzzProgram, px: &str, body: &[SStmt]) -> Function {
    let mut stmts = Vec::new();
    for i in 0..NUM_TEMPS {
        stmts.push(Stmt::Set(temp_name(i), Expr::Const(0)));
    }
    for i in 0..NUM_VARS {
        stmts.push(Stmt::Assign(Expr::var(var_name(i)), Expr::Const(0)));
    }
    let mut loop_id = 0;
    stmts.push(lower_block(p, px, body, &mut loop_id));
    // Print and return a state summary, to maximize the differential
    // sensitivity of every run.
    let mut ret = Expr::Const(0);
    for i in 0..NUM_TEMPS {
        ret = Expr::add(ret, Expr::temp(temp_name(i)));
    }
    for i in 0..NUM_VARS {
        ret = Expr::add(ret, Expr::var(var_name(i)));
    }
    stmts.push(Stmt::Print(ret.clone()));
    stmts.push(Stmt::Return(Some(ret)));
    Function {
        params: vec![],
        vars: (0..NUM_VARS).map(var_name).collect(),
        body: Stmt::seq(stmts),
    }
}

fn lower_helper(h: &HelperSpec) -> Function {
    let mut e = Expr::temp("x");
    for (op, k) in &h.ops {
        e = Expr::bin(op.to_binop(), e, Expr::Const(*k));
    }
    Function {
        params: vec!["x".into()],
        vars: vec![],
        body: Stmt::Return(Some(e)),
    }
}

/// Lowers a [`FuzzProgram`] to a well-formed Clight module, its global
/// environment, and the thread entry points (`thread0`, `thread1`, …).
/// Globals are initialized to distinct small values so collapsing two
/// of them is observable.
#[must_use]
pub fn lower(p: &FuzzProgram) -> (ClightModule, GlobalEnv, Vec<String>) {
    lower_prefixed(p, "", 8)
}

/// Like [`lower`], but namespaced for multi-module programs: every
/// cross-module name — globals `g{i}`, helpers `h{i}`, entries
/// `thread{t}` — is prefixed with `prefix` (e.g. `"m3_"`), and the
/// unit's globals are allocated from `base` upwards so separately
/// lowered units occupy disjoint address ranges and link. Calls to
/// `lock`/`unlock` stay unprefixed: they resolve to the shared
/// concurrent object at link time. Function-local names (temporaries,
/// addressable locals, loop counters) need no namespacing.
#[must_use]
pub fn lower_prefixed(
    p: &FuzzProgram,
    prefix: &str,
    base: u64,
) -> (ClightModule, GlobalEnv, Vec<String>) {
    let mut ge = GlobalEnv::with_base(base);
    for i in 0..p.globals {
        ge.define(format!("{prefix}g{i}"), Val::Int(i64::from(i) + 1));
    }
    let mut funcs = Vec::new();
    let mut entries = Vec::new();
    for (t, body) in p.threads.iter().enumerate() {
        let name = format!("{prefix}thread{t}");
        funcs.push((name.clone(), lower_thread(p, prefix, body)));
        entries.push(name);
    }
    for (i, h) in p.helpers.iter().enumerate() {
        funcs.push((format!("{prefix}h{i}"), lower_helper(h)));
    }
    (ClightModule::new(funcs), ge, entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_clight::ClightLang;
    use ccc_core::world::run_main;

    #[test]
    fn lowered_programs_are_well_formed_and_terminate() {
        let p = FuzzProgram {
            globals: 2,
            helpers: vec![HelperSpec {
                ops: vec![(SBin::Add, 3), (SBin::Mul, 2)],
            }],
            threads: vec![vec![
                SStmt::SetTemp(0, SExpr::Const(5)),
                SStmt::Loop(
                    3,
                    vec![SStmt::SetGlobal(
                        0,
                        SExpr::Bin(
                            SBin::Add,
                            Box::new(SExpr::Global(0)),
                            Box::new(SExpr::Temp(0)),
                        ),
                    )],
                ),
                SStmt::Call(1, 0, SExpr::Temp(0)),
                SStmt::CallDrop(0, SExpr::Const(1)),
                SStmt::PtrWrite(0, SExpr::Const(9)),
                SStmt::If(
                    SExpr::Bin(
                        SBin::Lt,
                        Box::new(SExpr::Const(0)),
                        Box::new(SExpr::Const(1)),
                    ),
                    vec![SStmt::Print(SExpr::Global(1))],
                    vec![],
                ),
            ]],
        };
        assert!(p.is_sequential());
        let (m, ge, entries) = lower(&p);
        m.validate().expect("well-formed");
        let (v, _, ev) =
            run_main(&ClightLang, &m, &ge, &entries[0], &[], 1_000_000).expect("terminates");
        // t0=5, loop adds 5 three times to g0(=1)=16, t1 = h0(5) = 16,
        // v0 = 9 via pointer; print(g1=2); summary = 5+16+9 = 30.
        assert_eq!(v, Val::Int(30));
        assert_eq!(ev.len(), 2, "{ev:?}");
    }

    #[test]
    fn out_of_range_indices_are_wrapped_not_rejected() {
        let p = FuzzProgram {
            globals: 1,
            helpers: vec![],
            threads: vec![vec![
                SStmt::SetTemp(200, SExpr::Global(77)),
                SStmt::SetVar(9, SExpr::Temp(200)),
                SStmt::Call(0, 3, SExpr::Const(1)), // no helpers: degrades to Set
                SStmt::CallDrop(3, SExpr::Const(1)), // no helpers: degrades to Skip
            ]],
        };
        let (m, ge, entries) = lower(&p);
        m.validate().expect("well-formed");
        assert!(run_main(&ClightLang, &m, &ge, &entries[0], &[], 100_000).is_some());
    }

    #[test]
    fn locked_sections_are_detected() {
        let p = FuzzProgram {
            globals: 1,
            helpers: vec![],
            threads: vec![vec![SStmt::Loop(
                2,
                vec![SStmt::Locked(vec![SStmt::SetGlobal(0, SExpr::Const(1))])],
            )]],
        };
        assert!(p.uses_lock());
        assert!(!p.is_sequential());
        assert_eq!(p.size(), 3);
    }
}
