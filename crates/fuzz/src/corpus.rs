//! The persisted regression corpus.
//!
//! Every counterexample the fuzzer finds is shrunk to a minimal
//! program and written to a text file (see [`crate::text`] for the
//! format) whose header records which mutant it kills — or `none` for
//! a genuine pipeline bug. `cargo test` replays the whole corpus
//! deterministically: a mutant entry must still be killed by its
//! program, and a `none` entry must pass the clean oracle once the bug
//! it witnessed is fixed.

use crate::oracle::{check_program, OracleCfg};
use crate::shrink::shrink;
use crate::spec::FuzzProgram;
use crate::text::{parse_program, program_to_text, ParseError};
use ccc_compiler::Mutant;

/// One corpus entry: a program plus the mutant it kills (`None` for a
/// clean-pipeline counterexample).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CorpusEntry {
    /// The mutant this program kills, if any.
    pub mutant: Option<Mutant>,
    /// The (shrunk) program.
    pub program: FuzzProgram,
}

fn mutant_token(m: Option<Mutant>) -> String {
    match m {
        None => "none".into(),
        Some(m) => format!("{m:?}"),
    }
}

fn parse_mutant(tok: &str) -> Result<Option<Mutant>, ParseError> {
    if tok == "none" {
        return Ok(None);
    }
    Mutant::ALL
        .iter()
        .find(|m| format!("{m:?}") == tok)
        .copied()
        .map(Some)
        .ok_or_else(|| ParseError(format!("unknown mutant `{tok}`")))
}

impl CorpusEntry {
    /// Serializes the entry to the corpus file format.
    #[must_use]
    pub fn to_text(&self) -> String {
        format!(
            "# mutant: {}\n{}",
            mutant_token(self.mutant),
            program_to_text(&self.program)
        )
    }

    /// Parses a corpus file.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on a malformed header or program.
    pub fn from_text(text: &str) -> Result<CorpusEntry, ParseError> {
        let mut mutant = None;
        for line in text.lines() {
            if let Some(rest) = line.trim().strip_prefix("# mutant:") {
                mutant = Some(parse_mutant(rest.trim())?);
            }
        }
        let mutant = mutant.ok_or_else(|| ParseError("missing `# mutant:` header".into()))?;
        Ok(CorpusEntry {
            mutant,
            program: parse_program(text)?,
        })
    }

    /// Replays the entry: a mutant entry must still be killed (and the
    /// clean pipeline must still accept its program); a `none` entry
    /// must pass the clean oracle.
    ///
    /// # Errors
    ///
    /// Returns a description of the replay violation.
    pub fn replay(&self, cfg: &OracleCfg) -> Result<(), String> {
        match self.mutant {
            Some(m) => {
                if let Err(e) = check_program(&self.program, None, cfg) {
                    return Err(format!(
                        "corpus program no longer passes the clean pipeline: {e}"
                    ));
                }
                match check_program(&self.program, Some(m), cfg) {
                    Err(_) => Ok(()),
                    Ok(()) => Err(format!("mutant {m} is no longer killed by its witness")),
                }
            }
            None => check_program(&self.program, None, cfg)
                .map_err(|e| format!("regression reappeared: {e}")),
        }
    }
}

/// Shrinks a failing program against its mutant and packages it as a
/// corpus entry. The predicate preserves "the mutant is killed while
/// the clean pipeline agrees", so shrinking can never land on a
/// generator artifact.
#[must_use]
pub fn shrink_to_entry(
    p: &FuzzProgram,
    mutant: Option<Mutant>,
    budget: usize,
    cfg: &OracleCfg,
) -> CorpusEntry {
    let program = shrink(p, budget, |q| {
        check_program(q, mutant, cfg).is_err()
            && (mutant.is_none() || check_program(q, None, cfg).is_ok())
    });
    CorpusEntry { mutant, program }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SExpr, SStmt};

    #[test]
    fn entries_round_trip() {
        let e = CorpusEntry {
            mutant: Some(Mutant::Selection),
            program: FuzzProgram {
                globals: 1,
                helpers: vec![],
                threads: vec![vec![SStmt::Print(SExpr::Const(1))]],
            },
        };
        let text = e.to_text();
        assert_eq!(CorpusEntry::from_text(&text).expect("parses"), e);
        let none = CorpusEntry {
            mutant: None,
            ..e.clone()
        };
        assert_eq!(
            CorpusEntry::from_text(&none.to_text()).expect("parses"),
            none
        );
    }

    #[test]
    fn malformed_entries_are_rejected() {
        assert!(
            CorpusEntry::from_text("(thread (print 1))").is_err(),
            "no header"
        );
        assert!(
            CorpusEntry::from_text("# mutant: Frobnicate\n(thread (print 1))").is_err(),
            "unknown mutant"
        );
    }
}
