//! Differential harness for the static rely-guarantee certifier: the
//! static per-module verdict ([`ccc_analysis::rg_cert`]) against the
//! exhaustive exploration (`ccc_core::race::check_drf_par`).
//!
//! The contract is one-directional, like every static/dynamic pair in
//! the repo: the static verdict must *over-approximate* interference.
//! A certificate that comes back self-stable on a program whose
//! exploration finds a race is a soundness bug; the converse (static
//! `MayInterfere`, dynamic DRF) is honest imprecision and is merely
//! counted.

use crate::spec::{lower, FuzzProgram};
use ccc_analysis::{infer_lock_model, infer_rg_cert, rg_cert_violation, RgCert};
use ccc_core::race::check_drf_par;
use ccc_core::refine::ExploreCfg;
use ccc_sync::lock::lock_spec;

/// One static-vs-dynamic comparison.
#[derive(Clone, Debug)]
pub struct RgDiffReport {
    /// The (checker-admitted) certificate of the client module.
    pub cert: RgCert,
    /// The static verdict: the module's own threads cannot interfere.
    pub certified_stable: bool,
    /// The exploration's DRF verdict; `None` when the budget was
    /// exhausted without finding a race (inconclusive).
    pub explored_drf: Option<bool>,
    /// States the exploration visited (the cost the static side
    /// avoided).
    pub explored_states: usize,
}

/// Certifies the lowered client of `p` statically and explores it
/// dynamically against the standard lock object, failing on any
/// soundness violation: the fresh certificate must pass its trusted
/// checker, and a self-stable verdict must never coexist with a found
/// race.
///
/// # Errors
///
/// Describes the violation (a checker rejection or a static false
/// negative).
pub fn check_rg_vs_exploration(p: &FuzzProgram, cfg: &ExploreCfg) -> Result<RgDiffReport, String> {
    let (module, ge, entries) = lower(p);
    let (lock, _lock_ge) = lock_spec("L");
    let model = infer_lock_model(&lock);
    let cert = infer_rg_cert("client", &module, &entries, &model);
    if let Some(d) = rg_cert_violation(&cert, &module, &entries, &model) {
        return Err(format!("fresh certificate rejected by its checker: {d}"));
    }
    let certified_stable = cert.is_stable();
    let loaded = crate::link::load_client(module, ge, entries);
    let drf = check_drf_par(&loaded, cfg).map_err(|e| format!("load failed: {e:?}"))?;
    let explored_drf = if drf.is_drf() {
        (!drf.truncated).then_some(true)
    } else {
        Some(false)
    };
    if certified_stable && explored_drf == Some(false) {
        return Err(format!(
            "static RG certificate is self-stable but exploration found a race \
             ({} states): {:?}",
            drf.states, cert.guarantee
        ));
    }
    Ok(RgDiffReport {
        cert,
        certified_stable,
        explored_drf,
        explored_states: drf.states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_program;

    #[test]
    fn generated_corpus_has_no_static_false_negatives() {
        let cfg = ExploreCfg {
            max_states: 20_000,
            ..ExploreCfg::default()
        };
        let mut stable = 0;
        for seed in 0..40 {
            let p = gen_program(seed, 10);
            let r = check_rg_vs_exploration(&p, &cfg).expect("sound");
            if r.certified_stable {
                stable += 1;
            }
        }
        assert!(stable > 0, "corpus never certifies — vacuous differential");
    }
}
