//! Cached-vs-fresh differential oracle: the fuzzing mode for the
//! incremental compilation cache.
//!
//! The cache's contract is *observational transparency*: for any
//! module, compiling through the cache — miss, then hit, then hit after
//! tampering — must produce artifacts and witnesses bit-identical to a
//! cold build, and a tampered entry must be detected, evicted, and
//! recompiled rather than served. This module checks that contract for
//! one generated [`FuzzProgram`]; the sepcomp test battery drives it
//! over the proptest stream, and any failure is a cache bug by
//! construction (the inputs are well-formed by generation).

use crate::spec::{lower, FuzzProgram};
use ccc_analysis::sepcomp::TransvalCertifier;
use ccc_compiler::cache::{CacheOutcome, Certifier, CompileCache, RecheckDepth};
use ccc_compiler::driver::compile_with_artifacts;

fn fail(phase: &str, detail: impl std::fmt::Display) -> String {
    format!("cachediff/{phase}: {detail}")
}

/// Checks the cache's observational-transparency contract on one
/// program: a miss, a hit, and a poisoned-entry recovery must all
/// reproduce the cold build exactly.
///
/// # Errors
///
/// Describes the first phase at which the cached result diverged from
/// the fresh one (or a poisoned entry went undetected).
pub fn check_cached_vs_fresh(p: &FuzzProgram, depth: RecheckDepth) -> Result<(), String> {
    let (m, _ge, _entries) = lower(p);
    let certifier = TransvalCertifier;

    // The cold reference: compile + validate with no cache involved.
    let fresh_arts = compile_with_artifacts(&m).map_err(|e| fail("fresh-compile", e))?;
    let fresh_witness = certifier
        .certify(&fresh_arts)
        .map_err(|e| fail("fresh-certify", e))?;

    let cache = CompileCache::new();
    let miss = cache
        .compile_cached(&m, &certifier, depth)
        .map_err(|e| fail("miss", e))?;
    if miss.outcome != CacheOutcome::Miss {
        return Err(fail(
            "miss",
            format!("expected Miss, got {:?}", miss.outcome),
        ));
    }
    if *miss.arts != fresh_arts {
        return Err(fail("miss", "artifacts differ from cold build"));
    }
    if miss.witness_json != fresh_witness {
        return Err(fail("miss", "witness differs from cold build"));
    }

    let hit = cache
        .compile_cached(&m, &certifier, depth)
        .map_err(|e| fail("hit", e))?;
    if hit.outcome != CacheOutcome::Hit {
        return Err(fail("hit", format!("expected Hit, got {:?}", hit.outcome)));
    }
    if *hit.arts != fresh_arts || hit.witness_json != fresh_witness {
        return Err(fail("hit", "served entry differs from cold build"));
    }

    // Poison the stored witness (flip the first discharged obligation)
    // and require detection + transparent recovery. Every generated
    // program has at least one obligation, but guard anyway.
    let mut entry = cache
        .entry(hit.hash)
        .ok_or_else(|| fail("tamper", "entry vanished"))?;
    let tampered = entry
        .witness_json
        .replacen("\"discharged\":true", "\"discharged\":false", 1);
    if tampered == entry.witness_json {
        return Ok(());
    }
    entry.witness_json = tampered;
    cache.put_entry(entry);
    let recovered = cache
        .compile_cached(&m, &certifier, depth)
        .map_err(|e| fail("tamper", e))?;
    if !matches!(recovered.outcome, CacheOutcome::Rejected(_)) {
        return Err(fail(
            "tamper",
            format!("poisoned entry served as {:?}", recovered.outcome),
        ));
    }
    if *recovered.arts != fresh_arts || recovered.witness_json != fresh_witness {
        return Err(fail("tamper", "recovered result differs from cold build"));
    }
    Ok(())
}

/// [`check_cached_vs_fresh`] on one generated program, by seed — the
/// shape the campaign and CI smoke run use.
///
/// # Errors
///
/// Propagates the underlying contract violation.
pub fn check_cached_vs_fresh_seeded(
    seed: u64,
    size: u32,
    depth: RecheckDepth,
) -> Result<(), String> {
    check_cached_vs_fresh(&crate::gen::gen_program(seed, size), depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_holds_on_a_few_seeds_at_both_depths() {
        for seed in 0..4 {
            check_cached_vs_fresh_seeded(seed, 6, RecheckDepth::Structural)
                .unwrap_or_else(|e| panic!("seed {seed} structural: {e}"));
        }
        check_cached_vs_fresh_seeded(5, 6, RecheckDepth::Full).expect("full depth");
    }
}
