//! The pipeline-wide differential oracle.
//!
//! [`check_program`] lowers a [`FuzzProgram`], compiles it through the
//! (optionally mutated) extended pipeline, and cross-checks **every**
//! IR's footprint-instrumented interpreter plus the SC and TSO machines
//! against the Clight source:
//!
//! * **sequential shape** — each stage is executed deterministically
//!   and must agree with the source on return value, event trace,
//!   final shared memory, and (via `fp_match` with the identity `µ`)
//!   the global part of the dynamic footprint;
//! * **concurrent shape** — each stage is linked against the CImp lock
//!   object and explored exhaustively; its preemptive trace set and DRF
//!   verdict must agree with the source's, and when the source is DRF
//!   the TSO machine must agree with the SC machine on the final
//!   assembly (TSO robustness of lock-disciplined clients);
//! * both shapes additionally exercise the schedule record/replay API:
//!   a recorded random schedule must replay to the identical run, and a
//!   completed recorded run must appear in the exhaustively collected
//!   trace set.
//!
//! The first disagreeing stage *localizes* the failure: stages are
//! compared in pipeline order, so the owning pass is the one between
//! the last agreeing IR and the first disagreeing one.

use crate::spec::{lower, FuzzProgram};
use ccc_analysis::transval::Verdict;
use ccc_analysis::{validate_artifacts, validate_id_trans, Validation};
use ccc_clight::ClightLang;
use ccc_compiler::driver::CompilationArtifacts;
use ccc_compiler::{
    compile_with_artifacts_mutated, id_trans_drop_assert, id_trans_mutated, Mutant,
};
use ccc_core::footprint::{fp_match, Mu};
use ccc_core::lang::Lang;
use ccc_core::mem::GlobalEnv;
use ccc_core::race::check_drf_par;
use ccc_core::refine::{collect_traces_preemptive, trace_equiv, ExploreCfg, Terminal, Trace};
use ccc_core::world::{replay_schedule, run_main_traced, run_schedule_recorded, Loaded, RunEnd};
use ccc_core::{Reduction, VisitedMode};
use ccc_machine::{X86Sc, X86Tso};
use ccc_sync::lock::lock_spec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning for one oracle invocation.
#[derive(Clone, Debug)]
pub struct OracleCfg {
    /// Fuel for the deterministic per-stage runs (sequential shape).
    pub seq_fuel: usize,
    /// Exploration budget for the concurrent shape.
    pub explore: ExploreCfg,
    /// Step bound for the schedule record/replay probe.
    pub schedule_steps: usize,
    /// Seed for the random schedule of the record/replay probe.
    pub schedule_seed: u64,
    /// How to validate each compilation: symbolically
    /// ([`Validation::Static`], with the differential check only
    /// covering the passes the symbolic validator cannot), dynamically
    /// ([`Validation::Differential`], the pre-existing oracle), or both
    /// ([`Validation::Both`], the default — any disagreement between
    /// the two checkers is itself reported as a failure).
    pub validation: Validation,
}

impl Default for OracleCfg {
    fn default() -> OracleCfg {
        OracleCfg {
            seq_fuel: 1_000_000,
            // The state cap doubles as the memory/time bound per stage:
            // explorations that hit it are *inconclusive* (the oracle
            // treats them as agreement rather than risking false kills),
            // so a tighter cap only converts pathological inputs into
            // fast no-ops. 40k states keeps the worst TSO store-buffer
            // blowups under a second each.
            // Ample reduction + the work-stealing frontier keep the
            // per-stage cost low; `Exact` visited storage (no hash
            // compaction) because a fingerprint collision could hide a
            // state and turn a genuine disagreement into silent
            // agreement.
            explore: ExploreCfg {
                fuel: 400,
                max_states: 40_000,
                reduction: Reduction::Ample,
                threads: 2,
                visited: VisitedMode::Exact,
                ..ExploreCfg::default()
            },
            schedule_steps: 100_000,
            schedule_seed: 7,
            validation: Validation::Both,
        }
    }
}

/// The pipeline pass whose symbolic validation covers a differential
/// stage name. Every compiled stage is covered; only the TSO machine
/// comparison (`Asm/TSO`) and the schedule replay probe have no static
/// counterpart.
fn owning_pass(stage: &str) -> Option<&'static str> {
    match stage {
        "Cminor" => Some("Cshmgen/Cminorgen"),
        "CminorSel" => Some("Selection"),
        "RTL" => Some("RTLgen"),
        "RTL/tailcall" => Some("Tailcall"),
        "RTL/renumber" => Some("Renumber"),
        "Constprop" => Some("Constprop"),
        "LTL" => Some("Allocation"),
        "LTL/tunneled" => Some("Tunneling"),
        "Linear" => Some("Linearize"),
        "Linear/clean" => Some("CleanupLabels"),
        "Mach" => Some("Stacking"),
        "Asm/SC" => Some("Asmgen"),
        _ => None,
    }
}

/// A differential disagreement, localized to the first stage that
/// diverged from the Clight source.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuzzFailure {
    /// The first disagreeing stage (e.g. `"RTL/tailcall"`, `"Asm/TSO"`,
    /// `"schedule-replay"`).
    pub stage: String,
    /// What disagreed.
    pub detail: String,
}

impl std::fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.stage, self.detail)
    }
}

fn fail(stage: &str, detail: impl Into<String>) -> FuzzFailure {
    FuzzFailure {
        stage: stage.to_string(),
        detail: detail.into(),
    }
}

/// One deterministic instrumented run: value, events, final values of
/// the shared globals, and the global part of the dynamic footprint.
type SeqObs = Option<(
    ccc_core::mem::Val,
    Vec<ccc_core::lang::Event>,
    Vec<Option<ccc_core::mem::Val>>,
    ccc_core::footprint::Footprint,
)>;

fn observe_seq<L: Lang>(
    lang: &L,
    module: &L::Module,
    ge: &GlobalEnv,
    entry: &str,
    fuel: usize,
) -> SeqObs {
    let (v, mem, events, fp) = run_main_traced(lang, module, ge, entry, &[], fuel)?;
    let globals: Vec<_> = ge.initial_memory().dom().map(|a| mem.load(a)).collect();
    let keep: std::collections::BTreeSet<_> = ge.initial_memory().dom().collect();
    let gfp = ccc_core::footprint::Footprint {
        rs: fp.rs.intersection(&keep).copied().collect(),
        ws: fp.ws.intersection(&keep).copied().collect(),
    };
    Some((v, events, globals, gfp))
}

fn compare_seq(stage: &str, src: &SeqObs, tgt: &SeqObs, mu: &Mu) -> Result<(), FuzzFailure> {
    match (src, tgt) {
        (None, None) => Ok(()),
        (Some(_), None) => Err(fail(stage, "stage aborted where the source terminated")),
        (None, Some(_)) => Err(fail(stage, "stage terminated where the source did not")),
        (Some((sv, se, sg, sfp)), Some((tv, te, tg, tfp))) => {
            if sv != tv {
                return Err(fail(
                    stage,
                    format!("return values differ: {sv:?} vs {tv:?}"),
                ));
            }
            if se != te {
                return Err(fail(
                    stage,
                    format!("event traces differ: {se:?} vs {te:?}"),
                ));
            }
            if sg != tg {
                return Err(fail(
                    stage,
                    format!("final globals differ: {sg:?} vs {tg:?}"),
                ));
            }
            if !fp_match(mu, sfp, tfp) {
                return Err(fail(
                    stage,
                    format!("global footprints inconsistent: {sfp:?} vs {tfp:?}"),
                ));
            }
            Ok(())
        }
    }
}

/// Exhaustive observation of one linked concurrent stage: trace set and
/// DRF verdict. Each component is `None` when its exploration budget
/// was exhausted — inconclusive, so no comparison is made against it.
/// The two are tracked separately because they truncate differently: a
/// racing spin loop can blow up the trace set while the race itself is
/// found within a handful of states.
struct ConcObs {
    traces: Option<ccc_core::refine::TraceSet>,
    drf: Option<bool>,
}

fn observe_conc<L>(loaded: &Loaded<L>, cfg: &ExploreCfg) -> Result<ConcObs, String>
where
    L: Lang + Sync,
    L::Module: Sync,
    L::Core: Send + Sync,
{
    let ts = collect_traces_preemptive(loaded, cfg).map_err(|e| format!("{e:?}"))?;
    let drf = check_drf_par(loaded, cfg).map_err(|e| format!("{e:?}"))?;
    Ok(ConcObs {
        traces: (!ts.truncated).then_some(ts),
        // A found race is a definite verdict even if the exploration
        // stopped early — only a raceless truncated search is open.
        drf: if !drf.is_drf() {
            Some(false)
        } else {
            (!drf.truncated).then_some(true)
        },
    })
}

fn compare_conc(stage: &str, src: &ConcObs, tgt: &ConcObs) -> Result<(), FuzzFailure> {
    if let (Some(s), Some(t)) = (&src.traces, &tgt.traces) {
        if !trace_equiv(s, t) {
            return Err(fail(
                stage,
                format!(
                    "trace sets differ: {} source traces vs {} stage traces",
                    s.traces.len(),
                    t.traces.len()
                ),
            ));
        }
    }
    if let (Some(s), Some(t)) = (src.drf, tgt.drf) {
        if s != t {
            return Err(fail(
                stage,
                format!("DRF verdicts differ: source {s} vs stage {t}"),
            ));
        }
    }
    Ok(())
}

/// Probes the schedule record/replay API on a loaded program: a random
/// recorded schedule must replay to the identical run, and (when the
/// exhaustive trace set is available) a completed run must appear in it.
fn check_schedule_replay<L: Lang>(
    loaded: &Loaded<L>,
    traces: Option<&ccc_core::refine::TraceSet>,
    cfg: &OracleCfg,
) -> Result<(), FuzzFailure> {
    let stage = "schedule-replay";
    let mut rng = StdRng::seed_from_u64(cfg.schedule_seed);
    let w = loaded
        .load()
        .map_err(|e| fail(stage, format!("load failed: {e:?}")))?;
    let (r1, sched) = run_schedule_recorded(loaded, w, cfg.schedule_steps, |n| rng.gen_range(0..n));
    let r2 = replay_schedule(loaded, cfg.schedule_steps, &sched)
        .map_err(|e| fail(stage, format!("replay load failed: {e:?}")))?;
    if r1 != r2 {
        return Err(fail(
            stage,
            format!("recorded run and its replay differ: {r1:?} vs {r2:?}"),
        ));
    }
    if let (RunEnd::Done, Some(ts)) = (r1.end, traces) {
        let t = Trace {
            events: r1.events,
            end: Terminal::Done,
        };
        if !ts.traces.contains(&t) {
            return Err(fail(
                stage,
                format!("scheduled run produced a trace outside the exhaustive set: {t:?}"),
            ));
        }
    }
    Ok(())
}

/// Runs the full differential oracle on one program, optionally with a
/// pipeline mutant enabled.
///
/// `Ok(())` means every comparison agreed (or was inconclusive because
/// an exploration budget was exhausted, which is reported as agreement
/// to avoid false kills).
///
/// # Errors
///
/// Returns the first localized disagreement.
pub fn check_program(
    p: &FuzzProgram,
    mutant: Option<Mutant>,
    cfg: &OracleCfg,
) -> Result<(), FuzzFailure> {
    let (m, ge, entries) = lower(p);
    let arts = compile_with_artifacts_mutated(&m, mutant)
        .map_err(|e| fail("compile", format!("{e:?}")))?;

    // Static translation validation first: every supported pass's run
    // must discharge its per-block simulation obligations. A rejection
    // kills the input without executing a single instruction, and is
    // localized to the owning pass via the `transval/<pass>` stage.
    let mut static_validated = std::collections::BTreeSet::new();
    if cfg.validation != Validation::Differential {
        let witness = validate_artifacts(&arts);
        if let Some(rej) = witness.rejected().next() {
            let first = rej
                .diagnostics()
                .into_iter()
                .next()
                .map_or_else(String::new, |d| d.to_string());
            return Err(fail(
                &format!("transval/{}", rej.pass),
                format!(
                    "static validation rejected ({} undischarged obligations): {first}",
                    rej.failures().count()
                ),
            ));
        }
        static_validated = witness
            .witnesses
            .iter()
            .filter(|w| w.verdict == Verdict::Validated)
            .map(|w| w.pass.clone())
            .collect();
    }

    let result = check_differential(p, &arts, &ge, &entries, mutant, cfg);
    // In `Both` mode a dynamic failure at a statically validated pass
    // is a disagreement between the two checkers — one of them is wrong
    // (or sees a miscompilation the other cannot). Annotate it so the
    // shrunk, persisted counterexample carries the disagreement.
    match result {
        Err(f) if cfg.validation == Validation::Both => {
            match owning_pass(&f.stage).filter(|pass| static_validated.contains(*pass)) {
                Some(pass) => Err(FuzzFailure {
                    stage: f.stage.clone(),
                    detail: format!(
                        "static/differential disagreement: transval validated pass {pass} \
                         but the differential oracle failed: {}",
                        f.detail
                    ),
                }),
                None => Err(f),
            }
        }
        r => r,
    }
}

fn check_differential(
    p: &FuzzProgram,
    arts: &CompilationArtifacts,
    ge: &GlobalEnv,
    entries: &[String],
    mutant: Option<Mutant>,
    cfg: &OracleCfg,
) -> Result<(), FuzzFailure> {
    // In `Static` mode the statically validated passes are not
    // re-checked differentially — only the TSO machine comparison and
    // the schedule record/replay probe still execute code.
    let skip = |s: &str| cfg.validation == Validation::Static && owning_pass(s).is_some();
    let cp = arts
        .rtl_constprop
        .as_ref()
        .expect("extended pipeline always runs Constprop");

    if p.is_sequential() {
        let entry = &entries[0];
        let mu = Mu::identity(ge.initial_memory().dom());
        let src = observe_seq(&ClightLang, &arts.clight, ge, entry, cfg.seq_fuel);
        if src.is_none() {
            return Err(fail(
                "Clight",
                "the source itself aborted or ran out of fuel",
            ));
        }
        macro_rules! stage {
            ($name:expr, $lang:expr, $module:expr) => {
                if !skip($name) {
                    compare_seq(
                        $name,
                        &src,
                        &observe_seq(&$lang, $module, ge, entry, cfg.seq_fuel),
                        &mu,
                    )?;
                }
            };
        }
        stage!("Cminor", ccc_compiler::cminor::CMINOR, &arts.cminor);
        stage!(
            "CminorSel",
            ccc_compiler::cminorsel::CMINORSEL,
            &arts.cminorsel
        );
        stage!("RTL", ccc_compiler::rtl::RtlLang, &arts.rtl);
        stage!(
            "RTL/tailcall",
            ccc_compiler::rtl::RtlLang,
            &arts.rtl_tailcall
        );
        stage!(
            "RTL/renumber",
            ccc_compiler::rtl::RtlLang,
            &arts.rtl_renumber
        );
        stage!("Constprop", ccc_compiler::rtl::RtlLang, cp);
        stage!("LTL", ccc_compiler::ltl::LtlLang, &arts.ltl);
        stage!(
            "LTL/tunneled",
            ccc_compiler::ltl::LtlLang,
            &arts.ltl_tunneled
        );
        stage!("Linear", ccc_compiler::linear::LinearLang, &arts.linear);
        stage!(
            "Linear/clean",
            ccc_compiler::linear::LinearLang,
            &arts.linear_clean
        );
        stage!("Mach", ccc_compiler::mach::MachLang, &arts.mach);
        stage!("Asm/SC", X86Sc, &arts.asm);
        stage!("Asm/TSO", X86Tso, &arts.asm);

        // Schedule record/replay probe on the closed source program.
        let loaded = Loaded::new(ccc_core::lang::Prog::new(
            ClightLang,
            vec![(arts.clight.clone(), ge.clone())],
            vec![entry.clone()],
        ))
        .map_err(|e| fail("Clight", format!("source load failed: {e:?}")))?;
        check_schedule_replay(&loaded, None, cfg)?;
        return Ok(());
    }

    // --- Concurrent shape: link every stage against the lock object ---
    let (lock, lock_ge) = lock_spec("L");
    // The object module goes through the identity transformation; one
    // mutant strips the atomic blocks, the other erases the asserts
    // inside them.
    let tgt_lock = match mutant {
        Some(Mutant::IdTrans) => id_trans_mutated(&lock),
        Some(Mutant::IdTransDropAssert) => id_trans_drop_assert(&lock),
        _ => lock.clone(),
    };

    // Static validation of the object-level transformation: atomic
    // bracketing (and everything inside it) must survive bit-for-bit.
    if cfg.validation != Validation::Differential {
        let w = validate_id_trans(&lock, &tgt_lock);
        if w.verdict == Verdict::Rejected {
            let first = w
                .diagnostics()
                .into_iter()
                .next()
                .map_or_else(String::new, |d| d.to_string());
            return Err(fail(
                "transval/IdTrans",
                format!(
                    "static validation rejected ({} undischarged obligations): {first}",
                    w.failures().count()
                ),
            ));
        }
    }

    let src_loaded = crate::link::link_with_object(
        ClightLang,
        arts.clight.clone(),
        ge.clone(),
        lock.clone(),
        lock_ge.clone(),
        entries.to_vec(),
    )
    .map_err(|e| fail("Clight", format!("source link failed: {e:?}")))?;
    let src = observe_conc(&src_loaded, &cfg.explore)
        .map_err(|e| fail("Clight", format!("source exploration failed: {e}")))?;
    if src.traces.is_none() && src.drf.is_none() {
        return Ok(()); // inconclusive: budget exhausted on the source
    }

    // Static rely-guarantee probe: infer the source module's
    // interference certificate and compare its verdict against the
    // exploration. The static verdict may be *stricter* (false
    // positives are honest imprecision) but never more permissive — a
    // self-stable certificate on a program whose exploration finds a
    // race is a certifier soundness bug, as is a fresh certificate the
    // trusted checker rejects.
    if cfg.validation != Validation::Differential {
        let model = ccc_analysis::infer_lock_model(&lock);
        let cert = ccc_analysis::infer_rg_cert("client", &arts.clight, entries, &model);
        if let Some(d) = ccc_analysis::rg_cert_violation(&cert, &arts.clight, entries, &model) {
            return Err(fail(
                "rg_cert",
                format!("inferred certificate rejected by its own checker: {d}"),
            ));
        }
        if cert.is_stable() && src.drf == Some(false) {
            return Err(fail(
                "rg_cert",
                "static RG certificate is self-stable but source exploration found a race",
            ));
        }
    }

    macro_rules! conc_stage {
        ($name:expr, $lang:expr, $module:expr) => {{
            if skip($name) {
                None
            } else {
                let loaded = crate::link::link_with_object(
                    $lang,
                    $module.clone(),
                    ge.clone(),
                    tgt_lock.clone(),
                    lock_ge.clone(),
                    entries.to_vec(),
                )
                .map_err(|e| fail($name, format!("stage link failed: {e:?}")))?;
                let obs = observe_conc(&loaded, &cfg.explore)
                    .map_err(|e| fail($name, format!("stage exploration failed: {e}")))?;
                compare_conc($name, &src, &obs)?;
                Some(obs)
            }
        }};
    }

    let _ = conc_stage!("Cminor", ccc_compiler::cminor::CMINOR, &arts.cminor);
    let _ = conc_stage!(
        "CminorSel",
        ccc_compiler::cminorsel::CMINORSEL,
        &arts.cminorsel
    );
    let _ = conc_stage!("RTL", ccc_compiler::rtl::RtlLang, &arts.rtl);
    let _ = conc_stage!(
        "RTL/tailcall",
        ccc_compiler::rtl::RtlLang,
        &arts.rtl_tailcall
    );
    let _ = conc_stage!(
        "RTL/renumber",
        ccc_compiler::rtl::RtlLang,
        &arts.rtl_renumber
    );
    let _ = conc_stage!("Constprop", ccc_compiler::rtl::RtlLang, cp);
    let _ = conc_stage!("LTL", ccc_compiler::ltl::LtlLang, &arts.ltl);
    let _ = conc_stage!(
        "LTL/tunneled",
        ccc_compiler::ltl::LtlLang,
        &arts.ltl_tunneled
    );
    let _ = conc_stage!("Linear", ccc_compiler::linear::LinearLang, &arts.linear);
    let _ = conc_stage!(
        "Linear/clean",
        ccc_compiler::linear::LinearLang,
        &arts.linear_clean
    );
    let _ = conc_stage!("Mach", ccc_compiler::mach::MachLang, &arts.mach);
    let sc = conc_stage!("Asm/SC", X86Sc, &arts.asm);

    // TSO robustness: a DRF lock-disciplined client must show exactly
    // its SC behaviour on the TSO machine (Thm. of §2 / the TSO story
    // of the Asm machines). Racy clients may legitimately differ. In
    // `Static` mode the SC stage comparison above was skipped, so the
    // SC trace set is computed here just for the TSO comparison.
    if src.drf == Some(true) {
        let computed;
        let sc_traces = match &sc {
            Some(obs) => obs.traces.as_ref(),
            None => {
                let sc_loaded = crate::link::link_with_object(
                    X86Sc,
                    arts.asm.clone(),
                    ge.clone(),
                    tgt_lock.clone(),
                    lock_ge.clone(),
                    entries.to_vec(),
                )
                .map_err(|e| fail("Asm/TSO", format!("sc link failed: {e:?}")))?;
                computed = collect_traces_preemptive(&sc_loaded, &cfg.explore)
                    .map_err(|e| fail("Asm/TSO", format!("sc exploration failed: {e:?}")))?;
                (!computed.truncated).then_some(&computed)
            }
        };
        if let Some(sc_traces) = sc_traces {
            let tso_loaded = crate::link::link_with_object(
                X86Tso,
                arts.asm.clone(),
                ge.clone(),
                tgt_lock.clone(),
                lock_ge.clone(),
                entries.to_vec(),
            )
            .map_err(|e| fail("Asm/TSO", format!("stage link failed: {e:?}")))?;
            let tso = collect_traces_preemptive(&tso_loaded, &cfg.explore)
                .map_err(|e| fail("Asm/TSO", format!("stage exploration failed: {e:?}")))?;
            if !tso.truncated && !trace_equiv(sc_traces, &tso) {
                return Err(fail(
                    "Asm/TSO",
                    format!(
                        "DRF client shows TSO-only behaviour: {} SC traces vs {} TSO traces",
                        sc_traces.traces.len(),
                        tso.traces.len()
                    ),
                ));
            }
        }
    }

    check_schedule_replay(&src_loaded, src.traces.as_ref(), cfg)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_program;

    #[test]
    fn clean_pipeline_passes_the_oracle() {
        let cfg = OracleCfg::default();
        for seed in 0..30u64 {
            let p = gen_program(seed, (seed % 8) as u32);
            if let Err(e) = check_program(&p, None, &cfg) {
                panic!(
                    "seed {seed}: clean pipeline failed the oracle: {e}\n{}",
                    crate::text::program_to_text(&p)
                );
            }
        }
    }

    #[test]
    fn a_mutant_is_killed_and_localized() {
        let cfg = OracleCfg::default();
        // The Rtlgen mutant swaps If branches; find a killing input and
        // check the failure is localized no earlier than RTL.
        for seed in 0..200u64 {
            let p = gen_program(seed, (seed % 8) as u32);
            if let Err(e) = check_program(&p, Some(Mutant::Rtlgen), &cfg) {
                assert!(
                    !matches!(e.stage.as_str(), "Cminor" | "CminorSel"),
                    "Rtlgen mutant localized before RTL: {e}"
                );
                return;
            }
        }
        panic!("Rtlgen mutant survived 200 inputs");
    }
}
