//! Seeded structured generation of [`FuzzProgram`] values.
//!
//! The generator is deterministic in `(seed, size)`. `size` indexes the
//! weight tables: small sizes produce short straight-line programs,
//! larger sizes unlock nesting, helpers, loops, and concurrency. Every
//! generated program lowers to a well-formed module by construction
//! (see [`crate::spec`]), so the oracle never wastes budget rejecting
//! inputs.
//!
//! Roughly a quarter of the stream is *concurrent* (two threads whose
//! shared-global accesses sit inside `lock()`/`unlock()` critical
//! sections, with an occasional deliberately racy thread); the rest is
//! *sequential* (one thread, no lock), which is the shape driven
//! through every IR interpreter by the per-stage oracle.

use crate::spec::{FuzzProgram, HelperSpec, SBin, SExpr, SStmt, NUM_TEMPS, NUM_VARS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Ctx {
    /// Number of declared globals (0 disables global expressions).
    globals: u8,
    /// Number of declared helpers (0 disables call statements).
    helpers: u8,
    /// Whether global accesses are allowed outside a locked section
    /// (true for sequential programs and racy concurrent threads).
    free_globals: bool,
    /// Whether `Locked` sections may be generated (concurrent shape
    /// only, and never nested — nesting would self-deadlock).
    locks: bool,
}

fn gen_expr(rng: &mut StdRng, cx: &Ctx, depth: u32, globals_ok: bool) -> SExpr {
    let leaf = |rng: &mut StdRng| match rng.gen_range(0..4u32) {
        0 => SExpr::Const(rng.gen_range(-4..8)),
        1 => SExpr::Temp(rng.gen_range(0..NUM_TEMPS)),
        2 if globals_ok && cx.globals > 0 => SExpr::Global(rng.gen_range(0..cx.globals)),
        _ => SExpr::Var(rng.gen_range(0..NUM_VARS)),
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..8u32) {
        0 => SExpr::Neg(Box::new(gen_expr(rng, cx, depth - 1, globals_ok))),
        1 => SExpr::Not(Box::new(gen_expr(rng, cx, depth - 1, globals_ok))),
        2..=5 => {
            let op = SBin::ALL[rng.gen_range(0..SBin::ALL.len())];
            SExpr::Bin(
                op,
                Box::new(gen_expr(rng, cx, depth - 1, globals_ok)),
                Box::new(gen_expr(rng, cx, depth - 1, globals_ok)),
            )
        }
        6 => {
            // `x - c`: the exact shape the Selection pass folds to an
            // `AddImm`, so the corresponding mutant has prey.
            SExpr::Bin(
                SBin::Sub,
                Box::new(gen_expr(rng, cx, depth - 1, globals_ok)),
                Box::new(SExpr::Const(rng.gen_range(-4..8))),
            )
        }
        _ => leaf(rng),
    }
}

fn gen_block(rng: &mut StdRng, cx: &Ctx, len: u32, depth: u32, in_lock: bool) -> Vec<SStmt> {
    let n = rng.gen_range(1..=len.max(1));
    (0..n).map(|_| gen_stmt(rng, cx, depth, in_lock)).collect()
}

fn gen_stmt(rng: &mut StdRng, cx: &Ctx, depth: u32, in_lock: bool) -> SStmt {
    // Globals may be touched here if the program allows them freely
    // (sequential / racy) or we are inside a critical section.
    let globals_ok = cx.free_globals || in_lock;
    let arm = rng.gen_range(0..14u32);
    match arm {
        // Plain data flow dominates: it feeds every downstream pass.
        0 | 1 => SStmt::SetTemp(
            rng.gen_range(0..NUM_TEMPS),
            gen_expr(rng, cx, 2, globals_ok),
        ),
        2 | 3 => SStmt::SetVar(rng.gen_range(0..NUM_VARS), gen_expr(rng, cx, 2, globals_ok)),
        4 if globals_ok && cx.globals > 0 => SStmt::SetGlobal(
            rng.gen_range(0..cx.globals),
            gen_expr(rng, cx, 2, globals_ok),
        ),
        5 => SStmt::Print(gen_expr(rng, cx, 1, globals_ok)),
        6 => SStmt::PtrWrite(rng.gen_range(0..NUM_VARS), gen_expr(rng, cx, 1, globals_ok)),
        7 | 8 if depth > 0 => {
            // One branch in three gets a statically-decided condition,
            // which is the only food the Constprop mutant eats.
            let cond = if rng.gen_range(0..3u32) == 0 {
                SExpr::Const(rng.gen_range(0..2))
            } else {
                gen_expr(rng, cx, 1, globals_ok)
            };
            SStmt::If(
                cond,
                gen_block(rng, cx, 2, depth - 1, in_lock),
                gen_block(rng, cx, 2, depth - 1, in_lock),
            )
        }
        9 if depth > 0 => SStmt::Loop(
            rng.gen_range(1..4),
            gen_block(rng, cx, 2, depth - 1, in_lock),
        ),
        10 if cx.helpers > 0 => SStmt::Call(
            rng.gen_range(0..NUM_TEMPS),
            rng.gen_range(0..cx.helpers),
            gen_expr(rng, cx, 1, globals_ok),
        ),
        11 if cx.helpers > 0 => SStmt::CallDrop(
            rng.gen_range(0..cx.helpers),
            gen_expr(rng, cx, 1, globals_ok),
        ),
        12 | 13 if cx.locks && !in_lock && depth > 0 => {
            SStmt::Locked(gen_block(rng, cx, 2, depth - 1, true))
        }
        _ => SStmt::SetTemp(
            rng.gen_range(0..NUM_TEMPS),
            gen_expr(rng, cx, 1, globals_ok),
        ),
    }
}

fn gen_helpers(rng: &mut StdRng, n: u8) -> Vec<HelperSpec> {
    (0..n)
        .map(|_| {
            let ops = (0..rng.gen_range(1..4u32))
                .map(|_| {
                    (
                        SBin::ALL[rng.gen_range(0..SBin::ALL.len())],
                        rng.gen_range(-4..8),
                    )
                })
                .collect();
            HelperSpec { ops }
        })
        .collect()
}

/// Generates one program. `size` scales block length, nesting depth and
/// helper count; the fuzz driver typically sweeps `size = i % 8` over
/// its input index `i` so every budget exercises the whole range.
#[must_use]
pub fn gen_program(seed: u64, size: u32) -> FuzzProgram {
    let mut rng =
        StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (u64::from(size) << 1));
    let concurrent = rng.gen_range(0..4u32) == 0;
    let helpers = u8::try_from((size / 3).min(2)).expect("small");
    let depth = 1 + size.min(6) / 3;
    let block_len = 2 + size.min(8) / 2;
    if concurrent {
        // Concurrent programs are kept tiny: the oracle explores every
        // interleaving of every IR, so state-space size is the budget.
        let cx_locked = Ctx {
            globals: 2,
            helpers: helpers.min(1),
            free_globals: false,
            locks: true,
        };
        let cx_racy = Ctx {
            globals: 2,
            helpers: helpers.min(1),
            free_globals: true,
            locks: false,
        };
        let racy = rng.gen_range(0..4u32) == 0;
        let helpers = gen_helpers(&mut rng, cx_locked.helpers);
        let threads = (0..2)
            .map(|_| {
                let cx = if racy { &cx_racy } else { &cx_locked };
                let mut b = gen_block(&mut rng, cx, 3, 1, false);
                if !racy && !b.iter().any(|s| matches!(s, SStmt::Locked(_))) {
                    // Guarantee lock *contention* on every locked input:
                    // without both threads entering a critical section
                    // the object-transformation mutant (stripped
                    // atomics) has nothing to race on.
                    b.push(SStmt::Locked(gen_block(&mut rng, cx, 2, 0, true)));
                }
                b
            })
            .collect();
        FuzzProgram {
            globals: 2,
            helpers,
            threads,
        }
    } else {
        let cx = Ctx {
            globals: 2,
            helpers,
            free_globals: true,
            locks: false,
        };
        let helpers = gen_helpers(&mut rng, cx.helpers);
        let body = gen_block(&mut rng, &cx, block_len, depth, false);
        FuzzProgram {
            globals: 2,
            helpers,
            threads: vec![body],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::lower;
    use ccc_clight::ClightLang;
    use ccc_core::world::run_main;

    #[test]
    fn generation_is_deterministic_and_varied() {
        let a = gen_program(42, 4);
        let b = gen_program(42, 4);
        assert_eq!(a, b);
        let distinct = (0..40u64)
            .map(|s| crate::text::program_to_text(&gen_program(s, (s % 8) as u32)))
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        assert!(distinct >= 35, "only {distinct}/40 distinct programs");
    }

    #[test]
    fn stream_mixes_sequential_and_concurrent() {
        let mut seq = 0;
        let mut conc = 0;
        for s in 0..100u64 {
            if gen_program(s, (s % 8) as u32).is_sequential() {
                seq += 1;
            } else {
                conc += 1;
            }
        }
        assert!(seq >= 50, "sequential starved: {seq}");
        assert!(conc >= 10, "concurrent starved: {conc}");
    }

    #[test]
    fn sequential_programs_lower_and_terminate() {
        for s in 0..60u64 {
            let p = gen_program(s, (s % 8) as u32);
            if !p.is_sequential() {
                continue;
            }
            let (m, ge, entries) = lower(&p);
            m.validate().unwrap_or_else(|e| panic!("seed {s}: {e:?}"));
            assert!(
                run_main(&ClightLang, &m, &ge, &entries[0], &[], 1_000_000).is_some(),
                "seed {s} aborted or diverged"
            );
        }
    }
}
