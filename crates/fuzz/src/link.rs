//! Cross-language linking helpers shared by the oracle and the test
//! suite: a client module in any IR linked against the CImp lock object
//! of `ccc-sync` (the γ_lock of Fig. 10(a)).

use ccc_cimp::{CImpLang, CImpModule};
use ccc_clight::{ClightLang, ClightModule};
use ccc_core::lang::{Lang, ModuleDecl, Prog, Sum, SumLang};
use ccc_core::mem::GlobalEnv;
use ccc_core::world::{LoadError, Loaded};
use ccc_sync::lock::lock_spec;

/// Source programs: Clight clients + CImp lock object.
pub type SrcLang = SumLang<ClightLang, CImpLang>;

/// Links a client module (in any IR) against an explicit CImp object
/// module.
///
/// # Errors
///
/// Returns the linker's [`LoadError`] when the modules do not link —
/// with a mutated pipeline that is a legitimate (and caught) outcome.
pub fn link_with_object<L: Lang>(
    lang: L,
    client: L::Module,
    ge: GlobalEnv,
    object: CImpModule,
    object_ge: GlobalEnv,
    entries: Vec<String>,
) -> Result<Loaded<SumLang<L, CImpLang>>, LoadError> {
    Loaded::new(Prog {
        lang: SumLang(lang, CImpLang),
        modules: vec![
            ModuleDecl {
                code: Sum::L(client),
                ge,
            },
            ModuleDecl {
                code: Sum::R(object),
                ge: object_ge,
            },
        ],
        entries,
    })
}

/// Links a client module (in any IR) against the standard lock object
/// `lock_spec("L")`.
///
/// # Errors
///
/// Returns the linker's [`LoadError`] when the modules do not link.
pub fn link_with_lock<L: Lang>(
    lang: L,
    client: L::Module,
    ge: GlobalEnv,
    entries: Vec<String>,
) -> Result<Loaded<SumLang<L, CImpLang>>, LoadError> {
    let (lock, lock_ge) = lock_spec("L");
    link_with_object(lang, client, ge, lock, lock_ge, entries)
}

/// Links a generated Clight client with the standard lock object,
/// panicking on failure — the shape used throughout the test suite for
/// clients that are well-formed by construction.
#[must_use]
pub fn load_client(client: ClightModule, ge: GlobalEnv, entries: Vec<String>) -> Loaded<SrcLang> {
    link_with_lock(ClightLang, client, ge, entries).expect("client and lock object link")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_clight::gen::gen_concurrent_client;
    use ccc_core::race::check_drf;
    use ccc_core::refine::ExploreCfg;

    #[test]
    fn locked_clients_link_and_are_drf() {
        let (client, ge, entries) = gen_concurrent_client(3, 2, &["s0", "s1"], false);
        let loaded = load_client(client, ge, entries);
        let drf = check_drf(&loaded, &ExploreCfg::default()).expect("loads");
        assert!(!drf.truncated);
        assert!(drf.is_drf());
    }
}
