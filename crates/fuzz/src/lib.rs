//! # ccc-fuzz — pipeline-wide differential fuzzing
//!
//! The executable substitute for "the theorem quantifies over all
//! programs": a structured generator of well-formed concurrent Clight
//! modules ([`gen`], over the first-order representation of [`spec`]),
//! a differential oracle that drives every IR's footprint-instrumented
//! interpreter plus the SC and TSO machines and localizes the first
//! disagreeing pass ([`oracle`]), a delta-debugging shrinker
//! ([`shrink`]), a persisted regression corpus ([`corpus`], [`text`]),
//! and a mutation-kill scoreboard proving every pipeline mutant of
//! [`ccc_compiler::Mutant`] is caught within a bounded fuzz budget,
//! optionally seeded with the corpus witnesses ([`mutation`]).
//!
//! The crate also hosts the shared program generators for the wider
//! test suite ([`toygen`], [`tsogen`], [`link`]), which used to be
//! duplicated across the integration tests.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cachediff;
pub mod corpus;
pub mod gen;
pub mod link;
pub mod mutation;
pub mod oracle;
pub mod rgdiff;
pub mod shrink;
pub mod spec;
pub mod text;
pub mod toygen;
pub mod tsogen;

pub use cachediff::{check_cached_vs_fresh, check_cached_vs_fresh_seeded};
pub use corpus::{shrink_to_entry, CorpusEntry};
pub use gen::gen_program;
pub use mutation::{
    kill_one, kill_one_seeded, run_scoreboard, run_scoreboard_seeded, static_board_markdown,
    transval_corpus_board, MutantScore, Scoreboard, StaticKill,
};
pub use oracle::{check_program, FuzzFailure, OracleCfg};
pub use rgdiff::{check_rg_vs_exploration, RgDiffReport};
pub use shrink::shrink;
pub use spec::{lower, lower_prefixed, FuzzProgram, SStmt};
pub use text::{parse_program, program_to_text};
