//! Generator for toy-language concurrent programs (the op-level
//! representation the exploration-engine differential battery uses).
//! Previously duplicated inside the test suite; now shared so every
//! harness draws from the same distribution.

use ccc_core::lang::Prog;
use ccc_core::toy::{toy_globals, toy_module, ToyInstr, ToyLang};
use ccc_core::world::Loaded;
use proptest::prelude::*;

/// One generated thread-body op. Lowered so every program is
/// well-formed: locals exist before use, atomic blocks are balanced,
/// the accumulator is always an integer.
#[derive(Clone, Debug)]
pub enum Op {
    /// Silent own-region work: `local += k` (the ample fodder).
    Priv(i64),
    /// Unprotected global read.
    Read(u8),
    /// Unprotected global write.
    Write(u8),
    /// An atomic block of global reads/writes/arithmetic.
    Atomic(Vec<AOp>),
    /// An observable event (never ample).
    Print,
    /// Nondeterministic branch on the accumulator.
    Choice,
}

/// An op inside an atomic block.
#[derive(Clone, Debug)]
#[allow(missing_docs)]
pub enum AOp {
    Read(u8),
    Write(u8),
    Add(i64),
}

/// The two shared globals every toy program uses.
pub const GLOBALS: [&str; 2] = ["x", "y"];

/// Lowers a thread body to toy instructions.
#[must_use]
pub fn lower(ops: &[Op]) -> Vec<ToyInstr> {
    let g = |i: u8| GLOBALS[i as usize % GLOBALS.len()].to_string();
    let mut v = vec![
        ToyInstr::AllocLocal,
        ToyInstr::Const(0),
        ToyInstr::StoreL(0),
    ];
    for op in ops {
        match op {
            Op::Priv(k) => {
                v.push(ToyInstr::LoadL(0));
                v.push(ToyInstr::Add(*k));
                v.push(ToyInstr::StoreL(0));
            }
            Op::Read(i) => v.push(ToyInstr::LoadG(g(*i))),
            Op::Write(i) => v.push(ToyInstr::StoreG(g(*i))),
            Op::Atomic(inner) => {
                v.push(ToyInstr::EntAtom);
                for a in inner {
                    match a {
                        AOp::Read(i) => v.push(ToyInstr::LoadG(g(*i))),
                        AOp::Write(i) => v.push(ToyInstr::StoreG(g(*i))),
                        AOp::Add(k) => v.push(ToyInstr::Add(*k)),
                    }
                }
                v.push(ToyInstr::ExtAtom);
            }
            Op::Print => v.push(ToyInstr::Print),
            Op::Choice => v.push(ToyInstr::Choice),
        }
    }
    v.push(ToyInstr::Ret(0));
    v
}

/// Builds the loaded toy program for a set of thread bodies, with the
/// standard globals `x = 0`, `y = 1`.
#[must_use]
pub fn toy_loaded(threads: &[Vec<Op>]) -> Loaded<ToyLang> {
    let names: Vec<String> = (0..threads.len()).map(|i| format!("t{i}")).collect();
    let bodies: Vec<Vec<ToyInstr>> = threads.iter().map(|t| lower(t)).collect();
    let pairs: Vec<(&str, Vec<ToyInstr>)> = names
        .iter()
        .map(|n| n.as_str())
        .zip(bodies.iter().cloned())
        .collect();
    let (m, _) = toy_module(&pairs, &[]);
    Loaded::new(Prog::new(
        ToyLang,
        vec![(m, toy_globals(&[("x", 0), ("y", 1)]))],
        names,
    ))
    .expect("toy links")
}

/// Strategy for one atomic-block op.
pub fn arb_aop() -> impl Strategy<Value = AOp> {
    prop_oneof![
        (0u8..2).prop_map(AOp::Read),
        (0u8..2).prop_map(AOp::Write),
        (-3i64..4).prop_map(AOp::Add),
    ]
}

/// Strategy for one thread-body op. The vendored proptest has no
/// weighted arms; repeating `Priv` biases generation toward the silent
/// prefixes the partial-order reduction actually exercises.
pub fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-3i64..4).prop_map(Op::Priv),
        (-3i64..4).prop_map(Op::Priv),
        (-3i64..4).prop_map(Op::Priv),
        (0u8..2).prop_map(Op::Read),
        (0u8..2).prop_map(Op::Write),
        proptest::collection::vec(arb_aop(), 1..3).prop_map(Op::Atomic),
        Just(Op::Print),
        Just(Op::Choice),
    ]
}

/// 2 threads with up to 4 ops each, or 3 threads with up to 2 — both
/// small enough to compare full trace sets against the oracle.
pub fn arb_toy_threads() -> impl Strategy<Value = Vec<Vec<Op>>> {
    prop_oneof![
        proptest::collection::vec(proptest::collection::vec(arb_op(), 1..5), 2..3),
        proptest::collection::vec(proptest::collection::vec(arb_op(), 1..3), 3..4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_core::race::check_drf;
    use ccc_core::refine::ExploreCfg;

    #[test]
    fn lowered_toy_programs_load_and_explore() {
        let racy: Vec<Op> = vec![Op::Priv(1), Op::Write(0)];
        let loaded = toy_loaded(&[racy.clone(), racy]);
        let drf = check_drf(&loaded, &ExploreCfg::default()).expect("loads");
        assert!(!drf.truncated);
        assert!(!drf.is_drf(), "write-write race must be seen");
    }
}
