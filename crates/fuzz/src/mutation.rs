//! Mutation-kill scoreboard: every pipeline pass has one intentionally
//! wrong variant behind [`Mutant`]; the scoreboard proves each is
//! killed by the differential oracle within a bounded fuzz budget and
//! reports the kill rate and mean inputs-to-kill.
//!
//! All mutants face the *same* deterministic input stream, so the
//! inputs-to-kill numbers are comparable across passes. A campaign can
//! additionally be seeded with the persisted regression corpus
//! ([`run_scoreboard_seeded`]): each mutant first replays its own
//! corpus witnesses before drawing from the random stream, so every
//! historically-caught miscompilation stays caught even when the
//! generator rarely produces the shape that exposes it.

use crate::corpus::CorpusEntry;
use crate::gen::gen_program;
use crate::oracle::{check_program, FuzzFailure, OracleCfg};
use crate::spec::{lower, FuzzProgram};
use ccc_analysis::transval::Verdict;
use ccc_analysis::{validate_artifacts, validate_id_trans};
use ccc_compiler::{
    compile_with_artifacts_mutated, id_trans_drop_assert, id_trans_mutated, Mutant,
};
use ccc_sync::lock::lock_spec;

/// The `i`-th input of the shared scoreboard stream.
#[must_use]
pub fn stream_input(i: usize) -> FuzzProgram {
    gen_program(i as u64, (i % 8) as u32)
}

/// The outcome for one mutant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MutantScore {
    /// Which pass was mutated.
    pub mutant: Mutant,
    /// Number of inputs consumed, including the killing one (equals the
    /// budget when the mutant survived). Corpus seeds count as inputs
    /// and precede the random stream.
    pub inputs: usize,
    /// The localized failure that killed it, if any.
    pub kill: Option<FuzzFailure>,
    /// The program that killed it, if any — a corpus seed or a stream
    /// input. Carried so downstream consumers (the static-validator
    /// board, corpus shrinking) see the *actual* witness rather than
    /// re-deriving it from an input index.
    pub witness: Option<FuzzProgram>,
}

impl MutantScore {
    /// True when the oracle caught the mutant within budget.
    #[must_use]
    pub fn killed(&self) -> bool {
        self.kill.is_some()
    }

    /// True when the kill came from the *static* translation validator
    /// (a `transval/<pass>` stage) rather than the dynamic differential
    /// oracle — the mutant was rejected without executing the program.
    #[must_use]
    pub fn static_kill(&self) -> bool {
        self.kill
            .as_ref()
            .is_some_and(|f| f.stage.starts_with("transval/"))
    }
}

/// The scoreboard over all pipeline mutants.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Scoreboard {
    /// One score per mutant, in pipeline order.
    pub scores: Vec<MutantScore>,
    /// The per-mutant input budget that was applied.
    pub budget: usize,
}

impl Scoreboard {
    /// Fraction of mutants killed, in `0.0..=1.0`.
    #[must_use]
    pub fn kill_rate(&self) -> f64 {
        if self.scores.is_empty() {
            return 1.0;
        }
        let killed = self.scores.iter().filter(|s| s.killed()).count();
        killed as f64 / self.scores.len() as f64
    }

    /// Mean number of inputs needed to kill, over the killed mutants.
    #[must_use]
    pub fn mean_inputs_to_kill(&self) -> f64 {
        let killed: Vec<_> = self.scores.iter().filter(|s| s.killed()).collect();
        if killed.is_empty() {
            return f64::NAN;
        }
        killed.iter().map(|s| s.inputs as f64).sum::<f64>() / killed.len() as f64
    }

    /// Mutants that survived the whole budget.
    pub fn survivors(&self) -> impl Iterator<Item = Mutant> + '_ {
        self.scores.iter().filter(|s| !s.killed()).map(|s| s.mutant)
    }

    /// Renders the scoreboard as a markdown table (the artifact the
    /// evaluation docs embed).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| Pass | Mutant | Killed | Static kill | Inputs to kill | Localized at |\n\
             |---|---|---|---|---|---|\n",
        );
        for s in &self.scores {
            let (killed, at) = match &s.kill {
                Some(f) => ("yes", f.stage.clone()),
                None => ("**no**", "—".into()),
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                s.mutant.pass_name(),
                s.mutant.describe(),
                killed,
                if s.static_kill() { "yes" } else { "no" },
                s.inputs,
                at
            ));
        }
        out.push_str(&format!(
            "\nKill rate: {:.0}% ({}/{}); mean inputs-to-kill: {:.1} (budget {} per mutant).\n",
            self.kill_rate() * 100.0,
            self.scores.iter().filter(|s| s.killed()).count(),
            self.scores.len(),
            self.mean_inputs_to_kill(),
            self.budget
        ));
        out
    }
}

/// Runs one mutant against the shared stream until the oracle kills it
/// or the budget runs out. A kill only counts when the *clean* pipeline
/// accepts the same input — a disagreement the reference pipeline also
/// shows would be a generator or oracle artifact, not a detection.
#[must_use]
pub fn kill_one(mutant: Mutant, budget: usize, cfg: &OracleCfg) -> MutantScore {
    kill_one_seeded(mutant, &[], budget, cfg)
}

/// Like [`kill_one`], but the mutant first faces `seeds` (the persisted
/// corpus witnesses for this mutant) before the random stream. Seeds
/// count toward `inputs`, so a corpus-killed mutant reports how many
/// seeds it consumed; the stream budget is unchanged.
#[must_use]
pub fn kill_one_seeded(
    mutant: Mutant,
    seeds: &[FuzzProgram],
    budget: usize,
    cfg: &OracleCfg,
) -> MutantScore {
    let candidates = seeds.iter().cloned().chain((0..budget).map(stream_input));
    for (i, p) in candidates.enumerate() {
        if let Err(f) = check_program(&p, Some(mutant), cfg) {
            if check_program(&p, None, cfg).is_ok() {
                return MutantScore {
                    mutant,
                    inputs: i + 1,
                    kill: Some(f),
                    witness: Some(p),
                };
            }
        }
    }
    MutantScore {
        mutant,
        inputs: seeds.len() + budget,
        kill: None,
        witness: None,
    }
}

/// Verdict of running the symbolic translation validator *alone* over
/// one mutant's compilation of a witness program — no execution, no
/// differential comparison.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StaticKill {
    /// Which pass was mutated.
    pub mutant: Mutant,
    /// The pass whose [`ccc_analysis::SimWitness`] was rejected, if
    /// any; `None` means the mutant needs the dynamic oracle.
    pub rejected_at: Option<String>,
    /// The first undischarged obligation's diagnostic (empty if none).
    pub detail: String,
}

impl StaticKill {
    /// True when the validator rejected the mutated compilation.
    #[must_use]
    pub fn killed(&self) -> bool {
        self.rejected_at.is_some()
    }
}

/// Runs the symbolic validator over each `(mutant, witness program)`
/// pair: the program is compiled with the mutant enabled and the
/// artifacts are checked statically. Used with the persisted corpus
/// witnesses to measure which mutants die without the dynamic oracle.
#[must_use]
pub fn transval_corpus_board(witnesses: &[(Mutant, FuzzProgram)]) -> Vec<StaticKill> {
    witnesses
        .iter()
        .map(|(mutant, p)| {
            // The object-level mutants never touch the Clight pipeline
            // the witness program compiles through; their static check
            // is the IdTrans validator over the lock object itself.
            let object_tgt = match mutant {
                Mutant::IdTrans => Some(id_trans_mutated(&lock_spec("L").0)),
                Mutant::IdTransDropAssert => Some(id_trans_drop_assert(&lock_spec("L").0)),
                _ => None,
            };
            if let Some(tgt) = object_tgt {
                let (lock, _lock_ge) = lock_spec("L");
                let w = validate_id_trans(&lock, &tgt);
                return StaticKill {
                    mutant: *mutant,
                    rejected_at: (w.verdict == Verdict::Rejected).then(|| w.pass.clone()),
                    detail: w
                        .diagnostics()
                        .first()
                        .map(ToString::to_string)
                        .unwrap_or_default(),
                };
            }
            let (m, _ge, _entries) = lower(p);
            match compile_with_artifacts_mutated(&m, Some(*mutant)) {
                Err(e) => StaticKill {
                    mutant: *mutant,
                    rejected_at: Some("compile".into()),
                    detail: format!("{e:?}"),
                },
                Ok(arts) => {
                    let w = validate_artifacts(&arts);
                    let first = w.rejected().next().cloned();
                    match first {
                        Some(sw) => StaticKill {
                            mutant: *mutant,
                            rejected_at: Some(sw.pass.clone()),
                            detail: sw
                                .diagnostics()
                                .first()
                                .map(ToString::to_string)
                                .unwrap_or_default(),
                        },
                        None => StaticKill {
                            mutant: *mutant,
                            rejected_at: None,
                            detail: String::new(),
                        },
                    }
                }
            }
        })
        .collect()
}

/// Renders a [`transval_corpus_board`] result as a markdown table,
/// ending with the list of mutants that still need the dynamic oracle.
#[must_use]
pub fn static_board_markdown(board: &[StaticKill]) -> String {
    let mut out = String::from(
        "| Pass | Static kill | Rejected at | First failed obligation |\n\
         |---|---|---|---|\n",
    );
    for k in board {
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            k.mutant.pass_name(),
            if k.killed() { "yes" } else { "**no**" },
            k.rejected_at.as_deref().unwrap_or("—"),
            if k.detail.is_empty() {
                "—"
            } else {
                &k.detail
            },
        ));
    }
    let dynamic_only: Vec<_> = board
        .iter()
        .filter(|k| !k.killed())
        .map(|k| k.mutant.pass_name())
        .collect();
    if dynamic_only.is_empty() {
        out.push_str("\nEvery mutant dies statically.\n");
    } else {
        out.push_str(&format!(
            "\nStill need the dynamic oracle: {}.\n",
            dynamic_only.join(", ")
        ));
    }
    out
}

/// Runs the whole scoreboard: every mutant of [`Mutant::ALL`] against
/// the shared stream with the given per-mutant budget.
#[must_use]
pub fn run_scoreboard(budget: usize, cfg: &OracleCfg) -> Scoreboard {
    run_scoreboard_seeded(budget, cfg, &[])
}

/// Like [`run_scoreboard`], but each mutant is first seeded with its
/// own entries from the persisted regression corpus (entries tagged
/// with a different mutant, or with `none`, are ignored for that
/// mutant). This keeps the scoreboard deterministic for mutants whose
/// killing shape the random generator rarely produces: once a witness
/// is in the corpus, its mutant can never silently start surviving.
#[must_use]
pub fn run_scoreboard_seeded(budget: usize, cfg: &OracleCfg, corpus: &[CorpusEntry]) -> Scoreboard {
    Scoreboard {
        scores: Mutant::ALL
            .iter()
            .map(|&m| {
                let seeds: Vec<FuzzProgram> = corpus
                    .iter()
                    .filter(|e| e.mutant == Some(m))
                    .map(|e| e.program.clone())
                    .collect();
                kill_one_seeded(m, &seeds, budget, cfg)
            })
            .collect(),
        budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoreboard_math() {
        let sb = Scoreboard {
            scores: vec![
                MutantScore {
                    mutant: Mutant::Rtlgen,
                    inputs: 2,
                    kill: Some(FuzzFailure {
                        stage: "RTL".into(),
                        detail: "x".into(),
                    }),
                    witness: Some(stream_input(1)),
                },
                MutantScore {
                    mutant: Mutant::Asmgen,
                    inputs: 10,
                    kill: None,
                    witness: None,
                },
            ],
            budget: 10,
        };
        assert!((sb.kill_rate() - 0.5).abs() < 1e-9);
        assert!((sb.mean_inputs_to_kill() - 2.0).abs() < 1e-9);
        assert_eq!(sb.survivors().collect::<Vec<_>>(), vec![Mutant::Asmgen]);
        assert!(sb.to_markdown().contains("| RTL |"));
    }
}
