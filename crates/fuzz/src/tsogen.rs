//! Generator for loop-free multi-threaded x86 programs (the op-level
//! representation the TSO-robustness battery uses). Previously
//! duplicated inside the test suite; now shared.

use ccc_machine::{AsmFunc, Instr, MemArg, Operand, Reg};
use proptest::prelude::*;

/// The three shared globals every generated program may touch.
pub const GLOBALS: [&str; 3] = ["g0", "g1", "g2"];

/// One generator op; a thread is a short sequence of these.
#[derive(Clone, Debug)]
pub enum Op {
    /// `g := v` (plain, buffered).
    Store(usize, i64),
    /// `print(g)`.
    LoadPrint(usize),
    /// `mfence`.
    Fence,
    /// `lock cmpxchg g, v` expecting 0 (drains the buffer).
    Rmw(usize, i64),
}

/// Emits the function body for one thread.
#[must_use]
pub fn emit(ops: &[Op]) -> AsmFunc {
    let garg = |g: &usize| MemArg::Global(GLOBALS[*g].to_string(), 0);
    let mut code = Vec::new();
    for op in ops {
        match op {
            Op::Store(g, v) => code.push(Instr::Store(garg(g), Operand::Imm(*v))),
            Op::LoadPrint(g) => {
                code.push(Instr::Load(Reg::Ecx, garg(g)));
                code.push(Instr::Print(Reg::Ecx));
            }
            Op::Fence => code.push(Instr::Mfence),
            Op::Rmw(g, v) => {
                code.push(Instr::Mov(Reg::Ebx, Operand::Imm(*v)));
                code.push(Instr::Mov(Reg::Eax, Operand::Imm(0)));
                code.push(Instr::LockCmpxchg(garg(g), Reg::Ebx));
            }
        }
    }
    code.push(Instr::Mov(Reg::Eax, Operand::Imm(0)));
    code.push(Instr::Ret);
    AsmFunc {
        code,
        frame_slots: 0,
        arity: 0,
    }
}

/// Strategy for one op, biased toward the store/load pairs that
/// exercise buffering.
pub fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0usize..3), (1i64..4)).prop_map(|(g, v)| Op::Store(g, v)),
        ((0usize..3), (1i64..4)).prop_map(|(g, v)| Op::Store(g, v)),
        (0usize..3).prop_map(Op::LoadPrint),
        (0usize..3).prop_map(Op::LoadPrint),
        Just(Op::Fence),
        ((0usize..3), (1i64..4)).prop_map(|(g, v)| Op::Rmw(g, v)),
    ]
}

/// Strategy for one short thread body.
pub fn arb_thread() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(arb_op(), 1..4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitted_threads_end_in_ret() {
        let f = emit(&[Op::Store(0, 1), Op::LoadPrint(1), Op::Fence, Op::Rmw(2, 3)]);
        assert!(matches!(f.code.last(), Some(Instr::Ret)));
        assert_eq!(f.arity, 0);
    }
}
