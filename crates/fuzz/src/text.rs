//! Textual (s-expression) serialization of [`FuzzProgram`] values.
//!
//! The regression corpus persists shrunk counterexamples as plain text
//! so they survive generator changes: a corpus entry replays the exact
//! minimal program, not a (seed, size) pair whose meaning would drift
//! with the generator's weight table. The format round-trips exactly
//! ([`parse_program`] ∘ [`program_to_text`] is the identity up to
//! whitespace).

use crate::spec::{FuzzProgram, HelperSpec, SBin, SExpr, SStmt};
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------

fn expr_to_text(e: &SExpr, out: &mut String) {
    match e {
        SExpr::Const(k) => {
            let _ = write!(out, "{k}");
        }
        SExpr::Temp(i) => {
            let _ = write!(out, "t{i}");
        }
        SExpr::Var(i) => {
            let _ = write!(out, "v{i}");
        }
        SExpr::Global(i) => {
            let _ = write!(out, "g{i}");
        }
        SExpr::Neg(a) => {
            out.push_str("(neg ");
            expr_to_text(a, out);
            out.push(')');
        }
        SExpr::Not(a) => {
            out.push_str("(not ");
            expr_to_text(a, out);
            out.push(')');
        }
        SExpr::Bin(op, a, b) => {
            let _ = write!(out, "({} ", op.token());
            expr_to_text(a, out);
            out.push(' ');
            expr_to_text(b, out);
            out.push(')');
        }
    }
}

fn stmts_to_text(ss: &[SStmt], out: &mut String) {
    for s in ss {
        out.push(' ');
        stmt_to_text(s, out);
    }
}

fn stmt_to_text(s: &SStmt, out: &mut String) {
    match s {
        SStmt::SetTemp(i, e) => {
            let _ = write!(out, "(set-temp {i} ");
            expr_to_text(e, out);
            out.push(')');
        }
        SStmt::SetVar(i, e) => {
            let _ = write!(out, "(set-var {i} ");
            expr_to_text(e, out);
            out.push(')');
        }
        SStmt::SetGlobal(i, e) => {
            let _ = write!(out, "(set-global {i} ");
            expr_to_text(e, out);
            out.push(')');
        }
        SStmt::PtrWrite(i, e) => {
            let _ = write!(out, "(ptr-write {i} ");
            expr_to_text(e, out);
            out.push(')');
        }
        SStmt::Print(e) => {
            out.push_str("(print ");
            expr_to_text(e, out);
            out.push(')');
        }
        SStmt::If(c, a, b) => {
            out.push_str("(if ");
            expr_to_text(c, out);
            out.push_str(" (then");
            stmts_to_text(a, out);
            out.push_str(") (else");
            stmts_to_text(b, out);
            out.push_str("))");
        }
        SStmt::Loop(n, body) => {
            let _ = write!(out, "(loop {n}");
            stmts_to_text(body, out);
            out.push(')');
        }
        SStmt::Call(dst, h, e) => {
            let _ = write!(out, "(call {dst} {h} ");
            expr_to_text(e, out);
            out.push(')');
        }
        SStmt::CallDrop(h, e) => {
            let _ = write!(out, "(call-drop {h} ");
            expr_to_text(e, out);
            out.push(')');
        }
        SStmt::Locked(body) => {
            out.push_str("(locked");
            stmts_to_text(body, out);
            out.push(')');
        }
    }
}

/// Serializes a program to the corpus text format (one thread per
/// line, helpers and globals up front).
#[must_use]
pub fn program_to_text(p: &FuzzProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "(globals {})", p.globals);
    for h in &p.helpers {
        out.push_str("(helper");
        for (op, k) in &h.ops {
            let _ = write!(out, " ({} {k})", op.token());
        }
        out.push_str(")\n");
    }
    for t in &p.threads {
        out.push_str("(thread");
        stmts_to_text(t, &mut out);
        out.push_str(")\n");
    }
    out
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// A parse failure, with a human-readable description.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corpus parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Sexp {
    Atom(String),
    List(Vec<Sexp>),
}

fn tokenize(s: &str) -> Vec<String> {
    let mut toks = Vec::new();
    let mut cur = String::new();
    for line in s.lines() {
        let line = line.split('#').next().unwrap_or("");
        for c in line.chars() {
            match c {
                '(' | ')' => {
                    if !cur.is_empty() {
                        toks.push(std::mem::take(&mut cur));
                    }
                    toks.push(c.to_string());
                }
                c if c.is_whitespace() => {
                    if !cur.is_empty() {
                        toks.push(std::mem::take(&mut cur));
                    }
                }
                c => cur.push(c),
            }
        }
        if !cur.is_empty() {
            toks.push(std::mem::take(&mut cur));
        }
    }
    toks
}

fn parse_sexp(toks: &[String], pos: &mut usize) -> Result<Sexp, ParseError> {
    match toks.get(*pos) {
        None => Err(ParseError("unexpected end of input".into())),
        Some(t) if t == "(" => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                match toks.get(*pos) {
                    None => return Err(ParseError("unclosed '('".into())),
                    Some(t) if t == ")" => {
                        *pos += 1;
                        return Ok(Sexp::List(items));
                    }
                    _ => items.push(parse_sexp(toks, pos)?),
                }
            }
        }
        Some(t) if t == ")" => Err(ParseError("unexpected ')'".into())),
        Some(t) => {
            *pos += 1;
            Ok(Sexp::Atom(t.clone()))
        }
    }
}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

fn as_list(s: &Sexp) -> Result<&[Sexp], ParseError> {
    match s {
        Sexp::List(items) => Ok(items),
        Sexp::Atom(a) => Err(err(format!("expected a list, got `{a}`"))),
    }
}

fn head<'a>(items: &'a [Sexp], what: &str) -> Result<(&'a str, &'a [Sexp]), ParseError> {
    match items.split_first() {
        Some((Sexp::Atom(h), rest)) => Ok((h.as_str(), rest)),
        _ => Err(err(format!("{what}: empty or headless list"))),
    }
}

fn parse_u8(s: &Sexp, what: &str) -> Result<u8, ParseError> {
    match s {
        Sexp::Atom(a) => a
            .parse()
            .map_err(|_| err(format!("{what}: `{a}` is not a u8"))),
        Sexp::List(_) => Err(err(format!("{what}: expected a number"))),
    }
}

fn parse_i64(s: &Sexp, what: &str) -> Result<i64, ParseError> {
    match s {
        Sexp::Atom(a) => a
            .parse()
            .map_err(|_| err(format!("{what}: `{a}` is not an i64"))),
        Sexp::List(_) => Err(err(format!("{what}: expected a number"))),
    }
}

fn parse_bin(tok: &str) -> Option<SBin> {
    SBin::ALL.into_iter().find(|op| op.token() == tok)
}

fn parse_expr(s: &Sexp) -> Result<SExpr, ParseError> {
    match s {
        Sexp::Atom(a) => {
            if let Some(i) = a.strip_prefix('t') {
                if let Ok(i) = i.parse() {
                    return Ok(SExpr::Temp(i));
                }
            }
            if let Some(i) = a.strip_prefix('v') {
                if let Ok(i) = i.parse() {
                    return Ok(SExpr::Var(i));
                }
            }
            if let Some(i) = a.strip_prefix('g') {
                if let Ok(i) = i.parse() {
                    return Ok(SExpr::Global(i));
                }
            }
            a.parse()
                .map(SExpr::Const)
                .map_err(|_| err(format!("unknown expression atom `{a}`")))
        }
        Sexp::List(items) => {
            let (h, rest) = head(items, "expression")?;
            match (h, rest) {
                ("neg", [a]) => Ok(SExpr::Neg(Box::new(parse_expr(a)?))),
                ("not", [a]) => Ok(SExpr::Not(Box::new(parse_expr(a)?))),
                (op, [a, b]) => {
                    let op = parse_bin(op)
                        .ok_or_else(|| err(format!("unknown binary operator `{op}`")))?;
                    Ok(SExpr::Bin(
                        op,
                        Box::new(parse_expr(a)?),
                        Box::new(parse_expr(b)?),
                    ))
                }
                _ => Err(err(format!("malformed expression `({h} …)`"))),
            }
        }
    }
}

fn parse_stmts(items: &[Sexp]) -> Result<Vec<SStmt>, ParseError> {
    items.iter().map(parse_stmt).collect()
}

fn parse_stmt(s: &Sexp) -> Result<SStmt, ParseError> {
    let items = as_list(s)?;
    let (h, rest) = head(items, "statement")?;
    match (h, rest) {
        ("set-temp", [i, e]) => Ok(SStmt::SetTemp(parse_u8(i, h)?, parse_expr(e)?)),
        ("set-var", [i, e]) => Ok(SStmt::SetVar(parse_u8(i, h)?, parse_expr(e)?)),
        ("set-global", [i, e]) => Ok(SStmt::SetGlobal(parse_u8(i, h)?, parse_expr(e)?)),
        ("ptr-write", [i, e]) => Ok(SStmt::PtrWrite(parse_u8(i, h)?, parse_expr(e)?)),
        ("print", [e]) => Ok(SStmt::Print(parse_expr(e)?)),
        ("if", [c, t, e]) => {
            let (th, trest) = head(as_list(t)?, "if-then")?;
            let (eh, erest) = head(as_list(e)?, "if-else")?;
            if th != "then" || eh != "else" {
                return Err(err("if: expected (then …) (else …)"));
            }
            Ok(SStmt::If(
                parse_expr(c)?,
                parse_stmts(trest)?,
                parse_stmts(erest)?,
            ))
        }
        ("loop", [n, body @ ..]) => Ok(SStmt::Loop(parse_u8(n, h)?, parse_stmts(body)?)),
        ("call", [dst, hl, e]) => Ok(SStmt::Call(
            parse_u8(dst, h)?,
            parse_u8(hl, h)?,
            parse_expr(e)?,
        )),
        ("call-drop", [hl, e]) => Ok(SStmt::CallDrop(parse_u8(hl, h)?, parse_expr(e)?)),
        ("locked", body) => Ok(SStmt::Locked(parse_stmts(body)?)),
        _ => Err(err(format!("unknown statement `({h} …)`"))),
    }
}

/// Parses the corpus text format back into a [`FuzzProgram`].
/// Lines after a `#` are comments; the driver uses them for metadata.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first malformed form.
pub fn parse_program(text: &str) -> Result<FuzzProgram, ParseError> {
    let toks = tokenize(text);
    let mut pos = 0;
    let mut p = FuzzProgram {
        globals: 0,
        helpers: Vec::new(),
        threads: Vec::new(),
    };
    while pos < toks.len() {
        let form = parse_sexp(&toks, &mut pos)?;
        let items = as_list(&form)?;
        let (h, rest) = head(items, "top-level form")?;
        match (h, rest) {
            ("globals", [n]) => p.globals = parse_u8(n, h)?,
            ("helper", ops) => {
                let mut spec = HelperSpec::default();
                for op in ops {
                    let opl = as_list(op)?;
                    let (name, args) = head(opl, "helper op")?;
                    let op = parse_bin(name)
                        .ok_or_else(|| err(format!("unknown helper op `{name}`")))?;
                    match args {
                        [k] => spec.ops.push((op, parse_i64(k, name)?)),
                        _ => return Err(err("helper op takes one constant")),
                    }
                }
                p.helpers.push(spec);
            }
            ("thread", body) => p.threads.push(parse_stmts(body)?),
            _ => return Err(err(format!("unknown top-level form `({h} …)`"))),
        }
    }
    if p.threads.is_empty() {
        return Err(err("program has no threads"));
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_program;

    #[test]
    fn generated_programs_round_trip() {
        for seed in 0..200u64 {
            let p = gen_program(seed, (seed % 7) as u32);
            let text = program_to_text(&p);
            let q = parse_program(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(p, q, "seed {seed} round-trip\n{text}");
        }
    }

    #[test]
    fn hand_written_text_parses() {
        let text = "
# a comment
(globals 2)
(helper (add 3) (mul 2))
(thread (set-temp 0 (add t1 -4))
        (if (lt 0 t0) (then (print g0)) (else (locked (set-global 1 7))))
        (loop 2 (call 1 0 t0) (call-drop 0 1)))
";
        let p = parse_program(text).expect("parses");
        assert_eq!(p.globals, 2);
        assert_eq!(p.helpers.len(), 1);
        assert_eq!(p.threads.len(), 1);
        assert!(p.uses_lock());
        let text2 = program_to_text(&p);
        assert_eq!(parse_program(&text2).expect("re-parses"), p);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_program("(globals 1)").is_err(), "no threads");
        assert!(parse_program("(thread (frob 1))").is_err(), "bad stmt");
        assert!(parse_program("(thread (print").is_err(), "unclosed");
    }
}
