//! Greedy delta-debugging shrinker for failing [`FuzzProgram`]s.
//!
//! Given a failing program and a predicate ("does it still fail?"),
//! [`shrink`] repeatedly applies the smallest-first reduction that
//! preserves the failure until a fixpoint: thread removal, statement
//! deletion, compound unwrapping (a loop, branch, or critical section
//! replaced by its body), loop-count reduction, and constant/expression
//! simplification. Because [`FuzzProgram`] is first-order and every
//! value lowers to a well-formed module, candidates never need
//! re-validation — the predicate is the only gate.

use crate::spec::{FuzzProgram, SExpr, SStmt};

fn simplify_expr(e: &SExpr, out: &mut Vec<SExpr>) {
    match e {
        SExpr::Const(0) => {}
        SExpr::Const(_) => out.push(SExpr::Const(0)),
        SExpr::Temp(_) | SExpr::Var(_) | SExpr::Global(_) => out.push(SExpr::Const(0)),
        SExpr::Neg(a) | SExpr::Not(a) => {
            out.push((**a).clone());
            let mut inner = Vec::new();
            simplify_expr(a, &mut inner);
            // Keep the operator, simplify below it.
            for i in inner {
                out.push(match e {
                    SExpr::Neg(_) => SExpr::Neg(Box::new(i)),
                    _ => SExpr::Not(Box::new(i)),
                });
            }
        }
        SExpr::Bin(op, a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
            let mut sa = Vec::new();
            simplify_expr(a, &mut sa);
            for i in sa {
                out.push(SExpr::Bin(*op, Box::new(i), b.clone()));
            }
            let mut sb = Vec::new();
            simplify_expr(b, &mut sb);
            for i in sb {
                out.push(SExpr::Bin(*op, a.clone(), Box::new(i)));
            }
        }
    }
}

/// All single-step reductions of one statement (not counting deletion,
/// which the block-level walk handles).
fn reduce_stmt(s: &SStmt) -> Vec<SStmt> {
    let mut out = Vec::new();
    let with_exprs = |mk: &dyn Fn(SExpr) -> SStmt, e: &SExpr, out: &mut Vec<SStmt>| {
        let mut es = Vec::new();
        simplify_expr(e, &mut es);
        for e in es {
            out.push(mk(e));
        }
    };
    match s {
        SStmt::SetTemp(i, e) => with_exprs(&|e| SStmt::SetTemp(*i, e), e, &mut out),
        SStmt::SetVar(i, e) => with_exprs(&|e| SStmt::SetVar(*i, e), e, &mut out),
        SStmt::SetGlobal(i, e) => with_exprs(&|e| SStmt::SetGlobal(*i, e), e, &mut out),
        SStmt::PtrWrite(i, e) => with_exprs(&|e| SStmt::PtrWrite(*i, e), e, &mut out),
        SStmt::Print(e) => with_exprs(&|e| SStmt::Print(e), e, &mut out),
        SStmt::Call(d, h, e) => with_exprs(&|e| SStmt::Call(*d, *h, e), e, &mut out),
        SStmt::CallDrop(h, e) => with_exprs(&|e| SStmt::CallDrop(*h, e), e, &mut out),
        SStmt::If(c, a, b) => {
            // Unwrap either branch, simplify the condition, or shrink a
            // branch body.
            for s in a.iter().chain(b.iter()) {
                out.push(s.clone());
            }
            with_exprs(&|c| SStmt::If(c, a.clone(), b.clone()), c, &mut out);
            for (i, r) in reduce_block(a) {
                let mut a2 = a.clone();
                apply_at(&mut a2, i, r);
                out.push(SStmt::If(c.clone(), a2, b.clone()));
            }
            for (i, r) in reduce_block(b) {
                let mut b2 = b.clone();
                apply_at(&mut b2, i, r);
                out.push(SStmt::If(c.clone(), a.clone(), b2));
            }
        }
        SStmt::Loop(n, body) => {
            for s in body {
                out.push(s.clone());
            }
            if *n > 1 {
                out.push(SStmt::Loop(n - 1, body.clone()));
            }
            for (i, r) in reduce_block(body) {
                let mut b2 = body.clone();
                apply_at(&mut b2, i, r);
                out.push(SStmt::Loop(*n, b2));
            }
        }
        SStmt::Locked(body) => {
            for s in body {
                out.push(s.clone());
            }
            for (i, r) in reduce_block(body) {
                let mut b2 = body.clone();
                apply_at(&mut b2, i, r);
                out.push(SStmt::Locked(b2));
            }
        }
    }
    out
}

/// A reduction of a statement list: at index `i`, either delete the
/// statement (`None`) or replace it (`Some`).
type BlockEdit = (usize, Option<SStmt>);

fn reduce_block(ss: &[SStmt]) -> Vec<BlockEdit> {
    let mut out = Vec::new();
    for (i, s) in ss.iter().enumerate() {
        out.push((i, None));
        for r in reduce_stmt(s) {
            out.push((i, Some(r)));
        }
    }
    out
}

fn apply_at(ss: &mut Vec<SStmt>, i: usize, r: Option<SStmt>) {
    match r {
        None => {
            ss.remove(i);
        }
        Some(s) => ss[i] = s,
    }
}

/// All single-step reductions of a whole program, smallest-delta last
/// (thread removal first — it shrinks fastest).
fn candidates(p: &FuzzProgram) -> Vec<FuzzProgram> {
    let mut out = Vec::new();
    if p.threads.len() > 1 {
        for t in 0..p.threads.len() {
            let mut q = p.clone();
            q.threads.remove(t);
            out.push(q);
        }
    }
    for (hi, _) in p.helpers.iter().enumerate() {
        // Helper indices are taken modulo the helper count at lowering,
        // so removal keeps every call site meaningful.
        let mut q = p.clone();
        q.helpers.remove(hi);
        out.push(q);
    }
    for (t, body) in p.threads.iter().enumerate() {
        for (i, r) in reduce_block(body) {
            let mut q = p.clone();
            apply_at(&mut q.threads[t], i, r);
            out.push(q);
        }
    }
    out
}

/// Shrinks `p` while `still_fails` holds, returning the smallest
/// failing program found within `budget` predicate evaluations.
/// Deterministic: candidates are tried in a fixed order and the first
/// accepted one restarts the walk.
pub fn shrink(
    p: &FuzzProgram,
    budget: usize,
    mut still_fails: impl FnMut(&FuzzProgram) -> bool,
) -> FuzzProgram {
    let mut cur = p.clone();
    let mut evals = 0;
    'outer: loop {
        for cand in candidates(&cur) {
            if evals >= budget {
                break 'outer;
            }
            if cand == cur {
                continue;
            }
            evals += 1;
            if still_fails(&cand) {
                cur = cand;
                continue 'outer;
            }
        }
        break;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SBin, SExpr, SStmt};

    #[test]
    fn shrinks_to_the_failure_kernel() {
        // Failure criterion: the program still contains a Print of g0.
        let p = FuzzProgram {
            globals: 2,
            helpers: vec![crate::spec::HelperSpec {
                ops: vec![(SBin::Add, 1)],
            }],
            threads: vec![
                vec![
                    SStmt::SetTemp(0, SExpr::Const(3)),
                    SStmt::Loop(
                        3,
                        vec![
                            SStmt::SetVar(0, SExpr::Temp(0)),
                            SStmt::Print(SExpr::Global(0)),
                        ],
                    ),
                    SStmt::Call(1, 0, SExpr::Const(2)),
                ],
                vec![SStmt::SetGlobal(1, SExpr::Const(5))],
            ],
        };
        fn has_print_g0(ss: &[SStmt]) -> bool {
            ss.iter().any(|s| match s {
                SStmt::Print(SExpr::Global(0)) => true,
                SStmt::If(_, a, b) => has_print_g0(a) || has_print_g0(b),
                SStmt::Loop(_, b) | SStmt::Locked(b) => has_print_g0(b),
                _ => false,
            })
        }
        let small = shrink(&p, 10_000, |q| q.threads.iter().any(|t| has_print_g0(t)));
        assert_eq!(small.size(), 1, "not minimal: {small:?}");
        assert_eq!(small.threads.len(), 1);
        assert!(small.helpers.is_empty());
        assert!(has_print_g0(&small.threads[0]));
    }

    #[test]
    fn shrinking_is_deterministic() {
        let p = FuzzProgram {
            globals: 1,
            helpers: vec![],
            threads: vec![vec![
                SStmt::SetTemp(
                    0,
                    SExpr::Bin(
                        SBin::Add,
                        Box::new(SExpr::Const(3)),
                        Box::new(SExpr::Temp(1)),
                    ),
                ),
                SStmt::Print(SExpr::Temp(0)),
            ]],
        };
        let f = |q: &FuzzProgram| !q.threads[0].is_empty();
        let a = shrink(&p, 1000, f);
        let b = shrink(&p, 1000, f);
        assert_eq!(a, b);
    }
}
