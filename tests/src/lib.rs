//! Integration-test crate; the tests live in `tests/tests/`.
