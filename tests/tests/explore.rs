//! Differential battery for the exploration engines: on generated
//! toy, Clight, and x86 (SC/TSO litmus) programs, the footprint-directed
//! ample reduction and the parallel frontier must agree with the naive
//! exhaustive oracle on every observable — DRF and NPDRF verdicts,
//! per-thread footprint unions, and full trace sets.
//!
//! The file ends with a mutation test: a deliberately overbroad ample
//! condition (`Reduction::AmpleOverbroad`, which also treats silent
//! *global* accesses as independent) must flip the DRF verdict on a
//! program whose race hides behind private prefixes — evidence that
//! this battery would catch an unsound independence relation.

use ccc_analysis::{ample_hints, LockModel};
use ccc_clight::ast::{Expr, Function, Stmt};
use ccc_clight::gen::gen_concurrent_client;
use ccc_clight::{ClightLang, ClightModule};
use ccc_core::lang::{Lang, Prog};
use ccc_core::mem::{GlobalEnv, Val};
use ccc_core::race::{
    check_drf, check_drf_hinted, check_drf_par, check_npdrf, check_npdrf_par, collect_footprints,
    collect_footprints_hinted, collect_footprints_par,
};
use ccc_core::refine::{collect_traces_preemptive, ExploreCfg};
use ccc_core::world::Loaded;
use ccc_core::{AmpleHints, Reduction};
use ccc_fuzz::link::{load_client, SrcLang};
use ccc_fuzz::toygen::{arb_toy_threads, toy_loaded, Op};
use ccc_machine::{litmus, X86Sc, X86Tso};
use proptest::prelude::*;

fn cfg_with(reduction: Reduction, threads: usize) -> ExploreCfg {
    ExploreCfg {
        fuel: 240,
        max_states: 600_000,
        reduction,
        threads,
        ..Default::default()
    }
}

/// Runs all engines on one program and cross-checks every observable.
/// `traces` additionally compares the full trace sets (viable only when
/// the interleaving space is small).
fn assert_engines_agree<L>(name: &str, loaded: &Loaded<L>, traces: bool)
where
    L: Lang + Sync,
    L::Module: Sync,
    L::Core: Send + Sync,
{
    let naive_cfg = cfg_with(Reduction::Off, 1);
    let ample_cfg = cfg_with(Reduction::Ample, 1);
    let par_cfg = cfg_with(Reduction::Off, 3);

    let naive = check_drf(loaded, &naive_cfg).expect("loads");
    let ample = check_drf(loaded, &ample_cfg).expect("loads");
    let par = check_drf_par(loaded, &par_cfg).expect("loads");
    assert!(
        !naive.truncated && !ample.truncated && !par.truncated,
        "{name}: truncated exploration proves nothing"
    );
    assert_eq!(
        naive.is_drf(),
        ample.is_drf(),
        "{name}: DRF verdict (ample)"
    );
    assert_eq!(naive.is_drf(), par.is_drf(), "{name}: DRF verdict (par)");

    let np = check_npdrf(loaded, &naive_cfg).expect("loads");
    let np_par = check_npdrf_par(loaded, &par_cfg).expect("loads");
    assert!(
        !np.truncated && !np_par.truncated,
        "{name}: NPDRF truncated"
    );
    assert_eq!(np.is_drf(), np_par.is_drf(), "{name}: NPDRF verdict (par)");

    let fp_naive = collect_footprints(loaded, &naive_cfg).expect("loads");
    let fp_ample = collect_footprints(loaded, &ample_cfg).expect("loads");
    let fp_par = collect_footprints_par(loaded, &par_cfg).expect("loads");
    assert!(
        !fp_naive.truncated && !fp_ample.truncated && !fp_par.truncated,
        "{name}: footprint exploration truncated"
    );
    assert_eq!(
        fp_naive.fps, fp_ample.fps,
        "{name}: footprint unions (ample)"
    );
    assert_eq!(fp_naive.fps, fp_par.fps, "{name}: footprint unions (par)");

    if traces {
        let ts_naive = collect_traces_preemptive(loaded, &naive_cfg).expect("loads");
        let ts_ample = collect_traces_preemptive(loaded, &ample_cfg).expect("loads");
        assert!(
            !ts_naive.truncated && !ts_ample.truncated,
            "{name}: trace collection truncated"
        );
        assert_eq!(
            ts_naive.traces, ts_ample.traces,
            "{name}: trace sets (ample)"
        );
    }
}

// ---------------------------------------------------------------------------
// Generated toy programs (generator shared via ccc_fuzz::toygen)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(56))]

    #[test]
    fn toy_engines_agree(threads in arb_toy_threads()) {
        let loaded = toy_loaded(&threads);
        assert_engines_agree("generated toy", &loaded, true);
    }
}

// ---------------------------------------------------------------------------
// Generated Clight clients + CImp lock object
// ---------------------------------------------------------------------------

fn clight_loaded(seed: u64, threads: usize, racy: bool) -> Loaded<SrcLang> {
    let (client, ge, entries) = gen_concurrent_client(seed, threads, &["s0", "s1"], racy);
    load_client(client, ge, entries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn clight_engines_agree(seed in any::<u64>(), racy in any::<bool>()) {
        let loaded = clight_loaded(seed, 2, racy);
        assert_engines_agree("generated clight", &loaded, false);
    }
}

// ---------------------------------------------------------------------------
// x86 litmus corpus, under both SC and TSO
// ---------------------------------------------------------------------------

#[test]
fn litmus_engines_agree_sc_and_tso() {
    // The observer threads of R and 2+2W spin; their buffered state
    // spaces dwarf the rest of the corpus for no extra coverage here.
    for l in litmus::corpus()
        .into_iter()
        .filter(|l| !matches!(l.name, "R" | "2+2W"))
    {
        let sc = Loaded::new(Prog::new(
            X86Sc,
            vec![(l.module.clone(), l.ge.clone())],
            l.entries.clone(),
        ))
        .expect("sc links");
        assert_engines_agree(&format!("{}/sc", l.name), &sc, true);

        let tso =
            Loaded::new(Prog::new(X86Tso, vec![(l.module, l.ge)], l.entries)).expect("tso links");
        assert_engines_agree(&format!("{}/tso", l.name), &tso, false);
    }
}

// ---------------------------------------------------------------------------
// Escape-analysis hints: collapse private globals, survive lies
// ---------------------------------------------------------------------------

/// Two threads each grinding on their own named global, then reading
/// the shared `s0` — DRF, but the grinds are invisible to the plain
/// ample reduction (globals are never in a thread's free list).
fn private_global_client(depth: usize) -> (Loaded<ClightLang>, AmpleHints) {
    let mut ge = GlobalEnv::new();
    ge.define("s0", Val::Int(0));
    let mut funcs = Vec::new();
    let mut entries = Vec::new();
    for t in 0..2 {
        let p = format!("p{t}");
        ge.define(p.clone(), Val::Int(0));
        let mut body = Vec::new();
        for _ in 0..depth {
            body.push(Stmt::Assign(
                Expr::var(p.clone()),
                Expr::add(Expr::var(p.clone()), Expr::Const(1)),
            ));
        }
        body.push(Stmt::Set("o".into(), Expr::var("s0")));
        body.push(Stmt::Return(None));
        let name = format!("w{t}");
        funcs.push((name.clone(), Function::simple(Stmt::seq(body))));
        entries.push(name);
    }
    let client = ClightModule::new(funcs);
    let hints = ample_hints(&client, &entries, &LockModel::default(), &ge);
    let loaded =
        Loaded::new(Prog::new(ClightLang, vec![(client, ge)], entries)).expect("client links");
    (loaded, hints)
}

#[test]
fn escape_hints_collapse_private_globals_without_changing_observables() {
    let (loaded, hints) = private_global_client(3);
    assert!(hints.private.iter().all(|s| s.len() == 1));
    let naive_cfg = cfg_with(Reduction::Off, 1);
    let ample_cfg = cfg_with(Reduction::Ample, 1);

    let naive = check_drf(&loaded, &naive_cfg).expect("loads");
    let ample = check_drf(&loaded, &ample_cfg).expect("loads");
    let hinted = check_drf_hinted(&loaded, &ample_cfg, &hints).expect("loads");
    assert!(!naive.truncated && !hinted.truncated);
    assert!(naive.is_drf() && hinted.is_drf());
    assert!(
        hinted.states < ample.states,
        "hints must collapse the global grinds ({} vs {} states)",
        hinted.states,
        ample.states
    );

    let fp_naive = collect_footprints(&loaded, &naive_cfg).expect("loads");
    let fp_hinted = collect_footprints_hinted(&loaded, &ample_cfg, &hints).expect("loads");
    assert_eq!(fp_naive.fps, fp_hinted.fps, "footprint unions (hinted)");
}

#[test]
fn lying_hints_trip_the_monitor_and_keep_the_race() {
    // Both threads race on the global `x`; the hints falsely claim it
    // private to thread 0. The monitor catches thread 1's access (a
    // racing step is never ample, so it stays interleaved and visible)
    // and the checker falls back to the naive verdict.
    let racy: Vec<Op> = vec![Op::Priv(1), Op::Write(0)];
    let loaded = toy_loaded(&[racy.clone(), racy]);
    let x = loaded.prog.modules[0].ge.lookup("x").expect("x defined");
    let lying = AmpleHints {
        private: vec![[x].into(), [].into()],
    };
    let hinted = check_drf_hinted(&loaded, &cfg_with(Reduction::Ample, 1), &lying).expect("loads");
    assert!(!hinted.truncated);
    assert!(!hinted.is_drf(), "the race must survive lying hints");
}

#[test]
fn non_disjoint_hints_are_dropped() {
    // Both threads claiming the same address violates the engine's
    // precondition; such hints are discarded wholesale, leaving the
    // plain ample reduction.
    let (loaded, _) = private_global_client(2);
    let p0 = loaded.prog.modules[0].ge.lookup("p0").expect("p0 defined");
    let overlapping = AmpleHints {
        private: vec![[p0].into(), [p0].into()],
    };
    assert!(!overlapping.disjoint());
    let ample_cfg = cfg_with(Reduction::Ample, 1);
    let plain = check_drf(&loaded, &ample_cfg).expect("loads");
    let hinted = check_drf_hinted(&loaded, &ample_cfg, &overlapping).expect("loads");
    assert_eq!(plain.states, hinted.states, "dropped hints change nothing");
    assert_eq!(plain.is_drf(), hinted.is_drf());
}

// ---------------------------------------------------------------------------
// Mutation test: the battery catches an unsound independence relation
// ---------------------------------------------------------------------------

#[test]
fn overbroad_ample_condition_is_caught_by_the_differential() {
    // Two threads, each: a silent private prefix, then an unprotected
    // write to the same global. The race only shows at interleavings
    // where both threads are poised at the write; the overbroad ample
    // condition (silent global accesses treated as independent) runs
    // each thread to completion alone and never reaches one.
    let racy: Vec<Op> = vec![Op::Priv(1), Op::Priv(2), Op::Write(0)];
    let loaded = toy_loaded(&[racy.clone(), racy]);

    let naive = check_drf(&loaded, &cfg_with(Reduction::Off, 1)).expect("loads");
    assert!(!naive.truncated);
    assert!(!naive.is_drf(), "the oracle must see the write-write race");

    let sound = check_drf(&loaded, &cfg_with(Reduction::Ample, 1)).expect("loads");
    assert!(
        !sound.is_drf(),
        "the shipped ample condition keeps the race"
    );

    let mutated = check_drf(&loaded, &cfg_with(Reduction::AmpleOverbroad, 1)).expect("loads");
    assert!(
        mutated.is_drf(),
        "the seeded commutativity bug must miss the race — if this fails, \
         the mutant is no longer a mutant and the battery's sensitivity \
         claim is untested"
    );
    assert_ne!(
        naive.is_drf(),
        mutated.is_drf(),
        "differential testing flags the unsound reduction"
    );
}
