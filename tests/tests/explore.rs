//! Differential battery for the exploration engines: on generated
//! toy, Clight, x86-TSO, and x86 (SC/TSO litmus) programs, the
//! footprint-directed ample reduction, the naive parallel frontier,
//! and the POR-composed work-stealing engine (ample reduction inside
//! each worker, under both the fingerprint and the exact visited-set
//! representations) must agree with the naive exhaustive oracle on
//! every observable — DRF and NPDRF verdicts, per-thread footprint
//! unions, and full trace sets.
//!
//! The file ends with two mutation tests: a deliberately overbroad
//! ample condition (`Reduction::AmpleOverbroad`, which also treats
//! silent *global* accesses as independent) must flip the DRF verdict
//! on a program whose race hides behind private prefixes, and a worker
//! that skips the seen-set cycle re-expansion
//! (`Reduction::AmpleIgnoreCycles`, the C3 "ignoring problem") must
//! ample-loop through a silent spin and miss a race every other engine
//! reports — evidence that this battery would catch an unsound
//! independence relation or cycle guard.

use ccc_analysis::{ample_hints, LockModel};
use ccc_clight::ast::{Expr, Function, Stmt};
use ccc_clight::gen::gen_concurrent_client;
use ccc_clight::{ClightLang, ClightModule};
use ccc_core::lang::{Lang, Prog};
use ccc_core::mem::{GlobalEnv, Val};
use ccc_core::race::{
    check_drf, check_drf_hinted, check_drf_par, check_npdrf, check_npdrf_par, collect_footprints,
    collect_footprints_hinted, collect_footprints_par,
};
use ccc_core::refine::{collect_traces_preemptive, ExploreCfg};
use ccc_core::toy::{toy_globals, toy_module, ToyInstr, ToyLang};
use ccc_core::world::Loaded;
use ccc_core::{AmpleHints, Reduction, VisitedMode};
use ccc_fuzz::link::{load_client, SrcLang};
use ccc_fuzz::toygen::{arb_toy_threads, toy_loaded, Op};
use ccc_fuzz::tsogen;
use ccc_machine::{litmus, AsmModule, X86Sc, X86Tso};
use proptest::prelude::*;

fn cfg_with(reduction: Reduction, threads: usize) -> ExploreCfg {
    ExploreCfg {
        fuel: 240,
        max_states: 600_000,
        reduction,
        threads,
        ..Default::default()
    }
}

/// Runs all engines on one program and cross-checks every observable.
/// `traces` additionally compares the full trace sets (viable only when
/// the interleaving space is small).
fn assert_engines_agree<L>(name: &str, loaded: &Loaded<L>, traces: bool)
where
    L: Lang + Sync,
    L::Module: Sync,
    L::Core: Send + Sync,
{
    let naive_cfg = cfg_with(Reduction::Off, 1);
    let ample_cfg = cfg_with(Reduction::Ample, 1);
    let par_cfg = cfg_with(Reduction::Off, 3);
    let ws_cfg = cfg_with(Reduction::Ample, 3);

    let naive = check_drf(loaded, &naive_cfg).expect("loads");
    let ample = check_drf(loaded, &ample_cfg).expect("loads");
    let par = check_drf_par(loaded, &par_cfg).expect("loads");
    assert!(
        !naive.truncated && !ample.truncated && !par.truncated,
        "{name}: truncated exploration proves nothing"
    );
    assert_eq!(
        naive.is_drf(),
        ample.is_drf(),
        "{name}: DRF verdict (ample)"
    );
    assert_eq!(naive.is_drf(), par.is_drf(), "{name}: DRF verdict (par)");

    // The POR-composed work-stealing engine, under both visited-set
    // representations (fingerprints may only force *more* expansion on
    // collision, never less — the verdict must be identical).
    for visited in [VisitedMode::Fingerprint, VisitedMode::Exact] {
        let ws = check_drf_par(loaded, &ExploreCfg { visited, ..ws_cfg }).expect("loads");
        assert!(!ws.truncated, "{name}: WS exploration truncated");
        assert_eq!(
            naive.is_drf(),
            ws.is_drf(),
            "{name}: DRF verdict (work-stealing ample, {visited:?})"
        );
    }

    let np = check_npdrf(loaded, &naive_cfg).expect("loads");
    let np_par = check_npdrf_par(loaded, &par_cfg).expect("loads");
    let np_ws = check_npdrf_par(loaded, &ws_cfg).expect("loads");
    assert!(
        !np.truncated && !np_par.truncated && !np_ws.truncated,
        "{name}: NPDRF truncated"
    );
    assert_eq!(np.is_drf(), np_par.is_drf(), "{name}: NPDRF verdict (par)");
    assert_eq!(
        np.is_drf(),
        np_ws.is_drf(),
        "{name}: NPDRF verdict (work-stealing ample)"
    );

    let fp_naive = collect_footprints(loaded, &naive_cfg).expect("loads");
    let fp_ample = collect_footprints(loaded, &ample_cfg).expect("loads");
    let fp_par = collect_footprints_par(loaded, &par_cfg).expect("loads");
    let fp_ws = collect_footprints_par(loaded, &ws_cfg).expect("loads");
    assert!(
        !fp_naive.truncated && !fp_ample.truncated && !fp_par.truncated && !fp_ws.truncated,
        "{name}: footprint exploration truncated"
    );
    assert_eq!(
        fp_naive.fps, fp_ample.fps,
        "{name}: footprint unions (ample)"
    );
    assert_eq!(fp_naive.fps, fp_par.fps, "{name}: footprint unions (par)");
    assert_eq!(
        fp_naive.fps, fp_ws.fps,
        "{name}: footprint unions (work-stealing ample)"
    );

    if traces {
        let ts_naive = collect_traces_preemptive(loaded, &naive_cfg).expect("loads");
        let ts_ample = collect_traces_preemptive(loaded, &ample_cfg).expect("loads");
        assert!(
            !ts_naive.truncated && !ts_ample.truncated,
            "{name}: trace collection truncated"
        );
        assert_eq!(
            ts_naive.traces, ts_ample.traces,
            "{name}: trace sets (ample)"
        );
    }
}

// ---------------------------------------------------------------------------
// Generated toy programs (generator shared via ccc_fuzz::toygen)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn toy_engines_agree(threads in arb_toy_threads()) {
        let loaded = toy_loaded(&threads);
        assert_engines_agree("generated toy", &loaded, true);
    }
}

// ---------------------------------------------------------------------------
// Generated Clight clients + CImp lock object
// ---------------------------------------------------------------------------

fn clight_loaded(seed: u64, threads: usize, racy: bool) -> Loaded<SrcLang> {
    let (client, ge, entries) = gen_concurrent_client(seed, threads, &["s0", "s1"], racy);
    load_client(client, ge, entries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn clight_engines_agree(seed in any::<u64>(), racy in any::<bool>()) {
        let loaded = clight_loaded(seed, 2, racy);
        assert_engines_agree("generated clight", &loaded, false);
    }
}

// ---------------------------------------------------------------------------
// Generated x86-TSO programs (generator shared via ccc_fuzz::tsogen):
// store buffers give every state a machine component the ample
// condition cannot collapse, so these exercise the engines on
// reduction-hostile state spaces.
// ---------------------------------------------------------------------------

fn tso_loaded(t0: &[tsogen::Op], t1: &[tsogen::Op]) -> Loaded<X86Tso> {
    let m = AsmModule::new([("t0", tsogen::emit(t0)), ("t1", tsogen::emit(t1))]);
    let mut ge = GlobalEnv::new();
    for g in tsogen::GLOBALS {
        ge.define(g, Val::Int(0));
    }
    let entries = vec!["t0".to_string(), "t1".to_string()];
    Loaded::new(Prog::new(X86Tso, vec![(m, ge)], entries)).expect("tso links")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tso_engines_agree(t0 in tsogen::arb_thread(), t1 in tsogen::arb_thread()) {
        assert_engines_agree("generated tso", &tso_loaded(&t0, &t1), false);
    }
}

// ---------------------------------------------------------------------------
// x86 litmus corpus, under both SC and TSO
// ---------------------------------------------------------------------------

#[test]
fn litmus_engines_agree_sc_and_tso() {
    // The observer threads of R and 2+2W spin; their buffered state
    // spaces dwarf the rest of the corpus for no extra coverage here.
    for l in litmus::corpus()
        .into_iter()
        .filter(|l| !matches!(l.name, "R" | "2+2W"))
    {
        let sc = Loaded::new(Prog::new(
            X86Sc,
            vec![(l.module.clone(), l.ge.clone())],
            l.entries.clone(),
        ))
        .expect("sc links");
        assert_engines_agree(&format!("{}/sc", l.name), &sc, true);

        let tso =
            Loaded::new(Prog::new(X86Tso, vec![(l.module, l.ge)], l.entries)).expect("tso links");
        assert_engines_agree(&format!("{}/tso", l.name), &tso, false);
    }
}

// ---------------------------------------------------------------------------
// Escape-analysis hints: collapse private globals, survive lies
// ---------------------------------------------------------------------------

/// Two threads each grinding on their own named global, then reading
/// the shared `s0` — DRF, but the grinds are invisible to the plain
/// ample reduction (globals are never in a thread's free list).
fn private_global_client(depth: usize) -> (Loaded<ClightLang>, AmpleHints) {
    let mut ge = GlobalEnv::new();
    ge.define("s0", Val::Int(0));
    let mut funcs = Vec::new();
    let mut entries = Vec::new();
    for t in 0..2 {
        let p = format!("p{t}");
        ge.define(p.clone(), Val::Int(0));
        let mut body = Vec::new();
        for _ in 0..depth {
            body.push(Stmt::Assign(
                Expr::var(p.clone()),
                Expr::add(Expr::var(p.clone()), Expr::Const(1)),
            ));
        }
        body.push(Stmt::Set("o".into(), Expr::var("s0")));
        body.push(Stmt::Return(None));
        let name = format!("w{t}");
        funcs.push((name.clone(), Function::simple(Stmt::seq(body))));
        entries.push(name);
    }
    let client = ClightModule::new(funcs);
    let hints = ample_hints(&client, &entries, &LockModel::default(), &ge);
    let loaded =
        Loaded::new(Prog::new(ClightLang, vec![(client, ge)], entries)).expect("client links");
    (loaded, hints)
}

#[test]
fn escape_hints_collapse_private_globals_without_changing_observables() {
    let (loaded, hints) = private_global_client(3);
    assert!(hints.private.iter().all(|s| s.len() == 1));
    let naive_cfg = cfg_with(Reduction::Off, 1);
    let ample_cfg = cfg_with(Reduction::Ample, 1);

    let naive = check_drf(&loaded, &naive_cfg).expect("loads");
    let ample = check_drf(&loaded, &ample_cfg).expect("loads");
    let hinted = check_drf_hinted(&loaded, &ample_cfg, &hints).expect("loads");
    assert!(!naive.truncated && !hinted.truncated);
    assert!(naive.is_drf() && hinted.is_drf());
    assert!(
        hinted.states < ample.states,
        "hints must collapse the global grinds ({} vs {} states)",
        hinted.states,
        ample.states
    );

    let fp_naive = collect_footprints(&loaded, &naive_cfg).expect("loads");
    let fp_hinted = collect_footprints_hinted(&loaded, &ample_cfg, &hints).expect("loads");
    assert_eq!(fp_naive.fps, fp_hinted.fps, "footprint unions (hinted)");
}

#[test]
fn lying_hints_trip_the_monitor_and_keep_the_race() {
    // Both threads race on the global `x`; the hints falsely claim it
    // private to thread 0. The monitor catches thread 1's access (a
    // racing step is never ample, so it stays interleaved and visible)
    // and the checker falls back to the naive verdict.
    let racy: Vec<Op> = vec![Op::Priv(1), Op::Write(0)];
    let loaded = toy_loaded(&[racy.clone(), racy]);
    let x = loaded.prog.modules[0].ge.lookup("x").expect("x defined");
    let lying = AmpleHints {
        private: vec![[x].into(), [].into()],
    };
    let hinted = check_drf_hinted(&loaded, &cfg_with(Reduction::Ample, 1), &lying).expect("loads");
    assert!(!hinted.truncated);
    assert!(!hinted.is_drf(), "the race must survive lying hints");
}

#[test]
fn non_disjoint_hints_are_dropped() {
    // Both threads claiming the same address violates the engine's
    // precondition; such hints are discarded wholesale, leaving the
    // plain ample reduction.
    let (loaded, _) = private_global_client(2);
    let p0 = loaded.prog.modules[0].ge.lookup("p0").expect("p0 defined");
    let overlapping = AmpleHints {
        private: vec![[p0].into(), [p0].into()],
    };
    assert!(!overlapping.disjoint());
    let ample_cfg = cfg_with(Reduction::Ample, 1);
    let plain = check_drf(&loaded, &ample_cfg).expect("loads");
    let hinted = check_drf_hinted(&loaded, &ample_cfg, &overlapping).expect("loads");
    assert_eq!(plain.states, hinted.states, "dropped hints change nothing");
    assert_eq!(plain.is_drf(), hinted.is_drf());
}

// ---------------------------------------------------------------------------
// Mutation test: the battery catches an unsound independence relation
// ---------------------------------------------------------------------------

#[test]
fn overbroad_ample_condition_is_caught_by_the_differential() {
    // Two threads, each: a silent private prefix, then an unprotected
    // write to the same global. The race only shows at interleavings
    // where both threads are poised at the write; the overbroad ample
    // condition (silent global accesses treated as independent) runs
    // each thread to completion alone and never reaches one.
    let racy: Vec<Op> = vec![Op::Priv(1), Op::Priv(2), Op::Write(0)];
    let loaded = toy_loaded(&[racy.clone(), racy]);

    let naive = check_drf(&loaded, &cfg_with(Reduction::Off, 1)).expect("loads");
    assert!(!naive.truncated);
    assert!(!naive.is_drf(), "the oracle must see the write-write race");

    let sound = check_drf(&loaded, &cfg_with(Reduction::Ample, 1)).expect("loads");
    assert!(
        !sound.is_drf(),
        "the shipped ample condition keeps the race"
    );

    let mutated = check_drf(&loaded, &cfg_with(Reduction::AmpleOverbroad, 1)).expect("loads");
    assert!(
        mutated.is_drf(),
        "the seeded commutativity bug must miss the race — if this fails, \
         the mutant is no longer a mutant and the battery's sensitivity \
         claim is untested"
    );
    assert_ne!(
        naive.is_drf(),
        mutated.is_drf(),
        "differential testing flags the unsound reduction"
    );
}

#[test]
fn skipping_cycle_reexpansion_is_caught_by_the_differential() {
    // t0 spins silently forever (`jmp 0`, a one-state cycle whose only
    // step is an ample candidate); t1 and t2 race on the global `x`.
    // Soundness of the reduction hangs on the C3 "ignoring" guard: an
    // engine must refuse an ample set whose successor is already in
    // the visited set and fall back to full expansion, so the racing
    // threads get scheduled past the spin. `AmpleIgnoreCycles` is the
    // seeded unsoundness — a worker that skips that re-expansion — and
    // must ample-loop on t0 and report DRF, sequentially and at every
    // worker count, while every sound engine keeps the race.
    let spin = vec![ToyInstr::Jmp(0)];
    let write = vec![
        ToyInstr::LoadG("x".into()),
        ToyInstr::Add(1),
        ToyInstr::StoreG("x".into()),
        ToyInstr::Ret(0),
    ];
    let (m, _) = toy_module(&[("t0", spin), ("t1", write.clone()), ("t2", write)], &[]);
    let loaded: Loaded<ToyLang> = Loaded::new(Prog::new(
        ToyLang,
        vec![(m, toy_globals(&[("x", 0)]))],
        ["t0", "t1", "t2"],
    ))
    .expect("toy links");

    let naive = check_drf(&loaded, &cfg_with(Reduction::Off, 1)).expect("loads");
    assert!(!naive.truncated);
    assert!(!naive.is_drf(), "the oracle must see the write-write race");

    let sound = check_drf(&loaded, &cfg_with(Reduction::Ample, 1)).expect("loads");
    assert!(!sound.is_drf(), "the sequential cycle guard keeps the race");
    for workers in [1, 3] {
        let ws = check_drf_par(&loaded, &cfg_with(Reduction::Ample, workers)).expect("loads");
        assert!(
            !ws.is_drf(),
            "the shared visited set keeps the race at {workers} workers"
        );
    }

    let mutated = check_drf(&loaded, &cfg_with(Reduction::AmpleIgnoreCycles, 1)).expect("loads");
    assert!(
        mutated.is_drf(),
        "the seeded cycle-skipping bug must miss the race — if this fails, \
         the mutant is no longer a mutant and the battery's sensitivity \
         claim is untested"
    );
    let mutated_ws =
        check_drf_par(&loaded, &cfg_with(Reduction::AmpleIgnoreCycles, 3)).expect("loads");
    assert!(
        mutated_ws.is_drf(),
        "a cycle-skipping worker must also miss the race in the \
         work-stealing engine"
    );
    assert_ne!(
        naive.is_drf(),
        mutated.is_drf(),
        "differential testing flags the unsound cycle handling"
    );
}
