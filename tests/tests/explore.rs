//! Differential battery for the exploration engines: on generated
//! toy, Clight, and x86 (SC/TSO litmus) programs, the footprint-directed
//! ample reduction and the parallel frontier must agree with the naive
//! exhaustive oracle on every observable — DRF and NPDRF verdicts,
//! per-thread footprint unions, and full trace sets.
//!
//! The file ends with a mutation test: a deliberately overbroad ample
//! condition (`Reduction::AmpleOverbroad`, which also treats silent
//! *global* accesses as independent) must flip the DRF verdict on a
//! program whose race hides behind private prefixes — evidence that
//! this battery would catch an unsound independence relation.

use ccc_clight::gen::gen_concurrent_client;
use ccc_core::lang::{Lang, Prog};
use ccc_core::race::{
    check_drf, check_drf_par, check_npdrf, check_npdrf_par, collect_footprints,
    collect_footprints_par,
};
use ccc_core::refine::{collect_traces_preemptive, ExploreCfg};
use ccc_core::world::Loaded;
use ccc_core::Reduction;
use ccc_fuzz::link::{load_client, SrcLang};
use ccc_fuzz::toygen::{arb_toy_threads, toy_loaded, Op};
use ccc_machine::{litmus, X86Sc, X86Tso};
use proptest::prelude::*;

fn cfg_with(reduction: Reduction, threads: usize) -> ExploreCfg {
    ExploreCfg {
        fuel: 240,
        max_states: 600_000,
        reduction,
        threads,
        ..Default::default()
    }
}

/// Runs all engines on one program and cross-checks every observable.
/// `traces` additionally compares the full trace sets (viable only when
/// the interleaving space is small).
fn assert_engines_agree<L>(name: &str, loaded: &Loaded<L>, traces: bool)
where
    L: Lang + Sync,
    L::Module: Sync,
    L::Core: Send + Sync,
{
    let naive_cfg = cfg_with(Reduction::Off, 1);
    let ample_cfg = cfg_with(Reduction::Ample, 1);
    let par_cfg = cfg_with(Reduction::Off, 3);

    let naive = check_drf(loaded, &naive_cfg).expect("loads");
    let ample = check_drf(loaded, &ample_cfg).expect("loads");
    let par = check_drf_par(loaded, &par_cfg).expect("loads");
    assert!(
        !naive.truncated && !ample.truncated && !par.truncated,
        "{name}: truncated exploration proves nothing"
    );
    assert_eq!(
        naive.is_drf(),
        ample.is_drf(),
        "{name}: DRF verdict (ample)"
    );
    assert_eq!(naive.is_drf(), par.is_drf(), "{name}: DRF verdict (par)");

    let np = check_npdrf(loaded, &naive_cfg).expect("loads");
    let np_par = check_npdrf_par(loaded, &par_cfg).expect("loads");
    assert!(
        !np.truncated && !np_par.truncated,
        "{name}: NPDRF truncated"
    );
    assert_eq!(np.is_drf(), np_par.is_drf(), "{name}: NPDRF verdict (par)");

    let fp_naive = collect_footprints(loaded, &naive_cfg).expect("loads");
    let fp_ample = collect_footprints(loaded, &ample_cfg).expect("loads");
    let fp_par = collect_footprints_par(loaded, &par_cfg).expect("loads");
    assert!(
        !fp_naive.truncated && !fp_ample.truncated && !fp_par.truncated,
        "{name}: footprint exploration truncated"
    );
    assert_eq!(
        fp_naive.fps, fp_ample.fps,
        "{name}: footprint unions (ample)"
    );
    assert_eq!(fp_naive.fps, fp_par.fps, "{name}: footprint unions (par)");

    if traces {
        let ts_naive = collect_traces_preemptive(loaded, &naive_cfg).expect("loads");
        let ts_ample = collect_traces_preemptive(loaded, &ample_cfg).expect("loads");
        assert!(
            !ts_naive.truncated && !ts_ample.truncated,
            "{name}: trace collection truncated"
        );
        assert_eq!(
            ts_naive.traces, ts_ample.traces,
            "{name}: trace sets (ample)"
        );
    }
}

// ---------------------------------------------------------------------------
// Generated toy programs (generator shared via ccc_fuzz::toygen)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(56))]

    #[test]
    fn toy_engines_agree(threads in arb_toy_threads()) {
        let loaded = toy_loaded(&threads);
        assert_engines_agree("generated toy", &loaded, true);
    }
}

// ---------------------------------------------------------------------------
// Generated Clight clients + CImp lock object
// ---------------------------------------------------------------------------

fn clight_loaded(seed: u64, threads: usize, racy: bool) -> Loaded<SrcLang> {
    let (client, ge, entries) = gen_concurrent_client(seed, threads, &["s0", "s1"], racy);
    load_client(client, ge, entries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn clight_engines_agree(seed in any::<u64>(), racy in any::<bool>()) {
        let loaded = clight_loaded(seed, 2, racy);
        assert_engines_agree("generated clight", &loaded, false);
    }
}

// ---------------------------------------------------------------------------
// x86 litmus corpus, under both SC and TSO
// ---------------------------------------------------------------------------

#[test]
fn litmus_engines_agree_sc_and_tso() {
    // The observer threads of R and 2+2W spin; their buffered state
    // spaces dwarf the rest of the corpus for no extra coverage here.
    for l in litmus::corpus()
        .into_iter()
        .filter(|l| !matches!(l.name, "R" | "2+2W"))
    {
        let sc = Loaded::new(Prog::new(
            X86Sc,
            vec![(l.module.clone(), l.ge.clone())],
            l.entries.clone(),
        ))
        .expect("sc links");
        assert_engines_agree(&format!("{}/sc", l.name), &sc, true);

        let tso =
            Loaded::new(Prog::new(X86Tso, vec![(l.module, l.ge)], l.entries)).expect("tso links");
        assert_engines_agree(&format!("{}/tso", l.name), &tso, false);
    }
}

// ---------------------------------------------------------------------------
// Mutation test: the battery catches an unsound independence relation
// ---------------------------------------------------------------------------

#[test]
fn overbroad_ample_condition_is_caught_by_the_differential() {
    // Two threads, each: a silent private prefix, then an unprotected
    // write to the same global. The race only shows at interleavings
    // where both threads are poised at the write; the overbroad ample
    // condition (silent global accesses treated as independent) runs
    // each thread to completion alone and never reaches one.
    let racy: Vec<Op> = vec![Op::Priv(1), Op::Priv(2), Op::Write(0)];
    let loaded = toy_loaded(&[racy.clone(), racy]);

    let naive = check_drf(&loaded, &cfg_with(Reduction::Off, 1)).expect("loads");
    assert!(!naive.truncated);
    assert!(!naive.is_drf(), "the oracle must see the write-write race");

    let sound = check_drf(&loaded, &cfg_with(Reduction::Ample, 1)).expect("loads");
    assert!(
        !sound.is_drf(),
        "the shipped ample condition keeps the race"
    );

    let mutated = check_drf(&loaded, &cfg_with(Reduction::AmpleOverbroad, 1)).expect("loads");
    assert!(
        mutated.is_drf(),
        "the seeded commutativity bug must miss the race — if this fails, \
         the mutant is no longer a mutant and the battery's sensitivity \
         claim is untested"
    );
    assert_ne!(
        naive.is_drf(),
        mutated.is_drf(),
        "differential testing flags the unsound reduction"
    );
}
