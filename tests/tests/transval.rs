//! Integration gates for the symbolic translation validator
//! (`ccc_analysis::transval`).
//!
//! * Zero false rejections: every clean compilation of the persisted
//!   regression corpus and of a proptest-generated program sample
//!   validates statically, with **every** pipeline stage `Validated` —
//!   no stage reports `Unsupported`, so `Validation::Static` never
//!   falls back to the differential oracle.
//! * Zero false acceptances on the seeded mutants: every compiled-
//!   pipeline mutant is rejected *statically* — no instruction is
//!   executed — and the rejection is localized to the mutated pass;
//!   the object-level `IdTrans` mutants are rejected by the dedicated
//!   `validate_id_trans` check.
//! * Hints are untrusted: a hand-seeded unsound block matching (one
//!   whose footprint cover would have to be over-wide) is rejected.
//! * Witnesses are durable: every `SimWitness` survives the hand-
//!   rolled JSON round-trip with all obligations intact.
//! * `Validation::Both` never disagrees with the differential
//!   co-execution oracle on the corpus.

use ccc_analysis::transval::json::{
    pipeline_from_json, pipeline_to_json, witness_from_json, witness_to_json,
};
use ccc_analysis::transval::passes::validate_rtl_matching;
use ccc_analysis::transval::{ObligationKind, Verdict};
use ccc_analysis::{validate_artifacts, validate_id_trans, validate_with_mode, Validation};
use ccc_compiler::driver::compile_with_artifacts;
use ccc_compiler::rtl::{Function as RtlFn, Instr, RtlModule};
use ccc_compiler::{
    compile_with_artifacts_mutated, id_trans_drop_assert, id_trans_mutated, Mutant,
};
use ccc_fuzz::{gen_program, lower, CorpusEntry};
use ccc_sync::lock::lock_spec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn corpus_entries() -> Vec<(PathBuf, CorpusEntry)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|d| d.path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p).expect("readable corpus file");
            let entry =
                CorpusEntry::from_text(&text).unwrap_or_else(|e| panic!("{}: {e:?}", p.display()));
            (p, entry)
        })
        .collect()
}

/// Every mutant of the *compiled* pipeline (the object-level `IdTrans`
/// family goes through `validate_id_trans` instead), with the pass the
/// static validator must localize its rejection to.
const PIPELINE_MUTANTS: [Mutant; 17] = [
    Mutant::Cminorgen,
    Mutant::CminorgenSwap,
    Mutant::Selection,
    Mutant::SelectionCmpSwap,
    Mutant::Rtlgen,
    Mutant::RtlgenRetZero,
    Mutant::Tailcall,
    Mutant::Renumber,
    Mutant::Constprop,
    Mutant::Allocation,
    Mutant::Tunneling,
    Mutant::Linearize,
    Mutant::CleanupLabels,
    Mutant::Stacking,
    Mutant::StackingOffByOne,
    Mutant::Asmgen,
    Mutant::AsmgenDropCmp,
];

/// Every validated stage: the 11 pipeline stages, the Constprop
/// extension, and the object-level IdTrans check, in order.
const ALL_STAGES: [&str; 13] = [
    "Cshmgen/Cminorgen",
    "Selection",
    "RTLgen",
    "Tailcall",
    "Renumber",
    "Constprop",
    "Allocation",
    "Tunneling",
    "Linearize",
    "CleanupLabels",
    "Stacking",
    "Asmgen",
    "IdTrans",
];

#[test]
fn corpus_accepts_statically_with_every_stage_validated() {
    let entries = corpus_entries();
    assert!(entries.len() >= 22, "corpus incomplete: {}", entries.len());
    for (path, entry) in &entries {
        let (m, _ge, _entries) = lower(&entry.program);
        // The extended pipeline (with the Constprop stage) — the same
        // one the fuzz oracle validates.
        let arts = compile_with_artifacts_mutated(&m, None)
            .unwrap_or_else(|e| panic!("{}: clean compile failed: {e:?}", path.display()));
        let w = validate_artifacts(&arts);
        assert!(w.ok(), "{}: false rejection:\n{w}", path.display());
        // Full coverage: 12 witnesses (11 pipeline stages + the
        // Constprop extension; IdTrans is validated at the object
        // level), all Validated, none Unsupported.
        assert_eq!(
            w.witnesses.len(),
            12,
            "{}: wrong stage count",
            path.display()
        );
        for sw in &w.witnesses {
            assert_eq!(
                sw.verdict,
                Verdict::Validated,
                "{}: stage {} not statically validated:\n{w}",
                path.display(),
                sw.pass
            );
        }
        assert!(
            w.unsupported_passes().is_empty(),
            "{}: stages silently unsupported: {:?}",
            path.display(),
            w.unsupported_passes()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Zero false rejections over generated programs, with no stage
    // falling back: any clean compilation's artifacts must discharge
    // all obligations of all 12 stages.
    #[test]
    fn generated_programs_accept_statically(seed in 0u64..1_000_000, size in 0u32..8) {
        let p = gen_program(seed, size);
        let (m, _ge, _entries) = lower(&p);
        let arts = compile_with_artifacts_mutated(&m, None).expect("generated programs compile");
        let w = validate_artifacts(&arts);
        prop_assert!(w.ok(), "false rejection on seed {seed}/{size}:\n{w}");
        prop_assert!(
            w.unsupported_passes().is_empty(),
            "silent fallback on seed {seed}/{size}: {:?}",
            w.unsupported_passes()
        );
        prop_assert_eq!(w.witnesses.len(), 12);
    }

    // The object-level identity transformation validates for arbitrary
    // lock-global names (the only parameter `lock_spec` takes).
    #[test]
    fn id_trans_accepts_clean_lock_objects(name in "[A-Za-z][A-Za-z0-9_]{0,8}") {
        let (lock, _ge) = lock_spec(&name);
        let w = validate_id_trans(&lock, &lock);
        prop_assert_eq!(w.verdict, Verdict::Validated, "false rejection:\n{}", w);
    }
}

#[test]
fn pipeline_mutants_rejected_statically_at_their_stage() {
    for mutant in PIPELINE_MUTANTS {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("corpus")
            .join(format!("kill_{mutant:?}.txt").to_lowercase());
        let text = std::fs::read_to_string(&path).expect("corpus killer exists");
        let entry = CorpusEntry::from_text(&text).expect("parses");
        let (m, _ge, _entries) = lower(&entry.program);
        let arts =
            compile_with_artifacts_mutated(&m, Some(mutant)).expect("mutated pipeline compiles");
        let w = validate_artifacts(&arts);
        let rejected: Vec<_> = w.rejected().collect();
        assert!(
            !rejected.is_empty(),
            "{mutant:?} slipped past the static validator"
        );
        assert_eq!(
            rejected[0].pass,
            mutant.pass_name(),
            "{mutant:?} rejected at the wrong pass:\n{w}"
        );
    }
}

#[test]
fn id_trans_mutants_rejected_by_atomic_shape() {
    let (lock, _ge) = lock_spec("L");
    for (name, tgt) in [
        ("IdTrans", id_trans_mutated(&lock)),
        ("IdTransDropAssert", id_trans_drop_assert(&lock)),
    ] {
        let w = validate_id_trans(&lock, &tgt);
        assert_eq!(w.verdict, Verdict::Rejected, "{name} accepted:\n{w}");
        assert!(
            w.obligations
                .iter()
                .any(|o| o.kind == ObligationKind::AtomicShape && !o.discharged),
            "{name}: expected an undischarged AtomicShape obligation:\n{w}"
        );
    }
}

#[test]
fn unsound_matching_with_overwide_footprint_is_rejected() {
    // Source: f() { r1 := 1; return r1 } — no memory effects at all.
    let mut src = RtlModule::default();
    src.funcs.insert(
        "f".into(),
        RtlFn {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(ccc_compiler::ops::Op::Const(1), vec![], 1, 1)),
                (1, Instr::Return(Some(1))),
            ]),
        },
    );
    // Target: f() { r1 := [g+0]; return r1 } — reads a global the
    // source never touches. Any matching claiming this refines the
    // source needs an over-wide footprint cover; the validator must
    // refuse to discharge it.
    let mut tgt = RtlModule::default();
    tgt.funcs.insert(
        "f".into(),
        RtlFn {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (
                    0,
                    Instr::Load(ccc_compiler::ops::AddrMode::Global("g".into(), 0), 1, 1),
                ),
                (1, Instr::Return(Some(1))),
            ]),
        },
    );
    let matching = BTreeMap::from([("f".to_string(), BTreeMap::from([(0u32, 0u32), (1, 1)]))]);
    let w = validate_rtl_matching("Renumber", &src, &tgt, &matching);
    assert_eq!(w.verdict, Verdict::Rejected);
    assert!(
        w.obligations
            .iter()
            .any(|o| o.kind == ObligationKind::FootprintCover && !o.discharged),
        "expected an undischarged FootprintCover obligation:\n{w}"
    );
}

#[test]
fn static_board_kills_every_mutant_on_corpus() {
    // The 22-mutant board over the persisted corpus witnesses: every
    // mutant — front end, mid end, back end and the object level —
    // must die statically, with no dynamic oracle left in the loop.
    let witnesses: Vec<_> = Mutant::ALL
        .iter()
        .map(|&m| {
            let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("corpus")
                .join(format!("kill_{m:?}.txt").to_lowercase());
            let text = std::fs::read_to_string(&path).expect("corpus killer exists");
            (m, CorpusEntry::from_text(&text).expect("parses").program)
        })
        .collect();
    let board = ccc_fuzz::transval_corpus_board(&witnesses);
    let survivors: Vec<_> = board
        .iter()
        .filter(|k| !k.killed())
        .map(|k| k.mutant)
        .collect();
    assert!(
        survivors.is_empty(),
        "mutants surviving the static board: {survivors:?}\n{}",
        ccc_fuzz::static_board_markdown(&board)
    );
    assert_eq!(board.len(), Mutant::ALL.len());
}

#[test]
fn witnesses_round_trip_through_json_for_every_stage() {
    // One clean pipeline and one rejected one: every stage's witness —
    // including failure notes and node anchors — must survive
    // serialize → deserialize intact, and the reconstructed verdict
    // must still agree with its obligations (re-validation).
    let entries = corpus_entries();
    let (_, entry) = &entries[0];
    let (m, _ge, _entries) = lower(&entry.program);
    let pipelines = vec![
        validate_artifacts(&compile_with_artifacts_mutated(&m, None).expect("clean compile")),
        validate_artifacts(
            &compile_with_artifacts_mutated(&m, Some(Mutant::Rtlgen)).expect("mutated compile"),
        ),
    ];
    let (lock, _ge) = lock_spec("L");
    let mut seen_stages: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut witnesses: Vec<_> = pipelines.iter().flat_map(|p| p.witnesses.clone()).collect();
    witnesses.push(validate_id_trans(&lock, &lock));
    witnesses.push(validate_id_trans(&lock, &id_trans_mutated(&lock)));
    for sw in &witnesses {
        seen_stages.insert(sw.pass.clone());
        let json = witness_to_json(sw);
        let back = witness_from_json(&json)
            .unwrap_or_else(|e| panic!("stage {}: round trip failed: {e}\n{json}", sw.pass));
        assert_eq!(
            &back, sw,
            "stage {}: witness altered by round trip",
            sw.pass
        );
        // Re-validate: the stored verdict is consistent with the
        // obligations it claims to summarize.
        let rederived = if back.obligations.iter().all(|o| o.discharged) {
            Verdict::Validated
        } else {
            Verdict::Rejected
        };
        if back.verdict != Verdict::Unsupported {
            assert_eq!(back.verdict, rederived, "stage {}: stale verdict", sw.pass);
        }
    }
    for stage in ALL_STAGES {
        assert!(seen_stages.contains(stage), "no witness exercised {stage}");
    }
    // Whole-pipeline round trip too.
    for p in &pipelines {
        let json = pipeline_to_json(p);
        let back = pipeline_from_json(&json).expect("pipeline round trip");
        assert_eq!(back.witnesses, p.witnesses);
    }
}

#[test]
fn static_mode_runs_no_differential_fallback() {
    let corpus = corpus_entries();
    let (_, entry) = &corpus[0];
    let (m, ge, entries) = lower(&entry.program);
    let arts = compile_with_artifacts(&m).expect("clean compile");
    let report = validate_with_mode(&arts, &ge, &entries[0], Validation::Static);
    assert!(report.ok());
    assert!(
        report.differential.is_none(),
        "Validation::Static silently fell back to the differential oracle: {:?}",
        report.differential
    );
}

#[test]
fn both_mode_never_disagrees_on_corpus() {
    for (path, entry) in corpus_entries() {
        let (m, ge, entries) = lower(&entry.program);
        let arts = compile_with_artifacts(&m).expect("clean compile");
        for f in &entries {
            let report = validate_with_mode(&arts, &ge, f, Validation::Both);
            assert!(
                report.disagreements.is_empty(),
                "{} ({f}): static/differential disagreement: {:?}",
                path.display(),
                report.disagreements
            );
            assert!(report.ok(), "{} ({f}): rejected", path.display());
        }
    }
}
