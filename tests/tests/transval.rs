//! Integration gates for the symbolic translation validator
//! (`ccc_analysis::transval`).
//!
//! * Zero false rejections: every clean compilation of the persisted
//!   regression corpus and of a proptest-generated program sample
//!   validates statically, with all seven supported mid-end passes
//!   `Validated`.
//! * Zero false acceptances on the seeded mutants: every RTL-family
//!   mutant is rejected *statically* — no instruction is executed —
//!   and the rejection is localized to the mutated pass.
//! * Hints are untrusted: a hand-seeded unsound block matching (one
//!   whose footprint cover would have to be over-wide) is rejected.
//! * `Validation::Both` never disagrees with the differential
//!   co-execution oracle on the corpus.

use ccc_analysis::transval::passes::validate_rtl_matching;
use ccc_analysis::transval::{ObligationKind, Verdict};
use ccc_analysis::{validate_artifacts, validate_with_mode, Validation};
use ccc_compiler::driver::compile_with_artifacts;
use ccc_compiler::rtl::{Function as RtlFn, Instr, RtlModule};
use ccc_compiler::{compile_with_artifacts_mutated, Mutant};
use ccc_fuzz::{gen_program, lower, CorpusEntry};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn corpus_entries() -> Vec<(PathBuf, CorpusEntry)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|d| d.path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p).expect("readable corpus file");
            let entry =
                CorpusEntry::from_text(&text).unwrap_or_else(|e| panic!("{}: {e:?}", p.display()));
            (p, entry)
        })
        .collect()
}

/// The seven passes the symbolic validator covers, with the mutant
/// that corrupts each.
const RTL_FAMILY: [(Mutant, &str); 7] = [
    (Mutant::Tailcall, "Tailcall"),
    (Mutant::Renumber, "Renumber"),
    (Mutant::Constprop, "Constprop"),
    (Mutant::Allocation, "Allocation"),
    (Mutant::Tunneling, "Tunneling"),
    (Mutant::Linearize, "Linearize"),
    (Mutant::CleanupLabels, "CleanupLabels"),
];

#[test]
fn corpus_accepts_statically_with_seven_passes_validated() {
    let entries = corpus_entries();
    assert!(entries.len() >= 13, "corpus incomplete: {}", entries.len());
    for (path, entry) in &entries {
        let (m, _ge, _entries) = lower(&entry.program);
        // The extended pipeline (with the Constprop stage) — the same
        // one the fuzz oracle validates.
        let arts = compile_with_artifacts_mutated(&m, None)
            .unwrap_or_else(|e| panic!("{}: clean compile failed: {e:?}", path.display()));
        let w = validate_artifacts(&arts);
        assert!(w.ok(), "{}: false rejection:\n{w}", path.display());
        let validated = w
            .witnesses
            .iter()
            .filter(|sw| sw.verdict == Verdict::Validated)
            .count();
        assert!(
            validated >= 7,
            "{}: only {validated} passes statically validated:\n{w}",
            path.display()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Zero false rejections over generated programs: any clean
    // compilation's artifacts must discharge all obligations.
    #[test]
    fn generated_programs_accept_statically(seed in 0u64..1_000_000, size in 0u32..8) {
        let p = gen_program(seed, size);
        let (m, _ge, _entries) = lower(&p);
        let arts = compile_with_artifacts_mutated(&m, None).expect("generated programs compile");
        let w = validate_artifacts(&arts);
        prop_assert!(w.ok(), "false rejection on seed {seed}/{size}:\n{w}");
    }
}

#[test]
fn rtl_family_mutants_rejected_statically() {
    for (mutant, pass) in RTL_FAMILY {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("corpus")
            .join(format!("kill_{}.txt", pass.to_lowercase()));
        let text = std::fs::read_to_string(&path).expect("corpus killer exists");
        let entry = CorpusEntry::from_text(&text).expect("parses");
        let (m, _ge, _entries) = lower(&entry.program);
        let arts =
            compile_with_artifacts_mutated(&m, Some(mutant)).expect("mutated pipeline compiles");
        let w = validate_artifacts(&arts);
        let rejected: Vec<_> = w.rejected().collect();
        assert!(
            !rejected.is_empty(),
            "{mutant:?} slipped past the static validator"
        );
        assert_eq!(
            rejected[0].pass, pass,
            "{mutant:?} rejected at the wrong pass:\n{w}"
        );
    }
}

#[test]
fn unsound_matching_with_overwide_footprint_is_rejected() {
    // Source: f() { r1 := 1; return r1 } — no memory effects at all.
    let mut src = RtlModule::default();
    src.funcs.insert(
        "f".into(),
        RtlFn {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (0, Instr::Op(ccc_compiler::ops::Op::Const(1), vec![], 1, 1)),
                (1, Instr::Return(Some(1))),
            ]),
        },
    );
    // Target: f() { r1 := [g+0]; return r1 } — reads a global the
    // source never touches. Any matching claiming this refines the
    // source needs an over-wide footprint cover; the validator must
    // refuse to discharge it.
    let mut tgt = RtlModule::default();
    tgt.funcs.insert(
        "f".into(),
        RtlFn {
            params: vec![],
            stack_slots: 0,
            entry: 0,
            code: BTreeMap::from([
                (
                    0,
                    Instr::Load(ccc_compiler::ops::AddrMode::Global("g".into(), 0), 1, 1),
                ),
                (1, Instr::Return(Some(1))),
            ]),
        },
    );
    let matching = BTreeMap::from([("f".to_string(), BTreeMap::from([(0u32, 0u32), (1, 1)]))]);
    let w = validate_rtl_matching("Renumber", &src, &tgt, &matching);
    assert_eq!(w.verdict, Verdict::Rejected);
    assert!(
        w.obligations
            .iter()
            .any(|o| o.kind == ObligationKind::FootprintCover && !o.discharged),
        "expected an undischarged FootprintCover obligation:\n{w}"
    );
}

#[test]
fn static_board_kills_every_rtl_family_mutant_on_corpus() {
    // The 13-mutant board over the persisted corpus witnesses: every
    // RTL-family mutant must die statically; the front-end/back-end
    // mutants (and the object-level IdTrans) still need the dynamic
    // oracle, and exactly those.
    let witnesses: Vec<_> = Mutant::ALL
        .iter()
        .map(|&m| {
            let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("corpus")
                .join(format!("kill_{m:?}.txt").to_lowercase());
            let text = std::fs::read_to_string(&path).expect("corpus killer exists");
            (m, CorpusEntry::from_text(&text).expect("parses").program)
        })
        .collect();
    let board = ccc_fuzz::transval_corpus_board(&witnesses);
    let statically_killed: Vec<_> = board
        .iter()
        .filter(|k| k.killed())
        .map(|k| k.mutant)
        .collect();
    let rtl_family: Vec<_> = RTL_FAMILY.iter().map(|(m, _)| *m).collect();
    assert_eq!(
        statically_killed,
        rtl_family,
        "static board:\n{}",
        ccc_fuzz::static_board_markdown(&board)
    );
}

#[test]
fn both_mode_never_disagrees_on_corpus() {
    for (path, entry) in corpus_entries() {
        let (m, ge, entries) = lower(&entry.program);
        let arts = compile_with_artifacts(&m).expect("clean compile");
        for f in &entries {
            let report = validate_with_mode(&arts, &ge, f, Validation::Both);
            assert!(
                report.disagreements.is_empty(),
                "{} ({f}): static/differential disagreement: {:?}",
                path.display(),
                report.disagreements
            );
            assert!(report.ok(), "{} ({f}): rejected", path.display());
        }
    }
}
