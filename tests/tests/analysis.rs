//! Cross-validation of the `ccc-analysis` static passes against the
//! instrumented dynamic semantics.
//!
//! * **Footprint soundness**: on every corpus program, the concrete
//!   footprint of the instrumented run is contained in the statically
//!   inferred abstract footprint (`AbsFootprint::covers`), at both the
//!   Clight and RTL levels, sequentially and per thread under the
//!   preemptive exploration.
//! * **Race verdicts**: the lockset analysis and the exhaustive
//!   interleaving exploration agree — locked clients are `StaticDrf`
//!   and explore race-free; racy clients get the same verdict from both
//!   sides, and genuinely racing seeds are flagged.
//! * **Mutation coverage**: seeding one structural breakage into each
//!   of the 12 pipeline stage outputs (plus `Constprop`) makes the
//!   per-pass lint fail with errors attributed to exactly that stage,
//!   while clean artifacts lint clean.

use ccc_analysis::lint::{lint_artifacts, lint_rtl, CONSTPROP_STAGE};
use ccc_analysis::{
    check_static_race, infer_clight, infer_clight_with, infer_lock_model, infer_rtl,
};
use ccc_clight::gen::{gen_concurrent_client, gen_module, GenCfg};
use ccc_clight::ClightLang;
use ccc_compiler::constprop::constprop;
use ccc_compiler::driver::{compile_with_artifacts, CompilationArtifacts};
use ccc_compiler::ops::{AddrMode, Op};
use ccc_compiler::rtl::RtlLang;
use ccc_compiler::{cminorsel, linear, ltl, mach, rtl};
use ccc_core::mem::GlobalEnv;
use ccc_core::race::{check_drf, collect_footprints};
use ccc_core::refine::ExploreCfg;
use ccc_core::world::run_main_traced;
use ccc_fuzz::link::load_client;
use ccc_machine::asm;
use ccc_machine::Reg;
use ccc_sync::lock::lock_spec;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Footprint soundness
// ---------------------------------------------------------------------

#[test]
fn static_footprints_cover_dynamic_sequential() {
    let mut checked = 0;
    for seed in 0..60u64 {
        let (m, ge) = gen_module(seed, &GenCfg::default());
        let arts = compile_with_artifacts(&m).expect("compiles");
        let cs = infer_clight(&m);
        let rs = infer_rtl(&arts.rtl);
        let (_, _, _, cfp) =
            run_main_traced(&ClightLang, &m, &ge, "f", &[], 1_000_000).expect("Clight terminates");
        let (_, _, _, rfp) =
            run_main_traced(&RtlLang, &arts.rtl, &ge, "f", &[], 1_000_000).expect("RTL terminates");
        let c = cs.footprint("f").expect("clight summary");
        let r = rs.footprint("f").expect("rtl summary");
        assert!(
            c.covers(&ge, &cfp),
            "seed {seed}: Clight {c} misses {cfp:?}"
        );
        assert!(r.covers(&ge, &rfp), "seed {seed}: RTL {r} misses {rfp:?}");
        checked += 1;
    }
    assert!(checked >= 50, "soundness corpus too small");
}

#[test]
fn static_footprints_cover_dynamic_per_thread() {
    let cfg = ExploreCfg::default();
    for seed in 0..6u64 {
        for racy in [false, true] {
            let (client, ge, entries) = gen_concurrent_client(seed, 2, &["s0", "s1"], racy);
            let (lock, lock_ge) = lock_spec("L");
            let linked = GlobalEnv::link([&ge, &lock_ge]).expect("environments link");
            let model = infer_lock_model(&lock);
            let summaries = infer_clight_with(&client, &model.external_footprints());
            let loaded = load_client(client, ge, entries.clone());
            let report = collect_footprints(&loaded, &cfg).expect("source loads");
            assert!(
                !report.truncated,
                "seed {seed} racy={racy}: dynamic exploration truncated at {} states — \
                 coverage against a partial footprint union proves nothing",
                report.states
            );
            for (t, entry) in entries.iter().enumerate() {
                let stat = summaries.footprint(entry).expect("entry summarized");
                assert!(
                    stat.covers(&linked, &report.fps[t]),
                    "seed {seed} racy={racy} thread {t}: {stat} misses {:?}",
                    report.fps[t]
                );
            }
        }
    }
}

proptest! {
    /// Randomized generator configurations: the soundness contract holds
    /// on arbitrary corpus shapes, and every clean pipeline lints clean.
    #[test]
    fn random_programs_have_sound_footprints(
        seed in 0u64..1_000_000,
        block_len in 1usize..8,
        depth in 0usize..3,
        num_temps in 1usize..6,
        num_vars in 0usize..4,
    ) {
        let cfg = GenCfg {
            block_len,
            depth,
            num_temps,
            num_vars,
            prints: seed % 2 == 0,
            ..GenCfg::default()
        };
        let (m, ge) = gen_module(seed, &cfg);
        let arts = compile_with_artifacts(&m).expect("compiles");
        prop_assert!(lint_artifacts(&arts).is_empty(), "clean pipeline flagged");
        let cs = infer_clight(&m);
        let rs = infer_rtl(&arts.rtl);
        let (_, _, _, cfp) =
            run_main_traced(&ClightLang, &m, &ge, "f", &[], 1_000_000).expect("terminates");
        let (_, _, _, rfp) =
            run_main_traced(&RtlLang, &arts.rtl, &ge, "f", &[], 1_000_000).expect("terminates");
        prop_assert!(cs.footprint("f").expect("summary").covers(&ge, &cfp));
        prop_assert!(rs.footprint("f").expect("summary").covers(&ge, &rfp));
    }
}

// ---------------------------------------------------------------------
// Race verdicts
// ---------------------------------------------------------------------

#[test]
fn static_race_verdicts_match_exploration() {
    let cfg = ExploreCfg::default();
    let mut racy_flagged = 0;
    for seed in 0..10u64 {
        for racy in [false, true] {
            let (client, ge, entries) = gen_concurrent_client(seed, 2, &["s0", "s1"], racy);
            let (lock, _) = lock_spec("L");
            let model = infer_lock_model(&lock);
            let report = check_static_race(&client, &entries, &model);
            let loaded = load_client(client, ge, entries);
            let drf = check_drf(&loaded, &cfg).expect("source loads");
            assert!(!drf.truncated, "seed {seed}: exploration truncated");
            if !racy {
                // Locked clients must be *statically* DRF — the analysis
                // is precise enough for the lock discipline, not merely
                // sound.
                assert!(report.is_drf(), "seed {seed}: locked client flagged");
            }
            assert_eq!(
                report.is_drf(),
                drf.is_drf(),
                "seed {seed} racy={racy}: static and dynamic verdicts disagree"
            );
            if racy && !report.is_drf() {
                racy_flagged += 1;
            }
        }
    }
    // Most racy seeds really do race (some generate threads that touch
    // disjoint globals — both sides must call those DRF, asserted above).
    assert!(racy_flagged >= 4, "only {racy_flagged} racy seeds flagged");
}

// ---------------------------------------------------------------------
// Per-pass lint: clean pipelines pass, every seeded breakage is caught
// ---------------------------------------------------------------------

#[test]
fn clean_corpus_lints_clean() {
    for seed in 0..20u64 {
        let (m, _) = gen_module(seed, &GenCfg::default());
        let arts = compile_with_artifacts(&m).expect("compiles");
        assert!(lint_artifacts(&arts).is_empty(), "seed {seed} flagged");
    }
    for seed in 0..5u64 {
        for racy in [false, true] {
            let (client, _, _) = gen_concurrent_client(seed, 2, &["s0", "s1"], racy);
            let arts = compile_with_artifacts(&client).expect("compiles");
            assert!(
                lint_artifacts(&arts).is_empty(),
                "client seed {seed} flagged"
            );
        }
    }
}

/// One deliberate breakage per pipeline stage; the lint must reject the
/// artifacts with every error attributed to exactly the seeded stage.
#[test]
fn each_stage_mutation_is_caught_and_attributed() {
    let (m, _) = gen_module(7, &GenCfg::default());
    let clean = compile_with_artifacts(&m).expect("compiles");
    assert!(lint_artifacts(&clean).is_empty(), "baseline not clean");

    type Mutation = (&'static str, Box<dyn Fn(&mut CompilationArtifacts)>);
    let names = CompilationArtifacts::STAGE_NAMES;
    let mutations: Vec<Mutation> = vec![
        (
            // Clight: duplicate addressable local.
            names[0],
            Box::new(|a| a.clight.funcs.get_mut("f").unwrap().vars.push("v0".into())),
        ),
        (
            // Cminor: shrink the frame under its AddrStack references.
            names[1],
            Box::new(|a| a.cminor.funcs.get_mut("f").unwrap().stack_slots = 0),
        ),
        (
            // CminorSel: operator applied below its arity.
            names[2],
            Box::new(|a| {
                let f = a.cminorsel.funcs.get_mut("f").unwrap();
                let body = std::mem::replace(&mut f.body, cminorsel::Stmt::Skip);
                f.body = cminorsel::Stmt::Seq(vec![
                    cminorsel::Stmt::Set("tbad".into(), cminorsel::Expr::Op(Op::Add, vec![])),
                    body,
                ]);
            }),
        ),
        (
            // RTL: entry points outside the graph.
            names[3],
            Box::new(|a| a.rtl.funcs.get_mut("f").unwrap().entry = 999_999),
        ),
        (
            // RTL/tailcall: dangling successor.
            names[4],
            Box::new(|a| {
                let f = a.rtl_tailcall.funcs.get_mut("f").unwrap();
                let n = *f.code.keys().next().unwrap();
                f.code.insert(n, rtl::Instr::Nop(999_999));
            }),
        ),
        (
            // RTL/renumber: use of a never-defined register.
            names[5],
            Box::new(|a| {
                let f = a.rtl_renumber.funcs.get_mut("f").unwrap();
                for i in f.code.values_mut() {
                    if let rtl::Instr::Op(_, args, ..) = i {
                        if !args.is_empty() {
                            args[0] = 4242;
                            return;
                        }
                    }
                }
                panic!("no Op with arguments to mutate");
            }),
        ),
        (
            // LTL: out-of-bounds spill slot.
            names[6],
            Box::new(|a| {
                let f = a.ltl.funcs.get_mut("f").unwrap();
                let bad = ltl::Loc::Spill(f.spill_slots + 7);
                for i in f.code.values_mut() {
                    if let ltl::Instr::Op(_, args, ..) = i {
                        if !args.is_empty() {
                            args[0] = bad;
                            return;
                        }
                    }
                }
                panic!("no Op with arguments to mutate");
            }),
        ),
        (
            // LTL/tunneled: dangling successor.
            names[7],
            Box::new(|a| {
                let f = a.ltl_tunneled.funcs.get_mut("f").unwrap();
                let entry = f.entry;
                f.code.insert(entry, ltl::Instr::Nop(999_999));
            }),
        ),
        (
            // Linear: jump to a label that does not exist.
            names[8],
            Box::new(|a| {
                a.linear
                    .funcs
                    .get_mut("f")
                    .unwrap()
                    .code
                    .push(linear::Instr::Goto(31_337));
            }),
        ),
        (
            // Linear/clean: duplicate label (and a fall-through end).
            names[9],
            Box::new(|a| {
                let f = a.linear_clean.funcs.get_mut("f").unwrap();
                f.code.push(linear::Instr::Label(77_777));
                f.code.push(linear::Instr::Label(77_777));
            }),
        ),
        (
            // Mach: frame access beyond the allocated frame.
            names[10],
            Box::new(|a| {
                let f = a.mach.funcs.get_mut("f").unwrap();
                let slots = f.frame_slots;
                f.code
                    .insert(0, mach::Instr::Store(AddrMode::Stack(slots + 3), Reg::Eax));
            }),
        ),
        (
            // Asm: jump to a label that does not exist.
            names[11],
            Box::new(|a| {
                a.asm
                    .funcs
                    .get_mut("f")
                    .unwrap()
                    .code
                    .insert(0, asm::Instr::Jmp("nowhere".into()));
            }),
        ),
    ];

    for (stage, mutate) in &mutations {
        let mut arts = clean.clone();
        mutate(&mut arts);
        let errs = lint_artifacts(&arts);
        assert!(!errs.is_empty(), "mutation in `{stage}` not caught");
        assert!(
            errs.iter().any(|e| e.pass == *stage),
            "mutation in `{stage}` attributed elsewhere: {errs:?}"
        );
        for e in &errs {
            // Constprop is recomputed from RTL/renumber inside the lint,
            // so a breakage there legitimately shows up at both stages.
            let also_constprop = *stage == "RTL/renumber" && e.pass == CONSTPROP_STAGE;
            assert!(
                e.pass == *stage || also_constprop,
                "mutation in `{stage}` misattributed: {e}"
            );
        }
    }
}

#[test]
fn constprop_mutation_is_attributed_to_constprop() {
    let (m, _) = gen_module(7, &GenCfg::default());
    let arts = compile_with_artifacts(&m).expect("compiles");
    let mut cp = constprop(&arts.rtl_renumber);
    assert!(
        lint_rtl(&cp, CONSTPROP_STAGE).is_empty(),
        "baseline not clean"
    );
    let f = cp.funcs.get_mut("f").unwrap();
    let n = *f.code.keys().next().unwrap();
    f.code.insert(n, rtl::Instr::Nop(999_999));
    let errs = lint_rtl(&cp, CONSTPROP_STAGE);
    assert!(!errs.is_empty(), "Constprop mutation not caught");
    assert!(errs.iter().all(|e| e.pass == CONSTPROP_STAGE));
}
