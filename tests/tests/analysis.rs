//! Cross-validation of the `ccc-analysis` static passes against the
//! instrumented dynamic semantics.
//!
//! * **Footprint soundness**: on every corpus program, the concrete
//!   footprint of the instrumented run is contained in the statically
//!   inferred abstract footprint (`AbsFootprint::covers`), at both the
//!   Clight and RTL levels, sequentially and per thread under the
//!   preemptive exploration.
//! * **Race verdicts**: the lockset analysis and the exhaustive
//!   interleaving exploration agree — locked clients are `StaticDrf`
//!   and explore race-free; racy clients get the same verdict from both
//!   sides, and genuinely racing seeds are flagged.
//! * **Mutation coverage**: seeding one structural breakage into each
//!   of the 12 pipeline stage outputs (plus `Constprop`) makes the
//!   per-pass lint fail with errors attributed to exactly that stage,
//!   while clean artifacts lint clean.

use ccc_analysis::lint::{lint_artifacts, lint_rtl, CONSTPROP_STAGE};
use ccc_analysis::{
    check_static_race, check_static_race_sharp, infer_clight, infer_clight_with, infer_lock_model,
    infer_rtl, LockModel, Sharing,
};
use ccc_clight::gen::{gen_concurrent_client, gen_module, GenCfg};
use ccc_clight::ClightLang;
use ccc_compiler::constprop::constprop;
use ccc_compiler::driver::{compile_with_artifacts, CompilationArtifacts};
use ccc_compiler::ops::{AddrMode, Op};
use ccc_compiler::rtl::RtlLang;
use ccc_compiler::{cminorsel, linear, ltl, mach, rtl};
use ccc_core::mem::GlobalEnv;
use ccc_core::race::{check_drf, collect_footprints};
use ccc_core::refine::ExploreCfg;
use ccc_core::world::run_main_traced;
use ccc_fuzz::link::load_client;
use ccc_machine::asm;
use ccc_machine::Reg;
use ccc_sync::lock::lock_spec;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Footprint soundness
// ---------------------------------------------------------------------

#[test]
fn static_footprints_cover_dynamic_sequential() {
    let mut checked = 0;
    for seed in 0..60u64 {
        let (m, ge) = gen_module(seed, &GenCfg::default());
        let arts = compile_with_artifacts(&m).expect("compiles");
        let cs = infer_clight(&m);
        let rs = infer_rtl(&arts.rtl);
        let (_, _, _, cfp) =
            run_main_traced(&ClightLang, &m, &ge, "f", &[], 1_000_000).expect("Clight terminates");
        let (_, _, _, rfp) =
            run_main_traced(&RtlLang, &arts.rtl, &ge, "f", &[], 1_000_000).expect("RTL terminates");
        let c = cs.footprint("f").expect("clight summary");
        let r = rs.footprint("f").expect("rtl summary");
        assert!(
            c.covers(&ge, &cfp),
            "seed {seed}: Clight {c} misses {cfp:?}"
        );
        assert!(r.covers(&ge, &rfp), "seed {seed}: RTL {r} misses {rfp:?}");
        checked += 1;
    }
    assert!(checked >= 50, "soundness corpus too small");
}

#[test]
fn static_footprints_cover_dynamic_per_thread() {
    let cfg = ExploreCfg::default();
    for seed in 0..6u64 {
        for racy in [false, true] {
            let (client, ge, entries) = gen_concurrent_client(seed, 2, &["s0", "s1"], racy);
            let (lock, lock_ge) = lock_spec("L");
            let linked = GlobalEnv::link([&ge, &lock_ge]).expect("environments link");
            let model = infer_lock_model(&lock);
            let summaries = infer_clight_with(&client, &model.external_footprints());
            let loaded = load_client(client, ge, entries.clone());
            let report = collect_footprints(&loaded, &cfg).expect("source loads");
            assert!(
                !report.truncated,
                "seed {seed} racy={racy}: dynamic exploration truncated at {} states — \
                 coverage against a partial footprint union proves nothing",
                report.states
            );
            for (t, entry) in entries.iter().enumerate() {
                let stat = summaries.footprint(entry).expect("entry summarized");
                assert!(
                    stat.covers(&linked, &report.fps[t]),
                    "seed {seed} racy={racy} thread {t}: {stat} misses {:?}",
                    report.fps[t]
                );
            }
        }
    }
}

proptest! {
    /// Randomized generator configurations: the soundness contract holds
    /// on arbitrary corpus shapes, and every clean pipeline lints clean.
    #[test]
    fn random_programs_have_sound_footprints(
        seed in 0u64..1_000_000,
        block_len in 1usize..8,
        depth in 0usize..3,
        num_temps in 1usize..6,
        num_vars in 0usize..4,
    ) {
        let cfg = GenCfg {
            block_len,
            depth,
            num_temps,
            num_vars,
            prints: seed % 2 == 0,
            ..GenCfg::default()
        };
        let (m, ge) = gen_module(seed, &cfg);
        let arts = compile_with_artifacts(&m).expect("compiles");
        prop_assert!(lint_artifacts(&arts).is_empty(), "clean pipeline flagged");
        let cs = infer_clight(&m);
        let rs = infer_rtl(&arts.rtl);
        let (_, _, _, cfp) =
            run_main_traced(&ClightLang, &m, &ge, "f", &[], 1_000_000).expect("terminates");
        let (_, _, _, rfp) =
            run_main_traced(&RtlLang, &arts.rtl, &ge, "f", &[], 1_000_000).expect("terminates");
        prop_assert!(cs.footprint("f").expect("summary").covers(&ge, &cfp));
        prop_assert!(rs.footprint("f").expect("summary").covers(&ge, &rfp));
    }
}

// ---------------------------------------------------------------------
// Race verdicts
// ---------------------------------------------------------------------

#[test]
fn static_race_verdicts_match_exploration() {
    let cfg = ExploreCfg::default();
    let mut racy_flagged = 0;
    for seed in 0..10u64 {
        for racy in [false, true] {
            let (client, ge, entries) = gen_concurrent_client(seed, 2, &["s0", "s1"], racy);
            let (lock, _) = lock_spec("L");
            let model = infer_lock_model(&lock);
            let report = check_static_race(&client, &entries, &model);
            let sharp = check_static_race_sharp(&client, &entries, &model);
            let loaded = load_client(client, ge, entries);
            let drf = check_drf(&loaded, &cfg).expect("source loads");
            assert!(!drf.truncated, "seed {seed}: exploration truncated");
            if !racy {
                // Locked clients must be *statically* DRF — the analysis
                // is precise enough for the lock discipline, not merely
                // sound.
                assert!(report.is_drf(), "seed {seed}: locked client flagged");
            }
            assert_eq!(
                report.is_drf(),
                drf.is_drf(),
                "seed {seed} racy={racy}: static and dynamic verdicts disagree"
            );
            // The interval-sharpened variant must stay sound (never DRF
            // on a dynamically racing program) while being at least as
            // precise as the baseline here.
            assert_eq!(
                sharp.is_drf(),
                drf.is_drf(),
                "seed {seed} racy={racy}: sharp and dynamic verdicts disagree"
            );
            if racy && !report.is_drf() {
                racy_flagged += 1;
            }
        }
    }
    // Most racy seeds really do race (some generate threads that touch
    // disjoint globals — both sides must call those DRF, asserted above).
    assert!(racy_flagged >= 4, "only {racy_flagged} racy seeds flagged");
}

/// The sharpened lockset analysis drops a false positive the baseline
/// flags — a write hidden in an interval-dead branch — and the dynamic
/// exploration confirms the sharp verdict is the truth.
#[test]
fn sharp_lockset_false_positive_drop_is_confirmed_by_exploration() {
    use ccc_clight::ast::{Binop, Expr, Function, Stmt};
    use ccc_clight::ClightModule;
    use ccc_core::lang::Prog;
    use ccc_core::world::Loaded;

    let mut ge = GlobalEnv::new();
    ge.define("s", ccc_core::mem::Val::Int(0));
    let t0 = Function::simple(Stmt::Assign(Expr::var("s"), Expr::Const(1)));
    let t1 = Function::simple(Stmt::seq([
        Stmt::Set("t".into(), Expr::Const(3)),
        Stmt::If(
            Expr::bin(Binop::Lt, Expr::temp("t"), Expr::Const(2)),
            Box::new(Stmt::Assign(Expr::var("s"), Expr::Const(2))),
            Box::new(Stmt::Skip),
        ),
    ]));
    let client = ClightModule::new([("t0", t0), ("t1", t1)]);
    let entries = ["t0".to_string(), "t1".to_string()];
    let model = LockModel::default();

    let base = check_static_race(&client, &entries, &model);
    assert!(!base.is_drf(), "baseline must flag the dead-branch write");
    let sharp = check_static_race_sharp(&client, &entries, &model);
    assert!(sharp.is_drf(), "sharp verdict: {:?}", sharp.report.verdict);
    assert!(!sharp.pruned.is_empty());
    assert_eq!(
        sharp.escape.globals.get("s"),
        Some(&Sharing::ThreadLocal(0)),
        "`s` must be certified non-escaping once the dead access is gone"
    );

    // Ground truth: the exhaustive exploration agrees with the sharp
    // verdict, so the dropped pair really was a false positive.
    let loaded = Loaded::new(Prog::new(
        ccc_clight::ClightLang,
        vec![(client, ge)],
        entries,
    ))
    .expect("client links");
    let drf = check_drf(&loaded, &ExploreCfg::default()).expect("loads");
    assert!(!drf.truncated);
    assert!(drf.is_drf(), "the program is genuinely race-free");
}

// ---------------------------------------------------------------------
// Per-pass lint: clean pipelines pass, every seeded breakage is caught
// ---------------------------------------------------------------------

#[test]
fn clean_corpus_lints_clean() {
    for seed in 0..20u64 {
        let (m, _) = gen_module(seed, &GenCfg::default());
        let arts = compile_with_artifacts(&m).expect("compiles");
        assert!(lint_artifacts(&arts).is_empty(), "seed {seed} flagged");
    }
    for seed in 0..5u64 {
        for racy in [false, true] {
            let (client, _, _) = gen_concurrent_client(seed, 2, &["s0", "s1"], racy);
            let arts = compile_with_artifacts(&client).expect("compiles");
            assert!(
                lint_artifacts(&arts).is_empty(),
                "client seed {seed} flagged"
            );
        }
    }
}

/// One deliberate breakage per pipeline stage; the lint must reject the
/// artifacts with every error attributed to exactly the seeded stage.
#[test]
fn each_stage_mutation_is_caught_and_attributed() {
    let (m, _) = gen_module(7, &GenCfg::default());
    let clean = compile_with_artifacts(&m).expect("compiles");
    assert!(lint_artifacts(&clean).is_empty(), "baseline not clean");

    type Mutation = (&'static str, Box<dyn Fn(&mut CompilationArtifacts)>);
    let names = CompilationArtifacts::STAGE_NAMES;
    let mutations: Vec<Mutation> = vec![
        (
            // Clight: duplicate addressable local.
            names[0],
            Box::new(|a| a.clight.funcs.get_mut("f").unwrap().vars.push("v0".into())),
        ),
        (
            // Cminor: shrink the frame under its AddrStack references.
            names[1],
            Box::new(|a| a.cminor.funcs.get_mut("f").unwrap().stack_slots = 0),
        ),
        (
            // CminorSel: operator applied below its arity.
            names[2],
            Box::new(|a| {
                let f = a.cminorsel.funcs.get_mut("f").unwrap();
                let body = std::mem::replace(&mut f.body, cminorsel::Stmt::Skip);
                f.body = cminorsel::Stmt::Seq(vec![
                    cminorsel::Stmt::Set("tbad".into(), cminorsel::Expr::Op(Op::Add, vec![])),
                    body,
                ]);
            }),
        ),
        (
            // RTL: entry points outside the graph.
            names[3],
            Box::new(|a| a.rtl.funcs.get_mut("f").unwrap().entry = 999_999),
        ),
        (
            // RTL/tailcall: dangling successor.
            names[4],
            Box::new(|a| {
                let f = a.rtl_tailcall.funcs.get_mut("f").unwrap();
                let n = *f.code.keys().next().unwrap();
                f.code.insert(n, rtl::Instr::Nop(999_999));
            }),
        ),
        (
            // RTL/renumber: use of a never-defined register.
            names[5],
            Box::new(|a| {
                let f = a.rtl_renumber.funcs.get_mut("f").unwrap();
                for i in f.code.values_mut() {
                    if let rtl::Instr::Op(_, args, ..) = i {
                        if !args.is_empty() {
                            args[0] = 4242;
                            return;
                        }
                    }
                }
                panic!("no Op with arguments to mutate");
            }),
        ),
        (
            // LTL: out-of-bounds spill slot.
            names[6],
            Box::new(|a| {
                let f = a.ltl.funcs.get_mut("f").unwrap();
                let bad = ltl::Loc::Spill(f.spill_slots + 7);
                for i in f.code.values_mut() {
                    if let ltl::Instr::Op(_, args, ..) = i {
                        if !args.is_empty() {
                            args[0] = bad;
                            return;
                        }
                    }
                }
                panic!("no Op with arguments to mutate");
            }),
        ),
        (
            // LTL/tunneled: dangling successor.
            names[7],
            Box::new(|a| {
                let f = a.ltl_tunneled.funcs.get_mut("f").unwrap();
                let entry = f.entry;
                f.code.insert(entry, ltl::Instr::Nop(999_999));
            }),
        ),
        (
            // Linear: jump to a label that does not exist.
            names[8],
            Box::new(|a| {
                a.linear
                    .funcs
                    .get_mut("f")
                    .unwrap()
                    .code
                    .push(linear::Instr::Goto(31_337));
            }),
        ),
        (
            // Linear/clean: duplicate label (and a fall-through end).
            names[9],
            Box::new(|a| {
                let f = a.linear_clean.funcs.get_mut("f").unwrap();
                f.code.push(linear::Instr::Label(77_777));
                f.code.push(linear::Instr::Label(77_777));
            }),
        ),
        (
            // Mach: frame access beyond the allocated frame.
            names[10],
            Box::new(|a| {
                let f = a.mach.funcs.get_mut("f").unwrap();
                let slots = f.frame_slots;
                f.code
                    .insert(0, mach::Instr::Store(AddrMode::Stack(slots + 3), Reg::Eax));
            }),
        ),
        (
            // Asm: jump to a label that does not exist.
            names[11],
            Box::new(|a| {
                a.asm
                    .funcs
                    .get_mut("f")
                    .unwrap()
                    .code
                    .insert(0, asm::Instr::Jmp("nowhere".into()));
            }),
        ),
    ];

    for (stage, mutate) in &mutations {
        let mut arts = clean.clone();
        mutate(&mut arts);
        let errs = lint_artifacts(&arts);
        assert!(!errs.is_empty(), "mutation in `{stage}` not caught");
        assert!(
            errs.iter().any(|e| e.pass == *stage),
            "mutation in `{stage}` attributed elsewhere: {errs:?}"
        );
        for e in &errs {
            // Constprop is recomputed from RTL/renumber inside the lint,
            // so a breakage there legitimately shows up at both stages.
            let also_constprop = *stage == "RTL/renumber" && e.pass == CONSTPROP_STAGE;
            assert!(
                e.pass == *stage || also_constprop,
                "mutation in `{stage}` misattributed: {e}"
            );
        }
    }
}

#[test]
fn constprop_mutation_is_attributed_to_constprop() {
    let (m, _) = gen_module(7, &GenCfg::default());
    let arts = compile_with_artifacts(&m).expect("compiles");
    let mut cp = constprop(&arts.rtl_renumber);
    assert!(
        lint_rtl(&cp, CONSTPROP_STAGE).is_empty(),
        "baseline not clean"
    );
    let f = cp.funcs.get_mut("f").unwrap();
    let n = *f.code.keys().next().unwrap();
    f.code.insert(n, rtl::Instr::Nop(999_999));
    let errs = lint_rtl(&cp, CONSTPROP_STAGE);
    assert!(!errs.is_empty(), "Constprop mutation not caught");
    assert!(errs.iter().all(|e| e.pass == CONSTPROP_STAGE));
}

// ---------------------------------------------------------------------
// Absint soundness
// ---------------------------------------------------------------------

/// Concretely interprets one RTL function against its claimed interval
/// facts and returns the number of (node, register) claims checked.
///
/// The interpreter implements the *havoc* semantics the analysis is
/// sound for: loads, call returns and parameters take arbitrary
/// oracle-supplied integers (the analysis binds none of them), address
/// operators produce synthetic pointers, and any step the concrete
/// semantics gets stuck on (division by zero, an undefined comparison)
/// halts the run — a claim only speaks about nodes actually reached.
fn interpret_against_facts(
    f: &rtl::Function,
    facts: &ccc_analysis::IntervalFacts,
    oracle: &[i64],
) -> Result<usize, String> {
    use ccc_core::mem::{Addr, Val};
    let mut regs: std::collections::BTreeMap<rtl::PReg, Val> = std::collections::BTreeMap::new();
    let mut next_oracle = 0usize;
    let mut havoc = || {
        let v = oracle.get(next_oracle).copied().unwrap_or(1);
        next_oracle += 1;
        Val::Int(v)
    };
    for (i, &p) in f.params.iter().enumerate() {
        regs.insert(p, Val::Int(oracle.get(i).copied().unwrap_or(0)));
    }
    let mut checked = 0usize;
    let mut synth = 0u64;
    let mut node = f.entry;
    for _ in 0..4_000 {
        if let Some(env) = facts.get(&node) {
            for (r, iv) in env {
                match regs.get(r) {
                    Some(Val::Int(v)) if iv.contains(*v) => checked += 1,
                    got => {
                        return Err(format!(
                            "node {node}: claim r{r} in {iv:?} but concrete value is {got:?}"
                        ))
                    }
                }
            }
        }
        let Some(instr) = f.code.get(&node) else {
            return Err(format!("fell off the graph at node {node}"));
        };
        node = match instr {
            rtl::Instr::Nop(n) | rtl::Instr::Print(_, n) | rtl::Instr::Store(.., n) => *n,
            rtl::Instr::Op(op, args, dst, n) => {
                let v = match op {
                    Op::AddrGlobal(..) | Op::AddrStack(_) => {
                        synth += 1;
                        Some(Val::Ptr(Addr(0xABC0_0000 + synth)))
                    }
                    _ => {
                        let vals: Vec<Val> = args
                            .iter()
                            .map(|r| regs.get(r).copied().unwrap_or(Val::Undef))
                            .collect();
                        op.eval(&vals)
                    }
                };
                // `None` is a stuck/aborting concrete step (e.g. division
                // by zero): no further node is reached, nothing to check.
                match v {
                    Some(v) => regs.insert(*dst, v),
                    None => return Ok(checked),
                };
                *n
            }
            rtl::Instr::Load(_, dst, n) => {
                regs.insert(*dst, havoc());
                *n
            }
            rtl::Instr::Call(dst, _, _, n) => {
                if let Some(d) = dst {
                    regs.insert(*d, havoc());
                }
                *n
            }
            rtl::Instr::Cond(c, r1, r2, t, e) => {
                let (a, b) = (
                    regs.get(r1).copied().unwrap_or(Val::Undef),
                    regs.get(r2).copied().unwrap_or(Val::Undef),
                );
                match c.eval(a, b) {
                    Some(true) => *t,
                    Some(false) => *e,
                    None => return Ok(checked),
                }
            }
            rtl::Instr::CondImm(c, r, imm, t, e) => {
                let a = regs.get(r).copied().unwrap_or(Val::Undef);
                match c.eval(a, ccc_core::mem::Val::Int(*imm)) {
                    Some(true) => *t,
                    Some(false) => *e,
                    None => return Ok(checked),
                }
            }
            rtl::Instr::Tailcall(..) | rtl::Instr::Return(_) => return Ok(checked),
        };
    }
    Ok(checked)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interval soundness, dynamically: on every node a concrete havoc
    /// interpretation of the compiled RTL reaches, every claimed
    /// register really holds an integer inside the claimed interval.
    #[test]
    fn interval_facts_bound_concrete_register_values(
        seed in 0u64..1_000_000,
        block_len in 1usize..8,
        depth in 0usize..3,
        oracle in proptest::collection::vec(
            prop_oneof![-8i64..9, any::<i64>()], 0..48),
    ) {
        let cfg = GenCfg { block_len, depth, ..GenCfg::default() };
        let (m, _) = gen_module(seed, &cfg);
        let arts = compile_with_artifacts(&m).expect("compiles");
        let mut checked = 0usize;
        for (name, f) in &arts.rtl_renumber.funcs {
            let facts = ccc_analysis::analyze_rtl_intervals(f);
            prop_assert_eq!(
                ccc_analysis::interval_facts_violation(f, &facts), None,
                "seed {} fn {}: facts not edge-closed", seed, name
            );
            match interpret_against_facts(f, &facts, &oracle) {
                Ok(n) => checked += n,
                Err(e) => prop_assert!(false, "seed {} fn {}: {}", seed, name, e),
            }
        }
        prop_assert!(checked > 0, "seed {seed}: no claim was ever exercised");
    }

    /// Escape soundness, dynamically: a global the escape analysis
    /// proves `ThreadLocal(t)` is never touched by any other thread in
    /// the exhaustive preemptive exploration.
    #[test]
    fn thread_local_globals_are_never_touched_by_other_threads(
        seed in 0u64..5_000,
        threads in 2usize..4,
        racy in any::<bool>(),
    ) {
        let (client, ge, entries) = gen_concurrent_client(seed, threads, &["s0", "s1"], racy);
        let (lock, _) = lock_spec("L");
        let model = infer_lock_model(&lock);
        let escape = ccc_analysis::escape_analysis(&client, &entries, &model);
        let loaded = load_client(client, ge.clone(), entries.clone());
        let cfg = ExploreCfg { max_states: 500_000, ..ExploreCfg::default() };
        let report = collect_footprints(&loaded, &cfg).expect("client loads");
        // A truncated union covers only a prefix — nothing to refute.
        if report.truncated {
            continue;
        }
        for (g, class) in &escape.globals {
            let ccc_analysis::Sharing::ThreadLocal(owner) = class else { continue };
            let Some(addr) = ge.lookup(g) else { continue };
            for (t, fp) in report.fps.iter().enumerate() {
                prop_assert!(
                    t == *owner || (!fp.rs.contains(&addr) && !fp.ws.contains(&addr)),
                    "seed {} racy={}: `{}` claimed thread-local to {} but thread {} touched it",
                    seed, racy, g, owner, t
                );
            }
        }
    }
}
