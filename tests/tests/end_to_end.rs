//! End-to-end validation of the final theorem (Thm. 12/14 of the
//! paper): correct sequential compilers, composed over concurrent DRF
//! Clight programs linked with a CImp synchronization object, preserve
//! whole-program semantics — and the framework detects it when any
//! premise breaks.

use ccc_cimp::CImpLang;
use ccc_clight::gen::gen_concurrent_client;
use ccc_clight::ClightLang;
use ccc_compiler::driver::compile;
use ccc_core::framework::{validate_fig2, validate_refinement};
use ccc_core::lang::{ModuleDecl, Prog, Sum, SumLang};
use ccc_core::race::check_drf;
use ccc_core::refine::{check_safe, ExploreCfg, Preemptive};
use ccc_core::world::Loaded;
use ccc_machine::X86Sc;
use ccc_sync::lock::lock_spec;

type SrcLang = SumLang<ClightLang, CImpLang>;
type TgtLang = SumLang<X86Sc, CImpLang>;

fn source_program(
    client: &ccc_clight::ClightModule,
    client_ge: &ccc_core::mem::GlobalEnv,
    entries: &[String],
) -> Loaded<SrcLang> {
    let (lock, lock_ge) = lock_spec("L");
    Loaded::new(Prog {
        lang: SumLang(ClightLang, CImpLang),
        modules: vec![
            ModuleDecl {
                code: Sum::L(client.clone()),
                ge: client_ge.clone(),
            },
            ModuleDecl {
                code: Sum::R(lock),
                ge: lock_ge,
            },
        ],
        entries: entries.to_vec(),
    })
    .expect("source links")
}

fn target_program(
    client_asm: &ccc_machine::AsmModule,
    client_ge: &ccc_core::mem::GlobalEnv,
    entries: &[String],
) -> Loaded<TgtLang> {
    let (lock, lock_ge) = lock_spec("L");
    Loaded::new(Prog {
        lang: SumLang(X86Sc, CImpLang),
        modules: vec![
            ModuleDecl {
                code: Sum::L(client_asm.clone()),
                ge: client_ge.clone(),
            },
            ModuleDecl {
                code: Sum::R(lock),
                ge: lock_ge,
            },
        ],
        entries: entries.to_vec(),
    })
    .expect("target links")
}

#[test]
fn gcorrect_on_generated_drf_clients() {
    // Thm. 14 on a corpus of generated lock-synchronized clients: the
    // premises (Safe, DRF) hold and the compiled program validates the
    // whole Fig. 2 framework.
    let cfg = ExploreCfg {
        fuel: 300,
        ..Default::default()
    };
    for seed in 0..6 {
        let (client, ge, entries) = gen_concurrent_client(seed, 2, &["s0", "s1"], false);
        let src = source_program(&client, &ge, &entries);

        let safety = check_safe(&Preemptive(&src), &cfg).expect("explore");
        assert!(safety.safe, "seed {seed}: source unsafe");
        let drf = check_drf(&src, &cfg).expect("drf");
        assert!(drf.is_drf(), "seed {seed}: source racy: {:?}", drf.race);

        let asm = compile(&client).expect("compiles");
        let tgt = target_program(&asm, &ge, &entries);
        let report = validate_fig2(&src, &tgt, &cfg).expect("validate");
        assert!(
            report.all_hold(),
            "seed {seed}: failures {:?}",
            report.failures()
        );
    }
}

#[test]
fn racy_clients_are_rejected_by_the_premise() {
    // The same generator without locks: DRF(P) fails, which is exactly
    // the premise Thm. 12 requires (GCorrect says nothing about racy
    // sources).
    let cfg = ExploreCfg::default();
    let mut caught = 0;
    for seed in 0..6 {
        let (client, ge, entries) = gen_concurrent_client(seed, 2, &["s0"], true);
        let src = source_program(&client, &ge, &entries);
        let drf = check_drf(&src, &cfg).expect("drf");
        if !drf.is_drf() {
            caught += 1;
        }
    }
    assert!(caught >= 5, "only {caught}/6 racy programs detected");
}

#[test]
fn refinement_holds_even_without_full_equivalence_check() {
    // The bare conclusion of GCorrect (Def. 11): target ⊑ source.
    let cfg = ExploreCfg {
        fuel: 300,
        ..Default::default()
    };
    for seed in [11u64, 23] {
        let (client, ge, entries) = gen_concurrent_client(seed, 2, &["s0", "s1"], false);
        let src = source_program(&client, &ge, &entries);
        let asm = compile(&client).expect("compiles");
        let tgt = target_program(&asm, &ge, &entries);
        assert!(
            validate_refinement(&src, &tgt, &cfg).expect("refinement"),
            "seed {seed}"
        );
    }
}

#[test]
fn miscompilation_is_detected_by_the_framework() {
    // Mutate the compiled client (swap a printed constant) and check
    // the framework rejects the "compilation".
    let (client, ge, entries) = gen_concurrent_client(3, 2, &["s0"], false);
    let src = source_program(&client, &ge, &entries);
    let mut asm = compile(&client).expect("compiles");
    // Find a Print and corrupt the register it prints from by inserting
    // a constant overwrite just before it.
    let mut mutated = false;
    for f in asm.funcs.values_mut() {
        if let Some(pos) = f
            .code
            .iter()
            .position(|i| matches!(i, ccc_machine::Instr::Print(_)))
        {
            let ccc_machine::Instr::Print(r) = f.code[pos] else {
                unreachable!()
            };
            f.code.insert(
                pos,
                ccc_machine::Instr::Mov(r, ccc_machine::Operand::Imm(4242)),
            );
            mutated = true;
            break;
        }
    }
    assert!(mutated, "no print to corrupt");
    let tgt = target_program(&asm, &ge, &entries);
    let cfg = ExploreCfg {
        fuel: 300,
        ..Default::default()
    };
    let report = validate_fig2(&src, &tgt, &cfg).expect("validate");
    assert!(!report.preemptive_equiv, "mutation must be caught");
}

#[test]
fn tso_end_to_end_holds_on_generated_modules() {
    // The TSO variant of the end-to-end check: the closed compiled
    // program on the x86-TSO machine shows exactly the Clight source
    // behaviours (single-thread store buffers are invisible).
    use ccc_clight::gen::{gen_module, GenCfg};
    use ccc_compiler::driver::compile_with_artifacts;
    use ccc_compiler::verif::verify_end_to_end_tso;

    for seed in 0..10u64 {
        let (m, ge) = gen_module(seed, &GenCfg::default());
        let arts = compile_with_artifacts(&m).expect("compiles");
        verify_end_to_end_tso(&arts, &ge, "f").unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
    // Programs with helper calls exercise the call/return buffer drain.
    for seed in 0..4u64 {
        let cfg = GenCfg {
            helpers: 2,
            ..GenCfg::default()
        };
        let (m, ge) = gen_module(seed, &cfg);
        let arts = compile_with_artifacts(&m).expect("compiles");
        verify_end_to_end_tso(&arts, &ge, "f")
            .unwrap_or_else(|e| panic!("seed {seed} (helpers): {e}"));
    }
}

#[test]
fn tso_end_to_end_rejects_a_miscompiled_backend() {
    // The same checker must have teeth: the Asmgen mutant (Lt -> Le in
    // the final instruction selection) is caught on some seed.
    use ccc_clight::gen::{gen_module, GenCfg};
    use ccc_compiler::verif::verify_end_to_end_tso;
    use ccc_compiler::{compile_with_artifacts_mutated, Mutant};

    let caught = (0..40u64).any(|seed| {
        let (m, ge) = gen_module(seed, &GenCfg::default());
        let arts = compile_with_artifacts_mutated(&m, Some(Mutant::Asmgen)).expect("compiles");
        verify_end_to_end_tso(&arts, &ge, "f").is_err()
    });
    assert!(caught, "Asmgen mutant survived the TSO end-to-end check");
}

#[test]
fn three_thread_client_compiles_and_validates() {
    let cfg = ExploreCfg {
        fuel: 380,
        max_states: 4_000_000,
        ..Default::default()
    };
    let (client, ge, entries) = gen_concurrent_client(1, 3, &["s0"], false);
    let src = source_program(&client, &ge, &entries);
    let asm = compile(&client).expect("compiles");
    let tgt = target_program(&asm, &ge, &entries);
    assert!(validate_refinement(&src, &tgt, &cfg).expect("refinement"));
}
