//! Property-based tests (proptest) over the framework's core data
//! structures and the compiler: footprint algebra, memory-model
//! invariants, `FPmatch` monotonicity, comparison-operator laws, and
//! randomized differential compilation.

use ccc_core::footprint::{fp_match, mem_eq_on, AddrSet, Footprint, Mu};
use ccc_core::mem::{Addr, FreeList, GlobalEnv, Memory, Val};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Addr> {
    (0u64..64).prop_map(|n| Addr(8 + n * 8))
}

fn arb_addr_set() -> impl Strategy<Value = AddrSet> {
    proptest::collection::btree_set(arb_addr(), 0..6)
}

fn arb_fp() -> impl Strategy<Value = Footprint> {
    (arb_addr_set(), arb_addr_set()).prop_map(|(rs, ws)| Footprint { rs, ws })
}

fn arb_val() -> impl Strategy<Value = Val> {
    prop_oneof![
        (-100i64..100).prop_map(Val::Int),
        arb_addr().prop_map(Val::Ptr),
        Just(Val::Undef),
    ]
}

fn arb_mem() -> impl Strategy<Value = Memory> {
    proptest::collection::btree_map(arb_addr(), arb_val(), 0..10)
        .prop_map(|m| m.into_iter().collect())
}

proptest! {
    #[test]
    fn footprint_union_is_commutative_and_idempotent(a in arb_fp(), b in arb_fp()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert!(a.subset(&a.union(&b)));
        prop_assert!(b.subset(&a.union(&b)));
    }

    #[test]
    fn footprint_conflict_is_symmetric(a in arb_fp(), b in arb_fp()) {
        prop_assert_eq!(a.conflicts(&b), b.conflicts(&a));
    }

    #[test]
    fn conflict_is_monotone_in_accumulation(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
        // If a ⌢ b then (a ∪ c) ⌢ b — the property race prediction
        // relies on when it keeps only maximal block accumulations.
        if a.conflicts(&b) {
            prop_assert!(a.union(&c).conflicts(&b));
        }
    }

    #[test]
    fn read_read_never_conflicts(rs1 in arb_addr_set(), rs2 in arb_addr_set()) {
        let f1 = Footprint { rs: rs1, ws: AddrSet::new() };
        let f2 = Footprint { rs: rs2, ws: AddrSet::new() };
        prop_assert!(!f1.conflicts(&f2));
    }

    #[test]
    fn fp_match_is_monotone_in_the_source(src in arb_fp(), extra in arb_fp(), tgt in arb_fp()) {
        // Enlarging the source footprint can only help FPmatch.
        let mu = Mu::identity((0u64..64).map(|n| Addr(8 + n * 8)));
        if fp_match(&mu, &src, &tgt) {
            prop_assert!(fp_match(&mu, &src.union(&extra), &tgt));
        }
    }

    #[test]
    fn fp_match_reflexive_under_identity(fp in arb_fp()) {
        let mu = Mu::identity((0u64..64).map(|n| Addr(8 + n * 8)));
        prop_assert!(fp_match(&mu, &fp, &fp));
    }

    #[test]
    fn fp_match_ignores_local_target_accesses(src in arb_fp()) {
        // Accesses entirely outside µ.S never violate FPmatch.
        let mu = Mu::identity((0u64..8).map(|n| Addr(8 + n * 8)));
        let local = Footprint::writes([FreeList::for_thread(0).addr_at(3)]);
        prop_assert!(fp_match(&mu, &src, &local));
    }

    #[test]
    fn mem_eq_on_is_an_equivalence_on_fixed_sets(m1 in arb_mem(), m2 in arb_mem(), m3 in arb_mem(), s in arb_addr_set()) {
        prop_assert!(mem_eq_on(&m1, &m1, &s));
        if mem_eq_on(&m1, &m2, &s) {
            prop_assert!(mem_eq_on(&m2, &m1, &s));
            if mem_eq_on(&m2, &m3, &s) {
                prop_assert!(mem_eq_on(&m1, &m3, &s));
            }
        }
    }

    #[test]
    fn store_preserves_domain(mut m in arb_mem(), a in arb_addr(), v in arb_val()) {
        let dom_before: Vec<Addr> = m.dom().collect();
        let ok = m.store(a, v);
        let dom_after: Vec<Addr> = m.dom().collect();
        prop_assert_eq!(dom_before.clone(), dom_after);
        prop_assert_eq!(ok, dom_before.contains(&a));
        if ok {
            prop_assert_eq!(m.load(a), Some(v));
        }
    }

    #[test]
    fn freelists_partition_the_address_space(t1 in 0usize..8, t2 in 0usize..8, n in 0u64..1000) {
        let f1 = FreeList::for_thread(t1);
        let f2 = FreeList::for_thread(t2);
        let a = f1.addr_at(n);
        prop_assert!(f1.contains(a));
        prop_assert!(!a.is_global());
        if t1 != t2 {
            prop_assert!(!f2.contains(a));
        }
    }

    #[test]
    fn cmp_negate_and_swap_laws(a in -50i64..50, b in -50i64..50) {
        use ccc_compiler::ops::Cmp;
        for c in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
            let va = Val::Int(a);
            let vb = Val::Int(b);
            let direct = c.eval(va, vb).unwrap();
            prop_assert_eq!(c.negate().eval(va, vb).unwrap(), !direct);
            prop_assert_eq!(c.swap().eval(vb, va).unwrap(), direct);
        }
    }

    #[test]
    fn global_env_link_is_idempotent_and_monotone(names in proptest::collection::btree_set("[a-d]", 1..4)) {
        let mut ge = GlobalEnv::new();
        for n in &names {
            ge.define(n, Val::Int(1));
        }
        let linked = GlobalEnv::link([&ge, &ge]).expect("self-link");
        for n in &names {
            prop_assert_eq!(linked.lookup(n), ge.lookup(n));
        }
    }
}

// Differential compilation under proptest: arbitrary seeds into the
// structured Clight generator, full pipeline, compare with the source.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compiled_code_agrees_with_source(seed in any::<u64>()) {
        use ccc_clight::gen::{gen_module, GenCfg};
        use ccc_clight::ClightLang;
        use ccc_core::world::run_main;
        use ccc_machine::X86Sc;

        let (m, ge) = gen_module(seed, &GenCfg::default());
        let asm = ccc_compiler::compile(&m).expect("compiles");
        let s = run_main(&ClightLang, &m, &ge, "f", &[], 1_000_000).expect("source runs");
        let t = run_main(&X86Sc, &asm, &ge, "f", &[], 1_000_000).expect("target runs");
        prop_assert_eq!(s.0, t.0, "return values");
        prop_assert_eq!(s.2, t.2, "events");
        for (a, _) in ge.initial_memory().iter() {
            prop_assert_eq!(s.1.load(a), t.1.load(a), "global {}", a);
        }
    }

    #[test]
    fn selection_shrinks_footprints(seed in any::<u64>()) {
        // The Fig. 12 obligation as a property: on every generated
        // program, the end-to-end simulation (which checks FPmatch at
        // every switch point) accepts the Selection pass.
        use ccc_clight::gen::{gen_module, GenCfg};
        use ccc_compiler::driver::compile_with_artifacts;
        use ccc_compiler::verif::verify_passes;

        let (m, ge) = gen_module(seed, &GenCfg::default());
        let arts = compile_with_artifacts(&m).expect("compiles");
        let verdicts = verify_passes(&arts, &ge, "f");
        let sel = verdicts.iter().find(|v| v.pass == "Selection").expect("has pass");
        prop_assert!(sel.ok());
    }
}
