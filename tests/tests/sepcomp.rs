//! Integration battery for incremental separate compilation: the
//! content-addressed witness cache, its trust discipline, hash
//! stability, the disk tier, and the batch compile-and-validate
//! service.
//!
//! The load-bearing property is *bit-identity*: however a module's
//! result was obtained — cold compile, memory hit, disk hit, or
//! rejected-and-recompiled — the artifacts, the serialized witness and
//! the re-discharged link obligations must equal what a cold full
//! build produces. The proptest battery checks that over random
//! multi-module programs with one random module edited; the
//! deterministic tests poison the cache in every way the trust
//! argument claims to catch.

use ccc_analysis::sepcomp::{build_program, check_link_obligations, SepUnit, TransvalCertifier};
use ccc_clight::ast::ClightModule;
use ccc_compiler::driver::{compile_with_artifacts, id_trans};
use ccc_compiler::{
    module_hash, module_hash_with_version, CacheOutcome, Certifier, CompilationArtifacts,
    CompileCache, CompileService, RecheckDepth, ServiceCfg, CACHE_FORMAT_VERSION,
};
use ccc_fuzz::{
    check_cached_vs_fresh_seeded, gen_program, lower_prefixed, parse_program, program_to_text,
    CorpusEntry, FuzzProgram,
};
use ccc_sync::lock::lock_spec;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;

/// Units per generated program in the multi-module battery.
const UNITS: usize = 4;

fn programs_from(seed: u64, n: usize, size: u32) -> Vec<FuzzProgram> {
    (0..n as u64)
        .map(|i| gen_program(seed.wrapping_add(i), size))
        .collect()
}

/// Lowers each program into its own namespace and address range, the
/// way a build system hands separately compiled units to the linker.
fn units_of(programs: &[FuzzProgram]) -> Vec<SepUnit> {
    programs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let (module, ge, entries) =
                lower_prefixed(p, &format!("m{i}_"), 0x2000 + 0x100 * i as u64);
            SepUnit {
                name: format!("m{i}"),
                module,
                ge,
                entries,
            }
        })
        .collect()
}

fn module_of(seed: u64, size: u32) -> ClightModule {
    lower_prefixed(&gen_program(seed, size), "m0_", 0x2000).0
}

/// The no-cache reference: full pipeline + full certification per unit.
fn cold_build(units: &[SepUnit]) -> Vec<(CompilationArtifacts, String)> {
    units
        .iter()
        .map(|u| {
            let arts = compile_with_artifacts(&u.module).expect("unit compiles");
            let witness = TransvalCertifier.certify(&arts).expect("unit validates");
            (arts, witness)
        })
        .collect()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Edit one random module of a multi-module program: the
    /// incremental rebuild must recompile exactly that module, serve
    /// the rest as hits, and produce artifacts, witnesses and link
    /// obligations bit-identical to a cold full build of the edited
    /// program.
    #[test]
    fn incremental_rebuild_is_bit_identical_to_cold_build(
        seed in any::<u64>(),
        size in 4u32..8,
        full_depth in any::<bool>(),
    ) {
        let progs = programs_from(seed, UNITS + 1, size);
        // The edit replaces one random slot with the extra program.
        // Skip the (rare) draws where generated programs coincide —
        // the hit/miss split below assumes distinct content addresses.
        let texts: BTreeSet<String> = progs.iter().map(program_to_text).collect();
        if texts.len() != progs.len() {
            return; // coincident programs: the split below is undefined
        }
        let edit = (seed % UNITS as u64) as usize;
        let mut edited = progs[..UNITS].to_vec();
        edited[edit] = progs[UNITS].clone();

        let base_units = units_of(&progs[..UNITS]);
        let edited_units = units_of(&edited);
        let (object_src, object_ge) = lock_spec("L");
        let object_tgt = id_trans(&object_src);

        let cold = cold_build(&edited_units);
        let cold_link =
            check_link_obligations(&edited_units, &object_src, &object_tgt, &object_ge);

        let depth = if full_depth { RecheckDepth::Full } else { RecheckDepth::Structural };
        let cache = CompileCache::new();
        let warm = build_program(
            &base_units, &object_src, &object_tgt, &object_ge, &cache, &TransvalCertifier, depth,
        )
        .expect("warm build");
        for m in &warm.modules {
            prop_assert_eq!(&m.outcome, &CacheOutcome::Miss);
        }

        let incr = build_program(
            &edited_units, &object_src, &object_tgt, &object_ge, &cache, &TransvalCertifier, depth,
        )
        .expect("incremental build");
        let stats = cache.stats();
        prop_assert_eq!(stats.misses, UNITS as u64 + 1, "{:?}", stats);
        prop_assert_eq!(stats.hits, UNITS as u64 - 1, "{:?}", stats);
        prop_assert_eq!(stats.rejected, 0, "{:?}", stats);
        for (i, m) in incr.modules.iter().enumerate() {
            let expected = if i == edit { CacheOutcome::Miss } else { CacheOutcome::Hit };
            prop_assert_eq!(&m.outcome, &expected, "unit m{}", i);
            let (cold_arts, cold_witness) = &cold[i];
            prop_assert!(*m.arts == *cold_arts, "unit m{} artifacts differ from cold build", i);
            prop_assert_eq!(&m.witness_json, cold_witness, "unit m{} witness differs", i);
        }
        prop_assert_eq!(incr.link, cold_link);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The single-module cold/miss/hit/poison/recover cycle
    /// (`ccc_fuzz::cachediff`) over random seeds at both re-check
    /// depths.
    #[test]
    fn cachediff_cycle_holds(seed in any::<u64>(), full_depth in any::<bool>()) {
        let depth = if full_depth { RecheckDepth::Full } else { RecheckDepth::Structural };
        if let Err(e) = check_cached_vs_fresh_seeded(seed, 6, depth) {
            prop_assert!(false, "seed {}: {}", seed, e);
        }
    }
}

// --- Poisoned-cache mutation tests: each corruption the trust
// --- argument claims to catch, exercised end to end.

#[test]
fn flipped_obligation_is_rejected_and_recompiled() {
    let m = module_of(1, 6);
    let cache = CompileCache::new();
    let cold = cache
        .compile_cached(&m, &TransvalCertifier, RecheckDepth::Structural)
        .expect("cold compile");
    assert_eq!(cold.outcome, CacheOutcome::Miss);

    let mut e = cache.entry(module_hash(&m)).expect("cached entry");
    assert!(e.witness_json.contains("\"discharged\":true"));
    e.witness_json = e
        .witness_json
        .replacen("\"discharged\":true", "\"discharged\":false", 1);
    cache.put_entry(e);

    let r = cache
        .compile_cached(&m, &TransvalCertifier, RecheckDepth::Structural)
        .expect("recovers by recompiling");
    let CacheOutcome::Rejected(why) = &r.outcome else {
        panic!("poisoned entry served as {:?}", r.outcome);
    };
    assert!(why.contains("undischarged"), "unexpected rejection: {why}");
    assert!(
        *r.arts == *cold.arts,
        "recovered artifacts differ from cold build"
    );
    assert_eq!(r.witness_json, cold.witness_json);

    // The healed slot serves clean hits again.
    let again = cache
        .compile_cached(&m, &TransvalCertifier, RecheckDepth::Structural)
        .expect("healed");
    assert_eq!(again.outcome, CacheOutcome::Hit);
}

#[test]
fn truncated_witness_is_rejected_with_byte_offset() {
    let m = module_of(2, 6);
    let cache = CompileCache::new();
    cache
        .compile_cached(&m, &TransvalCertifier, RecheckDepth::Structural)
        .expect("cold compile");

    let mut e = cache.entry(module_hash(&m)).expect("cached entry");
    let cut = e.witness_json.len() / 2;
    e.witness_json.truncate(cut);
    cache.put_entry(e);

    let r = cache
        .compile_cached(&m, &TransvalCertifier, RecheckDepth::Structural)
        .expect("recovers by recompiling");
    let CacheOutcome::Rejected(why) = &r.outcome else {
        panic!("truncated witness served as {:?}", r.outcome);
    };
    assert!(
        why.contains(" at byte "),
        "parse rejection should carry a byte offset: {why}"
    );
}

#[test]
fn swapped_artifacts_are_rejected_by_the_source_binding() {
    let (ma, mb) = (module_of(3, 6), module_of(4, 6));
    assert_ne!(module_hash(&ma), module_hash(&mb));
    let cache = CompileCache::new();
    let cold_a = cache
        .compile_cached(&ma, &TransvalCertifier, RecheckDepth::Structural)
        .expect("compile a");
    cache
        .compile_cached(&mb, &TransvalCertifier, RecheckDepth::Structural)
        .expect("compile b");

    // File b's artifacts and witness under a's content address: the
    // hash key matches, the stored source does not.
    let eb = cache.entry(module_hash(&mb)).expect("entry b");
    let mut poison = cache.entry(module_hash(&ma)).expect("entry a");
    poison.arts = eb.arts;
    poison.witness_json = eb.witness_json;
    poison.digests = eb.digests;
    cache.put_entry(poison);

    let r = cache
        .compile_cached(&ma, &TransvalCertifier, RecheckDepth::Structural)
        .expect("recovers by recompiling");
    let CacheOutcome::Rejected(why) = &r.outcome else {
        panic!("swapped artifacts served as {:?}", r.outcome);
    };
    assert!(why.contains("does not match requested module"), "{why}");
    assert!(
        *r.arts == *cold_a.arts,
        "recovery must rebuild a's artifacts"
    );
}

#[test]
fn swapped_witness_is_rejected_at_full_depth() {
    let (ma, mb) = (module_of(5, 6), module_of(6, 6));
    let cache = CompileCache::new();
    let cold_a = cache
        .compile_cached(&ma, &TransvalCertifier, RecheckDepth::Full)
        .expect("compile a");
    let cold_b = cache
        .compile_cached(&mb, &TransvalCertifier, RecheckDepth::Full)
        .expect("compile b");
    assert_ne!(cold_a.witness_json, cold_b.witness_json);

    // a's artifacts with b's witness: the source binding holds and the
    // witness is well-formed, so only the full re-derivation — which
    // re-validates a's artifacts and compares — can catch it.
    let mut poison = cache.entry(module_hash(&ma)).expect("entry a");
    poison.witness_json = cold_b.witness_json.clone();
    cache.put_entry(poison);

    let r = cache
        .compile_cached(&ma, &TransvalCertifier, RecheckDepth::Full)
        .expect("recovers by recompiling");
    assert!(
        matches!(r.outcome, CacheOutcome::Rejected(_)),
        "swapped witness served as {:?}",
        r.outcome
    );
    assert!(*r.arts == *cold_a.arts);
    assert_eq!(r.witness_json, cold_a.witness_json);
}

// --- Hash stability: the content address must survive serialization
// --- and separate structurally distinct modules.

#[test]
fn module_hash_is_stable_across_text_round_trip() {
    for seed in 0..16u64 {
        let p = gen_program(seed, 6);
        let text = program_to_text(&p);
        let p2 = parse_program(&text).expect("round trip parses");
        assert_eq!(p, p2, "seed {seed}: round trip changed the program");
        let (m, _, _) = lower_prefixed(&p, "m0_", 0x2000);
        let (m2, _, _) = lower_prefixed(&p2, "m0_", 0x2000);
        assert_eq!(module_hash(&m), module_hash(&m2), "seed {seed}");
    }
}

#[test]
fn distinct_modules_get_distinct_hashes() {
    // Generated stream plus every regression-corpus program: equal
    // hashes must mean equal modules.
    let mut programs: Vec<FuzzProgram> = (0..32).map(|s| gen_program(s, 6)).collect();
    let corpus = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    for entry in std::fs::read_dir(&corpus).expect("corpus dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "txt") {
            let text = std::fs::read_to_string(&path).expect("readable");
            programs.push(CorpusEntry::from_text(&text).expect("parses").program);
        }
    }
    assert!(programs.len() > 50, "expected generated + corpus programs");
    let mut by_hash: BTreeMap<u64, ClightModule> = BTreeMap::new();
    for p in &programs {
        let (m, _, _) = lower_prefixed(p, "c_", 0x2000);
        let h = module_hash(&m);
        if let Some(prev) = by_hash.insert(h, m.clone()) {
            assert_eq!(prev, m, "hash collision {h:#x} between distinct modules");
        }
    }
    assert!(
        by_hash.len() > 30,
        "the stream collapsed to too few distinct modules"
    );
}

#[test]
fn module_hash_is_cache_format_versioned() {
    let m = module_of(7, 6);
    assert_eq!(
        module_hash_with_version(CACHE_FORMAT_VERSION, &m),
        module_hash(&m),
        "module_hash must hash under the current cache format version"
    );
    assert_ne!(
        module_hash_with_version(CACHE_FORMAT_VERSION + 1, &m),
        module_hash(&m),
        "bumping the cache format version must invalidate every address"
    );
}

// --- Disk tier: round trip, promotion, and corruption.

#[test]
fn disk_tier_round_trips_and_promotes() {
    let cache = CompileCache::new()
        .with_disk(tmp_dir("sepcomp_disk_roundtrip"))
        .expect("disk tier");
    let m = module_of(8, 6);
    let miss = cache
        .compile_cached(&m, &TransvalCertifier, RecheckDepth::Structural)
        .expect("cold compile");
    assert_eq!(miss.outcome, CacheOutcome::Miss);

    cache.clear_memory();
    let disk = cache
        .compile_cached(&m, &TransvalCertifier, RecheckDepth::Structural)
        .expect("disk rebuild");
    assert_eq!(disk.outcome, CacheOutcome::DiskHit);
    assert!(
        *disk.arts == *miss.arts,
        "disk rebuild differs from cold build"
    );
    assert_eq!(disk.witness_json, miss.witness_json);

    // The disk hit promotes the entry back into the memory tier.
    let again = cache
        .compile_cached(&m, &TransvalCertifier, RecheckDepth::Structural)
        .expect("promoted");
    assert_eq!(again.outcome, CacheOutcome::Hit);
}

#[test]
fn corrupt_disk_entries_are_rejected_and_rewritten() {
    let cache = CompileCache::new()
        .with_disk(tmp_dir("sepcomp_disk_corrupt"))
        .expect("disk tier");
    let m = module_of(9, 6);
    cache
        .compile_cached(&m, &TransvalCertifier, RecheckDepth::Structural)
        .expect("cold compile");
    let path = cache.disk_path(module_hash(&m)).expect("disk path");

    // A file that is not a cache entry at all.
    std::fs::write(&path, "garbage\n").expect("overwrite entry");
    cache.clear_memory();
    let r = cache
        .compile_cached(&m, &TransvalCertifier, RecheckDepth::Structural)
        .expect("recovers");
    let CacheOutcome::Rejected(why) = &r.outcome else {
        panic!("garbage disk entry served as {:?}", r.outcome);
    };
    assert!(why.contains("disk entry"), "{why}");

    // The recovery rewrote a valid entry; tamper one stage digest.
    let text = std::fs::read_to_string(&path).expect("rewritten entry");
    let tampered: String = text
        .lines()
        .map(|l| {
            if l.starts_with("digest Clight ") {
                let flip = if l.ends_with('0') { "1" } else { "0" };
                format!("{}{flip}\n", &l[..l.len() - 1])
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    assert_ne!(text, tampered, "no Clight digest line to tamper");
    std::fs::write(&path, tampered).expect("tamper entry");
    cache.clear_memory();
    let r = cache
        .compile_cached(&m, &TransvalCertifier, RecheckDepth::Structural)
        .expect("recovers");
    let CacheOutcome::Rejected(why) = &r.outcome else {
        panic!("tampered digest served as {:?}", r.outcome);
    };
    assert!(why.contains("digest"), "{why}");
}

// --- The batch service end to end over a shared cache.

#[test]
fn service_serves_warm_hits_bit_identical_to_cold() {
    let programs = programs_from(10, 3, 6);
    let units = units_of(&programs);
    let cold = cold_build(&units);
    let cache = Arc::new(CompileCache::new());
    let svc = CompileService::start(
        Arc::clone(&cache),
        Arc::new(TransvalCertifier),
        &ServiceCfg {
            workers: 2,
            queue_cap: 8,
            depth: RecheckDepth::Structural,
        },
    );

    // Warm sequentially (concurrent first-requests for the same module
    // may both miss; the cache dedups by address, not in-flight work).
    for u in &units {
        let served = svc
            .submit(u.module.clone())
            .recv()
            .expect("reply")
            .expect("compiles");
        assert_eq!(served.outcome, CacheOutcome::Miss);
    }

    cache.reset_stats();
    let replies: Vec<_> = (0..12)
        .map(|i| svc.submit(units[i % units.len()].module.clone()))
        .collect();
    for (i, r) in replies.into_iter().enumerate() {
        let served = r.recv().expect("reply").expect("compiles");
        assert!(
            served.outcome.is_hit(),
            "request {i} missed: {:?}",
            served.outcome
        );
        let (cold_arts, cold_witness) = &cold[i % units.len()];
        assert!(*served.arts == *cold_arts, "request {i} artifacts differ");
        assert_eq!(
            &served.witness_json, cold_witness,
            "request {i} witness differs"
        );
    }
    assert_eq!(cache.stats().hits, 12);
    svc.shutdown();
}
