//! Chaos scheduling: single random schedules (the fast execution path,
//! `run_schedule`) agree with what exhaustive exploration says about
//! the program — every run of the DRF lock-counter terminates, never
//! aborts, and prints a permutation consistent with critical-section
//! serialization.

use ccc_cimp::CImpLang;
use ccc_clight::ClightLang;
use ccc_core::lang::{Event, ModuleDecl, Prog, Sum, SumLang};
use ccc_core::world::{run_schedule, Loaded, RunEnd};
use ccc_sync::lock::{counter_client, lock_spec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

type SrcLang = SumLang<ClightLang, CImpLang>;

fn counter_program(threads: usize) -> Loaded<SrcLang> {
    let (client, ge, entries) = counter_client("x", threads);
    let (lock, lock_ge) = lock_spec("L");
    Loaded::new(Prog {
        lang: SumLang(ClightLang, CImpLang),
        modules: vec![
            ModuleDecl {
                code: Sum::L(client),
                ge,
            },
            ModuleDecl {
                code: Sum::R(lock),
                ge: lock_ge,
            },
        ],
        entries,
    })
    .expect("links")
}

#[test]
fn random_schedules_of_the_counter_are_serializable() {
    let loaded = counter_program(3);
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut distinct = std::collections::BTreeSet::new();
    for run in 0..60 {
        let w = loaded.load().expect("load");
        let r = run_schedule(&loaded, w, 100_000, |n| rng.gen_range(0..n));
        assert_eq!(r.end, RunEnd::Done, "run {run} did not finish: {r:?}");
        // Three increments, each thread prints the value it observed:
        // a permutation-free serialization prints {0, 1, 2} in some
        // thread order, but each VALUE exactly once.
        let mut vals: Vec<i64> = r
            .events
            .iter()
            .map(|e| match e {
                Event::Print(i) => *i,
            })
            .collect();
        distinct.insert(vals.clone());
        vals.sort_unstable();
        assert_eq!(
            vals,
            vec![0, 1, 2],
            "run {run}: lost update in {:?}",
            r.events
        );
    }
    // Chaos scheduling actually exercised more than one interleaving.
    assert!(distinct.len() > 1, "schedules were not diverse");
}

#[test]
fn periodic_schedules_serialize_or_spin_but_never_go_wrong() {
    // Deterministic periodic switching is an *unfair* scheduler: it can
    // park the lock holder in a resonance where the spinner re-grabs
    // the atomic test-and-set forever. That is a legitimate divergence
    // of the spin-lock specification (the termination-insensitivity of
    // §7.3) — what must never happen is an abort or a lost update.
    let loaded = counter_program(2);
    let mut completed = 0;
    for quantum in [2usize, 3, 5, 8, 13] {
        let w = loaded.load().expect("load");
        let mut tick = 0usize;
        let r = run_schedule(&loaded, w, 50_000, |n| {
            tick += 1;
            if tick.is_multiple_of(quantum) {
                n - 1 // prefer the last alternative (a switch, when enabled)
            } else {
                0
            }
        });
        assert_ne!(r.end, RunEnd::Abort, "quantum {quantum} went wrong");
        let mut vals: Vec<i64> = r
            .events
            .iter()
            .map(|e| match e {
                Event::Print(i) => *i,
            })
            .collect();
        vals.sort_unstable();
        match r.end {
            RunEnd::Done => {
                completed += 1;
                assert_eq!(vals, vec![0, 1], "quantum {quantum}: {:?}", r.events);
            }
            RunEnd::OutOfFuel => {
                // Spinning forever: whatever was printed so far must
                // still be a prefix of a serialization.
                assert!(vals == vec![] || vals == vec![0] || vals == vec![0, 1]);
            }
            RunEnd::Abort => unreachable!(),
        }
    }
    assert!(completed >= 2, "most quanta should complete");
}
