//! Validation of the extended framework (Fig. 3 and Thm. 15 of the
//! paper): end-to-end compilation of concurrent Clight clients to
//! x86-TSO, linked with the racy TTAS lock, refines the abstract
//! source — plus litmus-level checks of the TSO machine itself.

use ccc_cimp::CImpLang;
use ccc_clight::ClightLang;
use ccc_compiler::driver::compile;
use ccc_core::lang::{Event, ModuleDecl, Prog, Sum, SumLang};
use ccc_core::mem::{GlobalEnv, Val};
use ccc_core::race::check_drf;
use ccc_core::refine::{collect_traces, trace_refines_nonterm, ExploreCfg, Preemptive, Terminal};
use ccc_core::world::Loaded;
use ccc_machine::{litmus, AsmModule, X86Sc, X86Tso};
use ccc_sync::drf_guarantee::{build_ptso, check_drf_guarantee, SyncObject};
use ccc_sync::lock::{counter_client, lock_impl, lock_spec};
use ccc_sync::stack::stack_object;

fn lock_object() -> SyncObject {
    let (spec, spec_ge) = lock_spec("L");
    let (impl_asm, impl_ge) = lock_impl("L");
    SyncObject {
        spec,
        spec_ge,
        impl_asm,
        impl_ge,
    }
}

/// The full Fig. 3 route: Clight clients + CImp lock (the source P),
/// compiled clients + racy lock linked under TSO (P_rmm); check
/// `P_rmm ⊑′ P`.
#[test]
fn theorem15_clight_to_tso_with_racy_lock() {
    let (client, client_ge, entries) = counter_client("x", 2);
    let obj = lock_object();

    // Source P: Clight clients + γ_lock.
    type SrcLang = SumLang<ClightLang, CImpLang>;
    let src: Prog<SrcLang> = Prog {
        lang: SumLang(ClightLang, CImpLang),
        modules: vec![
            ModuleDecl {
                code: Sum::L(client.clone()),
                ge: client_ge.clone(),
            },
            ModuleDecl {
                code: Sum::R(obj.spec.clone()),
                ge: obj.spec_ge.clone(),
            },
        ],
        entries: entries.clone(),
    };
    let src = Loaded::new(src).expect("src links");

    let cfg = ExploreCfg {
        fuel: 320,
        max_states: 4_000_000,
        ..Default::default()
    };
    // Premises: Safe(P) and DRF(P).
    assert!(
        ccc_core::refine::check_safe(&Preemptive(&src), &cfg)
            .expect("safe")
            .safe
    );
    assert!(check_drf(&src, &cfg).expect("drf").is_drf());

    // Compile the clients; link with π_lock; run under TSO.
    let client_asm = compile(&client).expect("compiles");
    let ptso = build_ptso(&client_asm, &client_ge, &entries, &obj).expect("links");

    let src_traces = collect_traces(&Preemptive(&src), &cfg).expect("src traces");
    let tso_traces = collect_traces(&Preemptive(&ptso), &cfg).expect("tso traces");
    assert!(
        trace_refines_nonterm(&tso_traces, &src_traces),
        "P_rmm ⊑′ P violated"
    );
    // Both sides realize the serialization printing 0 then 1.
    for ts in [&src_traces, &tso_traces] {
        assert!(
            ts.traces
                .iter()
                .any(|t| t.end == Terminal::Done
                    && t.events == vec![Event::Print(0), Event::Print(1)]),
            "expected the 0,1 serialization"
        );
        // Mutual exclusion: no trace ever prints the same value twice.
        assert!(
            !ts.traces
                .iter()
                .any(|t| t.events == vec![Event::Print(0), Event::Print(0)]),
            "lost update observed"
        );
    }
}

#[test]
fn lemma16_lock_and_stack_objects() {
    let cfg = ExploreCfg {
        fuel: 260,
        max_states: 4_000_000,
        ..Default::default()
    };
    // Lock object with a minimal critical-section client.
    let client = ccc_machine::AsmFunc {
        code: vec![
            ccc_machine::Instr::Call("lock".into(), 0),
            ccc_machine::Instr::Load(
                ccc_machine::Reg::Ecx,
                ccc_machine::MemArg::Global("x".into(), 0),
            ),
            ccc_machine::Instr::Add(ccc_machine::Reg::Ecx, ccc_machine::Operand::Imm(1)),
            ccc_machine::Instr::Store(
                ccc_machine::MemArg::Global("x".into(), 0),
                ccc_machine::Operand::Reg(ccc_machine::Reg::Ecx),
            ),
            ccc_machine::Instr::Call("unlock".into(), 0),
            ccc_machine::Instr::Print(ccc_machine::Reg::Ecx),
            ccc_machine::Instr::Mov(ccc_machine::Reg::Eax, ccc_machine::Operand::Imm(0)),
            ccc_machine::Instr::Ret,
        ],
        frame_slots: 0,
        arity: 0,
    };
    let clients = AsmModule::new([("t1", client.clone()), ("t2", client)]);
    let mut ge = GlobalEnv::new();
    ge.define("x", Val::Int(0));
    let entries = vec!["t1".to_string(), "t2".to_string()];
    let report = check_drf_guarantee(&clients, &ge, &entries, &lock_object(), &cfg).expect("lock");
    assert!(report.holds(), "lock object: {report:?}");

    // Treiber stack object: two pushers + a popper each.
    let pushpop = |v: i64| ccc_machine::AsmFunc {
        code: vec![
            ccc_machine::Instr::Mov(ccc_machine::Reg::Edi, ccc_machine::Operand::Imm(v)),
            ccc_machine::Instr::Call("push".into(), 1),
            ccc_machine::Instr::Call("pop".into(), 0),
            ccc_machine::Instr::Print(ccc_machine::Reg::Eax),
            ccc_machine::Instr::Mov(ccc_machine::Reg::Eax, ccc_machine::Operand::Imm(0)),
            ccc_machine::Instr::Ret,
        ],
        frame_slots: 0,
        arity: 0,
    };
    let clients = AsmModule::new([("t1", pushpop(1)), ("t2", pushpop(2))]);
    let ge = GlobalEnv::new();
    let report =
        check_drf_guarantee(&clients, &ge, &entries, &stack_object(), &cfg).expect("stack");
    assert!(report.holds(), "stack object: {report:?}");
}

/// The exploration budget used for the litmus corpus (the observer
/// threads of R and 2+2W spin, so paths are longer than the default).
fn litmus_cfg() -> ExploreCfg {
    ExploreCfg {
        fuel: 200,
        max_states: 4_000_000,
        ..Default::default()
    }
}

/// The multiset of printed values of a terminating trace, as a sorted
/// vector (print order between threads is schedule-dependent; the weak
/// outcomes are defined up to reordering).
fn done_outcomes(ts: &ccc_core::refine::TraceSet) -> Vec<Vec<i64>> {
    ts.traces
        .iter()
        .filter(|t| t.end == Terminal::Done)
        .map(|t| {
            let mut vals: Vec<i64> = t
                .events
                .iter()
                .map(|e| match e {
                    Event::Print(i) => *i,
                })
                .collect();
            vals.sort_unstable();
            vals
        })
        .collect()
}

/// The litmus suite: every weak outcome is SC-forbidden, and x86-TSO
/// exhibits it exactly when the corpus says it does (SB and R — the
/// store→load relaxation is the *only* one the store buffer adds).
#[test]
fn litmus_corpus_allowed_and_forbidden_outcomes() {
    let cfg = litmus_cfg();
    for l in litmus::corpus() {
        let mut weak = l.weak.clone();
        weak.sort_unstable();
        let sc = Loaded::new(Prog::new(
            X86Sc,
            vec![(l.module.clone(), l.ge.clone())],
            l.entries.clone(),
        ))
        .expect("sc links");
        let sc_traces = collect_traces(&Preemptive(&sc), &cfg).expect("sc traces");
        assert!(!sc_traces.truncated, "{}: SC exploration truncated", l.name);
        assert!(
            !done_outcomes(&sc_traces).contains(&weak),
            "{}: weak outcome {weak:?} must be SC-forbidden",
            l.name
        );

        let tso = Loaded::new(Prog::new(
            X86Tso,
            vec![(l.module.clone(), l.ge.clone())],
            l.entries.clone(),
        ))
        .expect("tso links");
        let tso_traces = collect_traces(&Preemptive(&tso), &cfg).expect("tso traces");
        assert!(
            !tso_traces.truncated,
            "{}: TSO exploration truncated",
            l.name
        );
        assert_eq!(
            done_outcomes(&tso_traces).contains(&weak),
            l.tso_observable,
            "{}: TSO observability of {weak:?}",
            l.name
        );

        // The trace-set level statement: the corpus programs whose weak
        // outcome TSO forbids are in fact fully SC-equivalent.
        use ccc_core::refine::trace_equiv;
        assert_eq!(
            trace_equiv(&sc_traces, &tso_traces),
            !l.tso_observable,
            "{}: SC/TSO trace-set equality",
            l.name
        );
    }
}

#[test]
fn tso_buffer_delays_are_observable_without_sync() {
    // A message-passing litmus: t1 writes data then flag (both plain);
    // t2 polls flag once and reads data. Under TSO t2 can see the flag
    // set but stale data? No — TSO preserves store order! Both stores
    // flush in order, so flag ⇒ data. This distinguishes TSO from
    // weaker models and pins our buffer as FIFO.
    let t1 = ccc_machine::AsmFunc {
        code: vec![
            ccc_machine::Instr::Store(
                ccc_machine::MemArg::Global("data".into(), 0),
                ccc_machine::Operand::Imm(42),
            ),
            ccc_machine::Instr::Store(
                ccc_machine::MemArg::Global("flag".into(), 0),
                ccc_machine::Operand::Imm(1),
            ),
            ccc_machine::Instr::Mov(ccc_machine::Reg::Eax, ccc_machine::Operand::Imm(0)),
            ccc_machine::Instr::Ret,
        ],
        frame_slots: 0,
        arity: 0,
    };
    let t2 = ccc_machine::AsmFunc {
        code: vec![
            ccc_machine::Instr::Load(
                ccc_machine::Reg::Ecx,
                ccc_machine::MemArg::Global("flag".into(), 0),
            ),
            ccc_machine::Instr::Cmp(
                ccc_machine::Operand::Reg(ccc_machine::Reg::Ecx),
                ccc_machine::Operand::Imm(1),
            ),
            ccc_machine::Instr::Jcc(ccc_machine::Cond::Ne, "skip".into()),
            ccc_machine::Instr::Load(
                ccc_machine::Reg::Edx,
                ccc_machine::MemArg::Global("data".into(), 0),
            ),
            ccc_machine::Instr::Print(ccc_machine::Reg::Edx),
            ccc_machine::Instr::Label("skip".into()),
            ccc_machine::Instr::Mov(ccc_machine::Reg::Eax, ccc_machine::Operand::Imm(0)),
            ccc_machine::Instr::Ret,
        ],
        frame_slots: 0,
        arity: 0,
    };
    let m = AsmModule::new([("t1", t1), ("t2", t2)]);
    let mut ge = GlobalEnv::new();
    ge.define("data", Val::Int(0));
    ge.define("flag", Val::Int(0));
    let loaded = Loaded::new(Prog::new(X86Tso, vec![(m, ge)], ["t1", "t2"])).expect("links");
    let traces = collect_traces(&Preemptive(&loaded), &ExploreCfg::default()).expect("traces");
    // If anything is printed, it is 42: the FIFO buffer never reorders
    // the two stores.
    for t in &traces.traces {
        for e in &t.events {
            assert_eq!(*e, Event::Print(42), "store order violated in {t:?}");
        }
    }
    // And the conditional print does fire on some schedule.
    assert!(traces.traces.iter().any(|t| !t.events.is_empty()));
}

#[test]
fn tso_object_modules_require_linked_execution() {
    // Sanity: build_ptso links clients and object into one module; a
    // symbol collision is reported, not ignored.
    let obj = lock_object();
    let clash = AsmModule::new([(
        "lock", // collides with the object's export
        ccc_machine::AsmFunc {
            code: vec![ccc_machine::Instr::Ret],
            frame_slots: 0,
            arity: 0,
        },
    )]);
    let ge = GlobalEnv::new();
    assert!(build_ptso(&clash, &ge, &["lock".to_string()], &obj).is_err());
}
