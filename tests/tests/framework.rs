//! Validation of the proof framework itself (Figs. 1 and 2 of the
//! paper) on program corpora: the semantics equivalences, the DRF/NPDRF
//! correspondence, flip/soundness, and the compositionality of the
//! module-local simulation.

use ccc_clight::gen::{gen_module, GenCfg};
use ccc_clight::ClightLang;
use ccc_core::framework::validate_fig2;
use ccc_core::lang::Prog;
use ccc_core::race::{check_drf, check_npdrf};
use ccc_core::refine::{
    collect_traces, count_states, trace_equiv, ExploreCfg, NonPreemptive, Preemptive,
};
use ccc_core::toy::{toy_globals, toy_module, ToyInstr as I, ToyLang};
use ccc_core::world::Loaded;

fn toy_prog(funcs: &[(&str, Vec<I>)], globals: &[(&str, i64)]) -> Loaded<ToyLang> {
    let (m, _) = toy_module(funcs, &[]);
    let entries: Vec<String> = funcs.iter().map(|(n, _)| n.to_string()).collect();
    Loaded::new(Prog::new(ToyLang, vec![(m, toy_globals(globals))], entries)).expect("link")
}

/// A corpus of small concurrent programs with varied synchronization
/// shapes.
fn corpus() -> Vec<(&'static str, Loaded<ToyLang>, bool)> {
    let atomic_inc = vec![
        I::EntAtom,
        I::LoadG("x".into()),
        I::Add(1),
        I::StoreG("x".into()),
        I::ExtAtom,
        I::Ret(0),
    ];
    let plain_inc = vec![
        I::LoadG("x".into()),
        I::Add(1),
        I::StoreG("x".into()),
        I::Ret(0),
    ];
    let print_priv = vec![I::Const(7), I::Print, I::Ret(0)];
    let atomic_then_print = vec![
        I::EntAtom,
        I::LoadG("x".into()),
        I::ExtAtom,
        I::Print,
        I::Ret(0),
    ];
    let mixed = vec![
        I::Const(3),
        I::Print,
        I::EntAtom,
        I::LoadG("y".into()),
        I::Add(2),
        I::StoreG("y".into()),
        I::ExtAtom,
        I::Ret(0),
    ];
    vec![
        (
            "two atomic incrementers",
            toy_prog(
                &[("a", atomic_inc.clone()), ("b", atomic_inc.clone())],
                &[("x", 0)],
            ),
            true,
        ),
        (
            "racy incrementers",
            toy_prog(&[("a", plain_inc.clone()), ("b", plain_inc)], &[("x", 0)]),
            false,
        ),
        (
            "independent printers",
            toy_prog(&[("a", print_priv.clone()), ("b", print_priv.clone())], &[]),
            true,
        ),
        (
            "atomic read then print",
            toy_prog(
                &[("a", atomic_then_print.clone()), ("b", atomic_then_print)],
                &[("x", 5)],
            ),
            true,
        ),
        (
            "mixed print + atomic section",
            toy_prog(
                &[("a", mixed.clone()), ("b", mixed), ("c", print_priv)],
                &[("x", 0), ("y", 0)],
            ),
            true,
        ),
    ]
}

#[test]
fn lemma9_np_equivalence_for_drf_programs() {
    // Step ①/② of Fig. 2: DRF programs have the same behaviours under
    // preemptive and non-preemptive semantics.
    let cfg = ExploreCfg::default();
    for (name, prog, expect_drf) in corpus() {
        let drf = check_drf(&prog, &cfg).expect("drf").is_drf();
        assert_eq!(drf, expect_drf, "{name}: DRF classification");
        if !drf {
            continue;
        }
        let p = collect_traces(&Preemptive(&prog), &cfg).expect("p");
        let np = collect_traces(&NonPreemptive(&prog), &cfg).expect("np");
        assert!(trace_equiv(&p, &np), "{name}: Lem. 9 violated");
    }
}

#[test]
fn racy_programs_may_lose_behaviours_non_preemptively() {
    // The converse motivation: for racy programs, the non-preemptive
    // semantics can MISS behaviours (here: final values of x), which is
    // why DRF is the framework's precondition.
    let store_then_load = vec![
        I::Const(1),
        I::StoreG("x".into()),
        I::LoadG("x".into()),
        I::Print,
        I::Ret(0),
    ];
    let store2 = vec![I::Const(2), I::StoreG("x".into()), I::Ret(0)];
    let prog = toy_prog(&[("a", store_then_load), ("b", store2)], &[("x", 0)]);
    let cfg = ExploreCfg::default();
    assert!(!check_drf(&prog, &cfg).expect("drf").is_drf());
    let p = collect_traces(&Preemptive(&prog), &cfg).expect("p");
    let np = collect_traces(&NonPreemptive(&prog), &cfg).expect("np");
    // Preemptively, thread b's store can land between a's store and
    // load, so a prints 2; non-preemptively a's block is uninterrupted.
    use ccc_core::lang::Event;
    let prints_two = |ts: &ccc_core::refine::TraceSet| {
        ts.traces
            .iter()
            .any(|t| t.events.contains(&Event::Print(2)))
    };
    assert!(prints_two(&p), "preemptive semantics realizes print(2)");
    assert!(!prints_two(&np), "non-preemptive semantics cannot");
}

#[test]
fn drf_iff_npdrf_on_corpus() {
    // Steps ⑥/⑧ of Fig. 2.
    let cfg = ExploreCfg::default();
    for (name, prog, _) in corpus() {
        let d = check_drf(&prog, &cfg).expect("drf").is_drf();
        let n = check_npdrf(&prog, &cfg).expect("npdrf").is_drf();
        assert_eq!(d, n, "{name}: DRF ⟺ NPDRF violated");
    }
}

#[test]
fn np_state_space_shrinks_with_silent_work() {
    // The non-preemptive payoff grows with the amount of silent
    // (switch-free) work per thread: preemption interleaves every
    // τ-step, the non-preemptive semantics runs each block atomically.
    // (For programs that are almost all atomic sections the two are
    // comparable; the win is on the silent prefixes.)
    let cfg = ExploreCfg::default();
    let mut prev_ratio = 0.0;
    for prefix_len in [2usize, 5, 8] {
        let mut body = vec![I::Const(0)];
        for _ in 0..prefix_len {
            body.push(I::Add(1));
        }
        body.extend([
            I::EntAtom,
            I::LoadG("x".into()),
            I::Add(1),
            I::StoreG("x".into()),
            I::ExtAtom,
            I::Ret(0),
        ]);
        let prog = toy_prog(
            &[("a", body.clone()), ("b", body.clone()), ("c", body)],
            &[("x", 0)],
        );
        let p = count_states(&Preemptive(&prog), &cfg).expect("p");
        let np = count_states(&NonPreemptive(&prog), &cfg).expect("np");
        assert!(
            np.states < p.states,
            "prefix {prefix_len}: NP {} !< preemptive {}",
            np.states,
            p.states
        );
        let ratio = p.states as f64 / np.states as f64;
        assert!(ratio > prev_ratio, "advantage should grow with silent work");
        prev_ratio = ratio;
    }
}

#[test]
fn fig2_holds_under_identity_compilation() {
    // With target = source, every arrow of Fig. 2 must validate for
    // DRF programs — the framework is sound on its own baseline.
    let cfg = ExploreCfg::default();
    for (name, prog, expect_drf) in corpus() {
        if !expect_drf {
            continue;
        }
        let report = validate_fig2(&prog, &prog, &cfg).expect("validate");
        assert!(report.all_hold(), "{name}: {:?}", report.failures());
    }
}

#[test]
fn fig1_wholeprogram_vs_modular_simulation() {
    // Fig. 1's contrast, executable: viewed as a *closed whole program*
    // the hoisted load below is indistinguishable (same traces), but
    // the *modular* simulation — which accounts for other modules via
    // footprints and rely steps (Fig. 1(d)) — rejects it at the first
    // switch point.
    use ccc_core::footprint::Mu;
    use ccc_core::mem::{GlobalEnv, Val};
    use ccc_core::sim::{check_module_sim, ModuleCtx, SimError, SimOptions};

    let mut ge = GlobalEnv::new();
    let x = ge.define("x", Val::Int(0));
    let src = ccc_clight::ClightModule::new([(
        "f",
        ccc_clight::Function::simple(ccc_clight::Stmt::seq([
            ccc_clight::Stmt::call0("ext", vec![]),
            ccc_clight::Stmt::Print(ccc_clight::Expr::var("x")),
            ccc_clight::Stmt::Return(None),
        ])),
    )]);
    let tgt = ccc_clight::ClightModule::new([(
        "f",
        ccc_clight::Function::simple(ccc_clight::Stmt::seq([
            ccc_clight::Stmt::Set("t".into(), ccc_clight::Expr::var("x")), // hoisted load!
            ccc_clight::Stmt::call0("ext", vec![]),
            ccc_clight::Stmt::Print(ccc_clight::Expr::temp("t")),
            ccc_clight::Stmt::Return(None),
        ])),
    )]);
    let mu = Mu::identity(ge.initial_memory().dom());
    let lang = ClightLang;

    // As closed whole programs (nobody implements `ext`, so stub it
    // with an internal no-op) the two are trace-equivalent…
    let stub = ccc_clight::Function::simple(ccc_clight::Stmt::Return(None));
    let mut src_closed = src.clone();
    src_closed.funcs.insert("ext".into(), stub.clone());
    let mut tgt_closed = tgt.clone();
    tgt_closed.funcs.insert("ext".into(), stub);
    let sp = Loaded::new(Prog::new(lang, vec![(src_closed, ge.clone())], ["f"])).expect("src");
    let tp = Loaded::new(Prog::new(lang, vec![(tgt_closed, ge.clone())], ["f"])).expect("tgt");
    let cfg = ExploreCfg::default();
    let st = collect_traces(&Preemptive(&sp), &cfg).expect("st");
    let tt = collect_traces(&Preemptive(&tp), &cfg).expect("tt");
    assert!(
        trace_equiv(&st, &tt),
        "closed programs are indistinguishable"
    );

    // …but the modular, footprint-aware simulation rejects the hoist:
    // the target reads the shared `x` before the switch point where the
    // source has not.
    let err = check_module_sim(
        &ModuleCtx {
            lang: &lang,
            module: &src,
            ge: &ge,
        },
        &ModuleCtx {
            lang: &lang,
            module: &tgt,
            ge: &ge,
        },
        &mu,
        "f",
        &[],
        &SimOptions::default(),
    )
    .expect_err("hoisting across a switch point must be rejected");
    assert!(matches!(err, SimError::LgFailed { .. }), "{err}");

    // With an explicit rely perturbation the divergence is even
    // observable in the events.
    let opts = SimOptions {
        perturbations: vec![vec![(x, Val::Int(9))]],
        ..SimOptions::default()
    };
    let err = check_module_sim(
        &ModuleCtx {
            lang: &lang,
            module: &src,
            ge: &ge,
        },
        &ModuleCtx {
            lang: &lang,
            module: &tgt,
            ge: &ge,
        },
        &mu,
        "f",
        &[],
        &opts,
    )
    .expect_err("still rejected with rely steps");
    assert!(
        matches!(
            err,
            SimError::LgFailed { .. } | SimError::MsgMismatch { .. }
        ),
        "{err}"
    );
}

#[test]
fn lemma8_simulation_preserves_npdrf_on_compiled_code() {
    // Step ⑦: for generated DRF programs, the compiled target is NPDRF
    // too (observed via the checkers; the simulation is the reason).
    let cfg = ExploreCfg {
        fuel: 300,
        ..Default::default()
    };
    for seed in 0..4 {
        let (m, ge) = gen_module(
            seed,
            &GenCfg {
                prints: true,
                ..Default::default()
            },
        );
        // Run the module as a 1-thread "concurrent" program plus a
        // sibling thread printing privately — trivially DRF.
        let asm = ccc_compiler::compile(&m).expect("compiles");
        let src = Loaded::new(Prog::new(ClightLang, vec![(m, ge.clone())], ["f"])).expect("src");
        let tgt = Loaded::new(Prog::new(ccc_machine::X86Sc, vec![(asm, ge)], ["f"])).expect("tgt");
        assert!(check_npdrf(&src, &cfg).expect("npdrf src").is_drf());
        assert!(check_npdrf(&tgt, &cfg).expect("npdrf tgt").is_drf());
    }
}
