//! Integration battery for the compositional rely-guarantee certifier
//! (`ccc_analysis::rg_cert`): the static per-module interference
//! certificates, their trusted checker, the link-time `RgCompatible`
//! obligation, and the witness-cache integration.
//!
//! The load-bearing property is *soundness with zero false negatives*:
//! a certificate the trusted checker admits as self-stable must
//! describe a module whose exploration (`check_drf_par`) never finds a
//! race, and a scoped certificate must imply the dynamic rely-guarantee
//! reach-closure check of `ccc_core::rg`. The battery also kills both
//! seeded-unsoundness mutants — a certifier that drops an action
//! summary and a link check that skips a module pair — proving the
//! checker and the differential harness actually carry the trust.

use ccc_analysis::rg_cert::{infer_rg_cert_mutated, rg_incompatibilities_mutated};
use ccc_analysis::sepcomp::{SepUnit, TransvalCertifier};
use ccc_analysis::{
    build_program_certified, check_static_race, infer_lock_model, infer_rg_cert, rg_cert_cached,
    rg_cert_from_json, rg_cert_to_json, rg_cert_violation, rg_incompatibilities, CertOutcome,
    LockModel,
};
use ccc_clight::ast::{Expr, Function, Stmt};
use ccc_clight::gen::gen_concurrent_client;
use ccc_clight::{ClightLang, ClightModule};
use ccc_compiler::driver::id_trans;
use ccc_compiler::{module_hash, CompileCache, RecheckDepth};
use ccc_core::lang::Prog;
use ccc_core::mem::{FreeList, GlobalEnv, Val};
use ccc_core::race::check_drf_par;
use ccc_core::refine::ExploreCfg;
use ccc_core::rg::check_reach_close;
use ccc_core::world::Loaded;
use ccc_fuzz::{check_rg_vs_exploration, gen_program, lower_prefixed, FuzzProgram};
use ccc_sync::lock::lock_spec;
use proptest::prelude::*;
use std::path::PathBuf;

fn lock_model() -> LockModel {
    infer_lock_model(&lock_spec("L").0)
}

fn explore_cfg() -> ExploreCfg {
    ExploreCfg {
        max_states: 20_000,
        ..ExploreCfg::default()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Two single-threaded modules that both write the same unprotected
/// global: each is self-stable alone, and exactly the cross-module
/// pair conflicts — the shape the pair-skipping link mutant must be
/// killed on.
fn conflicting_pair() -> (ClightModule, ClightModule) {
    let writer = || Function::simple(Stmt::Assign(Expr::var("s"), Expr::Const(1)));
    (
        ClightModule::new([("a", writer())]),
        ClightModule::new([("b", writer())]),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline soundness property, 64 random programs strong: a
    /// module whose certificate the trusted checker admits as
    /// self-stable is DRF under the exhaustive `check_drf_par`
    /// exploration. `check_rg_vs_exploration` fails on any checker
    /// rejection of a fresh certificate and on any static false
    /// negative; imprecision (static `MayInterfere`, dynamic DRF) is
    /// allowed and merely reported.
    #[test]
    fn admitted_certificates_have_no_false_negatives(
        seed in any::<u64>(),
        size in 4u32..12,
    ) {
        let p: FuzzProgram = gen_program(seed, size);
        let r = check_rg_vs_exploration(&p, &explore_cfg())
            .expect("static RG verdict must over-approximate exploration");
        // The two verdict sources must never contradict in the unsound
        // direction; sanity-check the report is self-consistent too.
        if r.certified_stable {
            prop_assert_ne!(r.explored_drf, Some(false));
        }
    }
}

/// Static self-stability coincides with the lockset analysis it is
/// derived from — the certificate is a faithful, serializable carrier
/// of that verdict, not a reinterpretation.
#[test]
fn stability_agrees_with_lockset_verdict() {
    let model = lock_model();
    for seed in 0..12u64 {
        for racy in [false, true] {
            let (m, _ge, entries) =
                gen_concurrent_client(seed, 2 + (seed % 2) as usize, &["s0", "s1"], racy);
            let cert = infer_rg_cert("client", &m, &entries, &model);
            let report = check_static_race(&m, &entries, &model);
            assert_eq!(
                cert.is_stable(),
                report.is_drf(),
                "seed {seed} racy {racy}: certificate and lockset disagree"
            );
            assert!(
                rg_cert_violation(&cert, &m, &entries, &model).is_none(),
                "seed {seed} racy {racy}: fresh certificate rejected"
            );
        }
    }
}

/// Mutant 1 — the certifier that silently drops the last action
/// summary. Its output must be rejected by the trusted checker on any
/// module with a non-empty guarantee: the dropped action is exactly an
/// uncovered access.
#[test]
fn dropped_summary_mutant_is_killed_by_the_checker() {
    let model = lock_model();
    let mut killed = 0;
    for seed in 0..6u64 {
        for racy in [false, true] {
            let (m, _ge, entries) = gen_concurrent_client(seed, 2, &["s0", "s1"], racy);
            let honest = infer_rg_cert("client", &m, &entries, &model);
            assert!(rg_cert_violation(&honest, &m, &entries, &model).is_none());
            if honest.guarantee.is_empty() {
                continue; // nothing to drop — the mutant is the identity here
            }
            let mutated = infer_rg_cert_mutated("client", &m, &entries, &model);
            let d = rg_cert_violation(&mutated, &m, &entries, &model)
                .expect("checker must reject a certificate missing an action summary");
            assert_eq!(d.pass, "RgCert");
            killed += 1;
        }
    }
    assert!(
        killed >= 6,
        "mutant only exercised {killed} times — battery too weak"
    );
}

/// Mutant 2 — the link check that skips one module pair. On a program
/// where exactly that pair conflicts, the mutant accepts while the
/// honest check rejects and the exploration of the composition finds
/// the race: the differential battery kills it.
#[test]
fn pair_skipping_link_mutant_is_killed_differentially() {
    let model = LockModel::default();
    let (ma, mb) = conflicting_pair();
    let ca = infer_rg_cert("A", &ma, &["a".to_string()], &model);
    let cb = infer_rg_cert("B", &mb, &["b".to_string()], &model);
    assert!(
        ca.is_stable() && cb.is_stable(),
        "each module alone is quiet"
    );
    let certs = [ca, cb];

    // Honest link check: the cross-module write/write conflict on `s`
    // is reported.
    let honest = rg_incompatibilities(&certs);
    assert!(
        !honest.is_empty(),
        "honest link check must reject the composition"
    );

    // The mutant skips exactly the conflicting pair and accepts.
    let mutated = rg_incompatibilities_mutated(&certs, (0, 1));
    assert!(
        mutated.is_empty(),
        "mutant fails to be unsound — test is vacuous"
    );

    // The kill: the composed program really does race, so the mutant's
    // verdict contradicts the exploration ground truth.
    let merged = ClightModule::new([
        (
            "a",
            Function::simple(Stmt::Assign(Expr::var("s"), Expr::Const(1))),
        ),
        (
            "b",
            Function::simple(Stmt::Assign(Expr::var("s"), Expr::Const(1))),
        ),
    ]);
    let mut ge = GlobalEnv::new();
    ge.define("s", Val::Int(0));
    let entries = vec!["a".to_string(), "b".to_string()];
    let loaded = Loaded::new(Prog::new(ClightLang, vec![(merged, ge)], entries)).expect("links");
    let drf = check_drf_par(&loaded, &explore_cfg()).expect("explores");
    assert!(
        !drf.is_drf(),
        "composition must race — otherwise the mutant survives"
    );
}

/// Scoped certificates imply the *dynamic* rely-guarantee check of
/// `ccc_core::rg`: a module whose guarantee names no `Top` region
/// stays reach-closed (every footprint inside its own free list plus
/// the shared globals) on every entry, even under environment
/// perturbation of the shared cells — the static counterpart of the
/// `HG`/`R` side conditions.
#[test]
fn scoped_certificates_imply_dynamic_reach_closure() {
    let private = Function {
        params: vec![],
        vars: vec!["l".into()],
        body: Stmt::seq([
            Stmt::Assign(Expr::var("l"), Expr::Const(7)),
            Stmt::Assign(Expr::var("s"), Expr::var("l")),
            Stmt::Return(None),
        ]),
    };
    let reader = Function::simple(Stmt::seq([
        Stmt::Set("t".into(), Expr::var("s")),
        Stmt::Return(Some(Expr::temp("t"))),
    ]));
    let m = ClightModule::new([("w", private), ("r", reader)]);
    let mut ge = GlobalEnv::new();
    ge.define("s", Val::Int(0));
    let entries = vec!["w".to_string(), "r".to_string()];

    let cert = infer_rg_cert("scoped", &m, &entries, &LockModel::default());
    assert!(
        cert.scoped,
        "guarantee should name only concrete regions: {:?}",
        cert.guarantee
    );

    let cfg = ExploreCfg::default();
    let bump: &ccc_core::rg::EnvPerturbation = &|mem, shared| {
        for &a in shared {
            let _ = mem.store(a, Val::Int(41));
        }
    };
    for (i, entry) in entries.iter().enumerate() {
        check_reach_close(
            &ClightLang,
            &m,
            &ge,
            entry,
            &ge.initial_memory(),
            FreeList::for_thread(i),
            &[bump],
            &cfg,
        )
        .unwrap_or_else(|e| panic!("scoped cert but `{entry}` not reach-closed: {e:?}"));
    }
}

/// Certificates survive the wire format byte-for-byte, and a broken
/// document is rejected with the byte offset routed through
/// [`ccc_analysis::Diagnostic`].
#[test]
fn certificate_json_round_trips_and_rejects_with_offset() {
    let model = lock_model();
    let (m, _ge, entries) = gen_concurrent_client(3, 3, &["s0", "s1"], false);
    let cert = infer_rg_cert("client", &m, &entries, &model);
    let json = rg_cert_to_json(&cert);
    assert!(!json.contains('\n'), "disk format is single-line");
    let back = rg_cert_from_json(&json).expect("round-trips");
    assert_eq!(back, cert);
    assert_eq!(rg_cert_to_json(&back), json, "serialization is canonical");

    let err = rg_cert_from_json(&json[..json.len() / 2]).expect_err("truncated document");
    assert_eq!(err.pass, "RgCert");
    assert!(
        err.offset.is_some(),
        "JSON error must carry its byte offset: {err}"
    );
}

/// The witness-cache integration end to end: miss on first sight, hit
/// afterwards (including across the disk tier), eviction of poisoned
/// entries with re-inference — the trusted checker, not the cache, is
/// the authority.
#[test]
fn cached_certificates_obey_the_trust_discipline() {
    let model = lock_model();
    let (m, _ge, entries) = gen_concurrent_client(7, 2, &["s0", "s1"], false);
    let hash = module_hash(&m);
    let dir = tmp_dir("rgcert-disk");
    let cache = CompileCache::new().with_disk(&dir).expect("disk tier");

    let (c1, o1) = rg_cert_cached("client", &m, &entries, &model, &cache);
    assert!(matches!(o1, CertOutcome::Miss));
    let (c2, o2) = rg_cert_cached("client", &m, &entries, &model, &cache);
    assert!(matches!(o2, CertOutcome::Hit));
    assert_eq!(c1, c2);
    let stats = cache.stats();
    assert_eq!((stats.cert_misses, stats.cert_hits), (1, 1));

    // Disk tier: a cold cache over the same directory serves the
    // certificate as a hit after the trusted re-check.
    let cold = CompileCache::new().with_disk(&dir).expect("disk tier");
    let (c3, o3) = rg_cert_cached("client", &m, &entries, &model, &cold);
    assert!(
        matches!(o3, CertOutcome::Hit),
        "disk entry not served: {o3:?}"
    );
    assert_eq!(c3, c1);

    // Poison 1: syntactically valid certificate for the *wrong module*
    // (the dropped-summary mutant's output) planted under the right
    // hash — rejected, evicted, re-inferred.
    let mutated = infer_rg_cert_mutated("client", &m, &entries, &model);
    if mutated != c1 {
        cache.cert_put(hash, &rg_cert_to_json(&mutated));
        let (c4, o4) = rg_cert_cached("client", &m, &entries, &model, &cache);
        assert!(
            matches!(o4, CertOutcome::Rejected(_)),
            "poisoned entry admitted: {o4:?}"
        );
        assert_eq!(c4, c1, "re-inference must restore the honest certificate");
    }

    // Poison 2: garbage bytes — the JSON parser rejects, the outcome
    // degrades to re-inference, never to acceptance.
    cache.cert_put(hash, "{\"module\": \"client\"");
    let (c5, o5) = rg_cert_cached("client", &m, &entries, &model, &cache);
    assert!(matches!(o5, CertOutcome::Rejected(_)));
    assert_eq!(c5, c1);
}

/// Editing 1 of N modules re-infers exactly one certificate; every
/// other module's certificate is served from the cache and re-checked,
/// and the link obligations (including `RgCompatible`) are
/// re-discharged without any whole-program exploration.
#[test]
fn editing_one_module_reinfers_exactly_one_certificate() {
    const UNITS: usize = 5;
    let units_of = |progs: &[FuzzProgram]| -> Vec<SepUnit> {
        progs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let (module, ge, entries) =
                    lower_prefixed(p, &format!("m{i}_"), 0x2000 + 0x100 * i as u64);
                SepUnit {
                    name: format!("m{i}"),
                    module,
                    ge,
                    entries,
                }
            })
            .collect()
    };
    let progs: Vec<FuzzProgram> = (0..=UNITS as u64).map(|i| gen_program(40 + i, 6)).collect();
    let base = units_of(&progs[..UNITS]);
    let mut edited_progs = progs[..UNITS].to_vec();
    edited_progs[2] = progs[UNITS].clone();
    let edited = units_of(&edited_progs);

    let (object_src, object_ge) = lock_spec("L");
    let object_tgt = id_trans(&object_src);
    let cache = CompileCache::new();

    let warm = build_program_certified(
        &base,
        &object_src,
        &object_tgt,
        &object_ge,
        &cache,
        &TransvalCertifier,
        RecheckDepth::Structural,
    )
    .expect("warm build");
    assert!(warm
        .cert_outcomes
        .iter()
        .all(|o| matches!(o, CertOutcome::Miss)));
    assert!(warm.link.ok(), "base program must link: {:?}", warm.link);

    cache.reset_stats();
    let incr = build_program_certified(
        &edited,
        &object_src,
        &object_tgt,
        &object_ge,
        &cache,
        &TransvalCertifier,
        RecheckDepth::Structural,
    )
    .expect("incremental build");
    let stats = cache.stats();
    assert_eq!(
        (stats.cert_misses, stats.cert_hits),
        (1, UNITS as u64 - 1),
        "editing 1 of {UNITS} must re-infer exactly one certificate"
    );
    for (i, o) in incr.cert_outcomes.iter().enumerate() {
        if i == 2 {
            assert!(
                matches!(o, CertOutcome::Miss),
                "edited module {i} served stale: {o:?}"
            );
        } else {
            assert!(
                matches!(o, CertOutcome::Hit),
                "unedited module {i} re-inferred: {o:?}"
            );
        }
    }
    let rg = incr
        .link
        .obligations
        .iter()
        .find(|o| o.kind == ccc_analysis::sepcomp::LinkObligationKind::RgCompatible)
        .expect("RgCompatible obligation present");
    assert!(rg.discharged, "{}", rg.note);
    assert_eq!(incr.certs.len(), UNITS);
}
