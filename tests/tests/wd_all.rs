//! Def. 1 well-definedness and determinism for *every* language
//! instance in the workspace — the paper proves wd for Clight, Cminor
//! and x86; this reproduction checks it for the whole IR ladder plus
//! CImp and x86-TSO (determinism is required of targets by the Flip
//! step; TSO is deliberately nondeterministic and thus only wd-checked).

use ccc_clight::gen::{gen_module, GenCfg};
use ccc_compiler::driver::compile_with_artifacts;
use ccc_core::refine::ExploreCfg;
use ccc_core::wd::{check_det, check_wd};

#[test]
fn every_ir_instance_is_well_defined_and_deterministic() {
    let (m, ge) = gen_module(17, &GenCfg::default());
    let arts = compile_with_artifacts(&m).expect("compiles");
    let cfg = ExploreCfg {
        fuel: 4000,
        ..Default::default()
    };
    let mem = ge.initial_memory();

    macro_rules! check {
        ($lang:expr, $module:expr, $name:literal) => {{
            check_wd(&$lang, $module, &ge, "f", &mem, &cfg)
                .unwrap_or_else(|e| panic!("wd({}) failed: {e}", $name));
            check_det(&$lang, $module, &ge, "f", &mem, &cfg)
                .unwrap_or_else(|e| panic!("det({}) failed: {e}", $name));
        }};
    }
    check!(ccc_clight::ClightLang, &arts.clight, "Clight");
    check!(ccc_compiler::cminor::CMINOR, &arts.cminor, "Cminor");
    check!(
        ccc_compiler::cminorsel::CMINORSEL,
        &arts.cminorsel,
        "CminorSel"
    );
    check!(ccc_compiler::rtl::RtlLang, &arts.rtl_renumber, "RTL");
    check!(ccc_compiler::ltl::LtlLang, &arts.ltl_tunneled, "LTL");
    check!(
        ccc_compiler::linear::LinearLang,
        &arts.linear_clean,
        "Linear"
    );
    check!(ccc_compiler::mach::MachLang, &arts.mach, "Mach");
    check!(ccc_machine::X86Sc, &arts.asm, "x86-SC");
}

#[test]
fn cimp_object_code_is_well_defined() {
    // The lock specification's entries (γ_lock, Fig. 10a).
    let (spec, ge) = ccc_sync::lock::lock_spec("L");
    let cfg = ExploreCfg::default();
    let mem = ge.initial_memory();
    for entry in ["lock", "unlock"] {
        check_wd(&ccc_cimp::CImpLang, &spec, &ge, entry, &mem, &cfg)
            .unwrap_or_else(|e| panic!("wd(CImp {entry}) failed: {e}"));
        check_det(&ccc_cimp::CImpLang, &spec, &ge, entry, &mem, &cfg)
            .unwrap_or_else(|e| panic!("det(CImp {entry}) failed: {e}"));
    }
}

#[test]
fn tso_lock_implementation_is_well_defined() {
    // π_lock under x86-TSO (Fig. 10b): wd holds even though the
    // semantics is nondeterministic (buffer flushes).
    let (imp, ge) = ccc_sync::lock::lock_impl("L");
    let cfg = ExploreCfg {
        fuel: 120,
        ..Default::default()
    };
    let mem = ge.initial_memory();
    for entry in ["lock", "unlock"] {
        check_wd(&ccc_machine::X86Tso, &imp, &ge, entry, &mem, &cfg)
            .unwrap_or_else(|e| panic!("wd(x86-TSO {entry}) failed: {e}"));
    }
    // And determinism rightly FAILS once a store sits in the buffer.
    assert!(
        check_det(&ccc_machine::X86Tso, &imp, &ge, "unlock", &mem, &cfg).is_err(),
        "x86-TSO must be nondeterministic"
    );
}
