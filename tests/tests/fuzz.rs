//! Integration gates for the differential fuzzer.
//!
//! * The persisted regression corpus (`tests/corpus/*.txt`) replays
//!   deterministically: every mutant witness still kills its mutant
//!   while passing the clean pipeline, and every `none` entry stays
//!   fixed.
//! * A scoreboard slice over the shared input stream proves the
//!   mutation-kill machinery end to end (the full 22-mutant board runs
//!   in release mode via `ccc-bench --bin fuzz_throughput`).

use ccc_fuzz::{CorpusEntry, OracleCfg};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn regression_corpus_replays() {
    let dir = corpus_dir();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|d| d.path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 22,
        "corpus incomplete: {} entries (need one witness per mutant)",
        entries.len()
    );
    let cfg = OracleCfg::default();
    let mut seen = std::collections::BTreeSet::new();
    for path in &entries {
        let text = std::fs::read_to_string(path).expect("readable corpus file");
        let entry =
            CorpusEntry::from_text(&text).unwrap_or_else(|e| panic!("{}: {e:?}", path.display()));
        entry
            .replay(&cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if let Some(m) = entry.mutant {
            seen.insert(format!("{m:?}"));
        }
    }
    assert_eq!(
        seen.len(),
        22,
        "corpus covers {}/22 mutants: {seen:?}",
        seen.len()
    );
}

#[test]
fn scoreboard_kills_a_frontend_and_a_backend_mutant() {
    // One early-pipeline and one late-pipeline mutant through the real
    // kill loop (budget small: their witnesses sit early in the stream).
    use ccc_compiler::Mutant;
    use ccc_fuzz::kill_one;

    let cfg = OracleCfg::default();
    for m in [Mutant::Cminorgen, Mutant::Asmgen] {
        let score = kill_one(m, 60, &cfg);
        assert!(score.killed(), "{m} survived 60 inputs");
    }
}
