//! Differential validation of the static TSO-robustness analysis
//! (`ccc-analysis::tso_robust`) against the executable `X86Sc`/`X86Tso`
//! machines.
//!
//! Soundness obligations, checked on the fixed litmus corpus and on a
//! battery of proptest-generated multi-threaded programs:
//!
//! * `Robust` ⟹ the SC and TSO trace sets are equal;
//! * every `MayViolateSC` witness names a genuinely reorderable
//!   store→load pair of the program text;
//! * fence insertion yields a robust program with SC-equal TSO
//!   behaviour;
//! * fence redundancy elimination never changes either trace set.

use ccc_analysis::tso_robust::{analyze, eliminate_redundant_fences, insert_fences};
use ccc_core::lang::Prog;
use ccc_core::mem::{GlobalEnv, Val};
use ccc_core::refine::{collect_traces, trace_equiv, ExploreCfg, Preemptive, TraceSet};
use ccc_core::world::Loaded;
use ccc_machine::{litmus, AsmFunc, AsmModule, Instr, MemArg, Operand, Reg, X86Sc, X86Tso};
use proptest::prelude::*;

fn cfg() -> ExploreCfg {
    ExploreCfg {
        fuel: 200,
        max_states: 4_000_000,
        ..Default::default()
    }
}

fn sc_traces(module: &AsmModule, ge: &GlobalEnv, entries: &[String], cfg: &ExploreCfg) -> TraceSet {
    let p = Loaded::new(Prog::new(
        X86Sc,
        vec![(module.clone(), ge.clone())],
        entries.to_vec(),
    ))
    .expect("sc links");
    let ts = collect_traces(&Preemptive(&p), cfg).expect("sc traces");
    assert!(!ts.truncated, "SC exploration truncated");
    ts
}

fn tso_traces(
    module: &AsmModule,
    ge: &GlobalEnv,
    entries: &[String],
    cfg: &ExploreCfg,
) -> TraceSet {
    let p = Loaded::new(Prog::new(
        X86Tso,
        vec![(module.clone(), ge.clone())],
        entries.to_vec(),
    ))
    .expect("tso links");
    let ts = collect_traces(&Preemptive(&p), cfg).expect("tso traces");
    assert!(!ts.truncated, "TSO exploration truncated");
    ts
}

/// The static verdict on the litmus corpus is exactly the dynamic
/// TSO-observability, and the soundness direction holds at trace-set
/// level: `Robust` programs have SC-equal TSO behaviour.
#[test]
fn litmus_static_verdicts_are_dynamically_sound_and_exact() {
    let cfg = cfg();
    for l in litmus::corpus() {
        let report = analyze(&l.module, &l.entries);
        assert_eq!(
            report.is_robust(),
            !l.tso_observable,
            "{}: static verdict vs dynamic observability\n{report}",
            l.name
        );
        let sc = sc_traces(&l.module, &l.ge, &l.entries, &cfg);
        let tso = tso_traces(&l.module, &l.ge, &l.entries, &cfg);
        if report.is_robust() {
            assert!(trace_equiv(&sc, &tso), "{}: Robust but TSO ≠ SC", l.name);
        } else {
            assert!(
                !trace_equiv(&sc, &tso),
                "{}: flagged but dynamically SC-equal (verdict imprecise on corpus)",
                l.name
            );
        }
    }
}

/// Every witness on the corpus names a real store and a real load of
/// the program text, in the same thread, with distinct locations.
#[test]
fn litmus_witnesses_name_real_reorderable_pairs() {
    for l in litmus::corpus() {
        let report = analyze(&l.module, &l.entries);
        for w in report.witnesses() {
            let s = &w.pair.store;
            let ld = &w.pair.load;
            assert_eq!(s.thread, ld.thread, "{}: pair spans threads", l.name);
            assert!(
                matches!(l.module.funcs[&s.func].code[s.idx], Instr::Store(..)),
                "{}: witness store {s} is not a store instruction",
                l.name
            );
            assert!(
                matches!(l.module.funcs[&ld.func].code[ld.idx], Instr::Load(..)),
                "{}: witness load {ld} is not a load instruction",
                l.name
            );
            assert!(
                !s.loc.must_equal(&ld.loc),
                "{}: same-location pair is not reorderable (forwarding)",
                l.name
            );
        }
    }
}

/// Fence insertion makes every corpus program robust and — dynamically —
/// SC-equal, while leaving the SC behaviour itself unchanged.
#[test]
fn litmus_fence_insertion_restores_sc_equality() {
    let cfg = cfg();
    for l in litmus::corpus() {
        let fenced = insert_fences(&l.module, &l.entries);
        assert!(fenced.complete, "{}: uncoverable pair", l.name);
        assert!(
            analyze(&fenced.module, &l.entries).is_robust(),
            "{}: still not robust after fencing",
            l.name
        );
        if fenced.inserted.is_empty() {
            continue; // already robust, module unchanged
        }
        let sc = sc_traces(&l.module, &l.ge, &l.entries, &cfg);
        let sc_f = sc_traces(&fenced.module, &l.ge, &l.entries, &cfg);
        let tso_f = tso_traces(&fenced.module, &l.ge, &l.entries, &cfg);
        assert!(
            trace_equiv(&sc_f, &tso_f),
            "{}: fenced program still TSO-distinguishable",
            l.name
        );
        assert!(
            trace_equiv(&sc, &sc_f),
            "{}: fences changed the SC behaviour",
            l.name
        );
    }
}

/// On the corpus no fence is redundant (SB+mfence's fence separates a
/// store from a load and is load-bearing), and the fences the inserter
/// adds are never removable by the eliminator.
#[test]
fn litmus_fence_elimination_is_conservative() {
    for l in litmus::corpus() {
        let r = eliminate_redundant_fences(&l.module, &l.entries);
        assert!(r.removed.is_empty(), "{}: removed {:?}", l.name, r.removed);
        let fenced = insert_fences(&l.module, &l.entries);
        let r = eliminate_redundant_fences(&fenced.module, &l.entries);
        assert!(
            r.removed.is_empty(),
            "{}: inserter/eliminator disagree: {:?}",
            l.name,
            r.removed
        );
    }
}

/// A hand-built program with provably-dead fences: elimination strips
/// exactly those and preserves both trace sets on the nose.
#[test]
fn redundant_fence_elimination_preserves_trace_sets() {
    let mk = |mine: &str, theirs: &str| AsmFunc {
        code: vec![
            Instr::Mfence, // entry: buffer empty — dead
            Instr::Store(MemArg::Global(mine.into(), 0), Operand::Imm(1)),
            Instr::Mfence, // drains the store — load-bearing
            Instr::Mfence, // immediately after a drain — dead
            Instr::Load(Reg::Ecx, MemArg::Global(theirs.into(), 0)),
            Instr::Print(Reg::Ecx),
            Instr::Mov(Reg::Eax, Operand::Imm(0)),
            Instr::Ret,
        ],
        frame_slots: 0,
        arity: 0,
    };
    let m = AsmModule::new([("t0", mk("x", "y")), ("t1", mk("y", "x"))]);
    let mut ge = GlobalEnv::new();
    ge.define("x", Val::Int(0));
    ge.define("y", Val::Int(0));
    let entries = vec!["t0".to_string(), "t1".to_string()];

    let r = eliminate_redundant_fences(&m, &entries);
    assert_eq!(r.removed.len(), 4, "{:?}", r.removed);
    for f in r.module.funcs.values() {
        assert_eq!(
            f.code.iter().filter(|i| matches!(i, Instr::Mfence)).count(),
            1
        );
    }

    let cfg = cfg();
    let sc = sc_traces(&m, &ge, &entries, &cfg);
    let sc_e = sc_traces(&r.module, &ge, &entries, &cfg);
    let tso = tso_traces(&m, &ge, &entries, &cfg);
    let tso_e = tso_traces(&r.module, &ge, &entries, &cfg);
    assert!(trace_equiv(&sc, &sc_e), "SC trace set changed");
    assert!(trace_equiv(&tso, &tso_e), "TSO trace set changed");
    // And the surviving fence keeps the program SC-equal (this is SB
    // with fences): removing it would reintroduce the weak outcome.
    assert!(trace_equiv(&sc_e, &tso_e));
}

// ---------------------------------------------------------------------
// Generated battery: random loop-free multi-threaded programs through
// the full static/dynamic oracle.
// ---------------------------------------------------------------------

use ccc_fuzz::tsogen::{arb_thread, emit, GLOBALS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full oracle on generated programs: soundness of `Robust`,
    /// fence insertion restoring SC-equality without disturbing SC
    /// behaviour, and elimination changing nothing.
    #[test]
    fn generated_programs_respect_the_robustness_oracle(
        t0 in arb_thread(),
        t1 in arb_thread(),
    ) {
        let m = AsmModule::new([("t0", emit(&t0)), ("t1", emit(&t1))]);
        let mut ge = GlobalEnv::new();
        for g in GLOBALS {
            ge.define(g, Val::Int(0));
        }
        let entries = vec!["t0".to_string(), "t1".to_string()];
        let cfg = cfg();

        let sc = sc_traces(&m, &ge, &entries, &cfg);
        let tso = tso_traces(&m, &ge, &entries, &cfg);
        let report = analyze(&m, &entries);
        if report.is_robust() {
            // The acceptance criterion: no program judged Robust may
            // exhibit a TSO-only behaviour.
            prop_assert!(trace_equiv(&sc, &tso), "Robust but TSO ≠ SC:\n{:?}", m);
        }

        // Fence insertion: robust afterwards, TSO ≈ SC afterwards, SC
        // behaviour undisturbed.
        let fenced = insert_fences(&m, &entries);
        prop_assert!(fenced.complete);
        prop_assert!(analyze(&fenced.module, &entries).is_robust());
        let (sc_f, tso_f) = if fenced.inserted.is_empty() {
            (sc.clone(), tso.clone())
        } else {
            (
                sc_traces(&fenced.module, &ge, &entries, &cfg),
                tso_traces(&fenced.module, &ge, &entries, &cfg),
            )
        };
        prop_assert!(trace_equiv(&sc_f, &tso_f), "fenced program not SC-equal:\n{:?}", fenced.module);
        prop_assert!(trace_equiv(&sc, &sc_f), "fences changed SC behaviour");

        // Elimination on the fenced module: trace sets must not move.
        let elim = eliminate_redundant_fences(&fenced.module, &entries);
        if !elim.removed.is_empty() {
            let sc_e = sc_traces(&elim.module, &ge, &entries, &cfg);
            let tso_e = tso_traces(&elim.module, &ge, &entries, &cfg);
            prop_assert!(trace_equiv(&sc_f, &sc_e), "elimination changed SC traces");
            prop_assert!(trace_equiv(&tso_f, &tso_e), "elimination changed TSO traces");
        }
    }
}
