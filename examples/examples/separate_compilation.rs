//! Separate compilation of interacting modules — the paper's example
//! (2.1), adapted to the framework's no-stack-escape discipline
//! (footnote 6: pointers to stack variables may not cross modules, so
//! `b` is a global here):
//!
//! ```c
//! // Module S1                          // Module S2
//! extern void g(long *x);               void g(long *x) { *x = 3; }
//! long b = 0;
//! long f() {
//!     long a = 0;
//!     g(&b);
//!     return a + b;                     // must be 3, not 0!
//! }
//! ```
//!
//! The two modules are compiled **independently** and linked at the
//! machine level. A compiler that assumed `b` is still 0 after the
//! external call would be wrong — the compositional simulation forbids
//! optimizations across external calls (§2.2).
//!
//! Run with: `cargo run -p ccc-examples --example separate_compilation`

use ccc_clight::ast::{Expr as E, Function, Stmt};
use ccc_clight::{ClightLang, ClightModule};
use ccc_compiler::driver::compile;
use ccc_core::lang::{ModuleDecl, Prog, Sum, SumLang};
use ccc_core::mem::{GlobalEnv, Val};
use ccc_core::refine::{collect_traces, trace_equiv, ExploreCfg, Preemptive};
use ccc_core::world::{run_sequential, Loaded, RunEnd};
use ccc_machine::X86Sc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Example (2.1): cross-module external calls ==\n");

    // Module S1: f() calls the external g(&b) and returns a + b.
    let mut ge1 = GlobalEnv::new();
    let b_addr = ge1.define("b", Val::Int(0));
    let f = Function {
        params: vec![],
        vars: vec!["a".into()],
        body: Stmt::seq([
            Stmt::Assign(E::var("a"), E::Const(0)),
            Stmt::Call(None, "g".into(), vec![E::Addrof(Box::new(E::var("b")))]),
            Stmt::Set("r".into(), E::add(E::var("a"), E::var("b"))),
            Stmt::Print(E::temp("r")),
            Stmt::Return(Some(E::temp("r"))),
        ]),
    };
    let s1 = ClightModule::new([("f", f)]);

    // Module S2: g(x) writes *x = 3.
    let g = Function {
        params: vec!["x".into()],
        vars: vec![],
        body: Stmt::seq([
            Stmt::Assign(E::Deref(Box::new(E::temp("x"))), E::Const(3)),
            Stmt::Return(None),
        ]),
    };
    let s2 = ClightModule::new([("g", g)]);

    // Source program: the two Clight modules linked by the semantics.
    let src = Loaded::new(Prog::new(
        ClightLang,
        vec![(s1.clone(), ge1.clone()), (s2.clone(), GlobalEnv::new())],
        ["f"],
    ))?;
    let r = run_sequential(&src, 10_000)?;
    assert_eq!(r.end, RunEnd::Done);
    println!(
        "Source run prints: {:?} (b = 3 flowed back through &b)",
        r.events
    );

    // Compile each module INDEPENDENTLY.
    let c1 = compile(&s1)?;
    let c2 = compile(&s2)?;
    println!("\nModule S1 compiled separately:\n{c1}");
    println!("Module S2 compiled separately:\n{c2}");

    // Link at the target and compare whole-program behaviour.
    let tgt = Loaded::new(Prog::new(
        X86Sc,
        vec![(c1.clone(), ge1.clone()), (c2, GlobalEnv::new())],
        ["f"],
    ))?;
    let rt = run_sequential(&tgt, 100_000)?;
    println!("Target run prints: {:?}", rt.events);
    assert_eq!(r.events, rt.events);

    let cfg = ExploreCfg::default();
    let st = collect_traces(&Preemptive(&src), &cfg)?;
    let tt = collect_traces(&Preemptive(&tgt), &cfg)?;
    assert!(
        trace_equiv(&st, &tt),
        "separate compilation preserved semantics"
    );
    println!("\nTrace sets coincide: separate compilation is semantics-preserving.");

    // Mixed-language linking also works: compiled S1 with *source* S2.
    type Mixed = SumLang<X86Sc, ClightLang>;
    let mixed: Prog<Mixed> = Prog {
        lang: SumLang(X86Sc, ClightLang),
        modules: vec![
            ModuleDecl {
                code: Sum::L(c1),
                ge: ge1,
            },
            ModuleDecl {
                code: Sum::R(s2),
                ge: GlobalEnv::new(),
            },
        ],
        entries: vec!["f".into()],
    };
    let mixed = Loaded::new(mixed)?;
    let rm = run_sequential(&mixed, 100_000)?;
    assert_eq!(r.events, rm.events);
    println!(
        "Cross-language linking (compiled S1 + interpreted S2) agrees too: {:?}",
        rm.events
    );
    let _ = b_addr;
    Ok(())
}
