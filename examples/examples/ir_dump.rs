//! Dumps every intermediate representation of one compilation — the
//! pipeline of Fig. 11 made visible. Useful for seeing what each pass
//! (including the Constprop extension) actually does to the code, and
//! what the static footprint analysis infers about it.
//!
//! Run with: `cargo run -p ccc-examples --example ir_dump`
//!
//! Pass `--validate=static|diff|both` to additionally run the
//! translation validators over this compilation and print a per-pass
//! summary: `static` is the symbolic validator of
//! `ccc_analysis::transval` (with differential fallback for the passes
//! it does not cover), `diff` is the co-execution simulation check of
//! `ccc_compiler::verif`, and `both` runs the two and reports any
//! disagreement.

use ccc_analysis::{infer_clight, infer_rtl, validate_with_mode, Validation};
use ccc_clight::ast::{Binop, Expr as E, Function, Stmt};
use ccc_clight::ClightModule;
use ccc_compiler::constprop::constprop;
use ccc_compiler::driver::compile_with_artifacts;
use ccc_compiler::pretty::{dump_artifacts, rtl_module};
use ccc_core::mem::GlobalEnv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut validate: Option<Validation> = None;
    for arg in std::env::args().skip(1) {
        match arg.strip_prefix("--validate=").map(Validation::parse) {
            Some(Some(mode)) => validate = Some(mode),
            _ => {
                eprintln!("usage: ir_dump [--validate=static|diff|both]");
                std::process::exit(2);
            }
        }
    }
    // sum(n) — a small function with a loop, a local, a call and a print.
    let sum = Function {
        params: vec!["n".into()],
        vars: vec!["acc".into()],
        body: Stmt::seq([
            Stmt::Assign(E::var("acc"), E::Const(0)),
            Stmt::while_loop(
                E::bin(Binop::Lt, E::Const(0), E::temp("n")),
                Stmt::seq([
                    Stmt::Assign(E::var("acc"), E::add(E::var("acc"), E::temp("n"))),
                    Stmt::Set("n".into(), E::bin(Binop::Sub, E::temp("n"), E::Const(1))),
                ]),
            ),
            Stmt::Return(Some(E::var("acc"))),
        ]),
    };
    let main_fn = Function::simple(Stmt::seq([
        Stmt::Call(
            Some("t".into()),
            "sum".into(),
            vec![E::bin(Binop::Mul, E::Const(2), E::Const(5))],
        ),
        Stmt::Print(E::temp("t")),
        Stmt::Return(Some(E::temp("t"))),
    ]));
    let m = ClightModule::new([("main", main_fn), ("sum", sum)]);

    let arts = compile_with_artifacts(&m)?;
    println!("{}", dump_artifacts(&arts));

    println!("=== RTL after the Constprop extension ===");
    println!("{}", rtl_module(&constprop(&arts.rtl_renumber)));
    println!("(note `2 * 5` folded to 10 before reaching the call)");

    println!("=== Static footprints (ccc-analysis) ===\n");
    let cs = infer_clight(&m);
    println!("Clight summaries (regions each function may read/write):");
    for (name, fp) in &cs.funcs {
        println!("  {name}: {fp}");
    }
    let rs = infer_rtl(&arts.rtl);
    println!("\nRTL, with the inferred footprint next to each memory-touching node:");
    for (name, r) in &rs.funcs {
        println!("  {name}:");
        for (n, instr) in &arts.rtl.funcs[name].code {
            let fp = &r.per_node[n];
            if fp.is_emp() {
                println!("    {n:>3}: {instr:?}");
            } else {
                println!("    {n:>3}: {instr:?}   ; {fp}");
            }
        }
        println!("    summary: {}", r.summary);
    }
    println!("\n(`stack` is the thread-private area; a dynamic run can only touch");
    println!("addresses inside these regions — checked for every corpus program.)");

    if let Some(mode) = validate {
        println!("\n=== Translation validation (--validate={mode:?}) ===\n");
        let ge = GlobalEnv::new();
        let report = validate_with_mode(&arts, &ge, "main", mode);
        if let Some(w) = &report.witness {
            println!("Symbolic validator (per-pass SimWitness):");
            for sw in &w.witnesses {
                println!("  {sw}");
            }
        }
        if let Some(pv) = &report.differential {
            println!("Differential co-execution (ccc_compiler::verif):");
            for v in pv {
                println!(
                    "  pass {}: {}",
                    v.pass,
                    if v.ok() { "simulated OK" } else { "FAILED" }
                );
            }
        }
        if report.disagreements.is_empty() {
            println!(
                "\nverdict: {}",
                if report.ok() { "accepted" } else { "REJECTED" }
            );
        } else {
            println!("\nstatic/differential DISAGREEMENTS:");
            for d in &report.disagreements {
                println!("  {d}");
            }
        }
    }
    Ok(())
}
