//! Dumps every intermediate representation of one compilation — the
//! pipeline of Fig. 11 made visible. Useful for seeing what each pass
//! (including the Constprop extension) actually does to the code, and
//! what the static footprint analysis infers about it.
//!
//! Run with: `cargo run -p ccc-examples --example ir_dump`
//!
//! Pass `--validate=static|diff|both` to additionally run the
//! translation validators over this compilation and print a per-stage
//! summary table: `static` is the symbolic validator of
//! `ccc_analysis::transval` (which covers every stage — nothing falls
//! back), `diff` is the co-execution simulation check of
//! `ccc_compiler::verif`, and `both` runs the two side by side and
//! reports any disagreement. Each stage's row shows its verdict(s)
//! and the wall-clock each checker spent on it.

use ccc_analysis::transval::{backend, frontend, passes as tv, Verdict};
use ccc_analysis::{infer_clight, infer_rtl, validate_with_mode, SimWitness, Validation};
use ccc_clight::ast::{Binop, Expr as E, Function, Stmt};
use ccc_clight::ClightModule;
use ccc_compiler::constprop::constprop;
use ccc_compiler::driver::{compile_with_artifacts, CompilationArtifacts};
use ccc_compiler::pretty::{dump_artifacts, rtl_module};
use ccc_compiler::verif::verify_passes_filtered;
use ccc_core::mem::GlobalEnv;
use std::time::Instant;

/// Every pipeline stage the validators judge, in order, with its
/// symbolic validator entry point. The Constprop stage is skipped when
/// the plain pipeline did not produce its artifact.
type StageValidator = fn(&CompilationArtifacts) -> Option<SimWitness>;

const STAGES: [(&str, StageValidator); 12] = [
    ("Cshmgen/Cminorgen", |a| {
        Some(frontend::validate_cminorgen(&a.clight, &a.cminor))
    }),
    ("Selection", |a| {
        Some(frontend::validate_selection(&a.cminor, &a.cminorsel))
    }),
    ("RTLgen", |a| {
        Some(backend::validate_rtlgen(&a.cminorsel, &a.rtl))
    }),
    ("Tailcall", |a| {
        Some(tv::validate_tailcall(&a.rtl, &a.rtl_tailcall))
    }),
    ("Renumber", |a| {
        Some(tv::validate_renumber(&a.rtl_tailcall, &a.rtl_renumber))
    }),
    ("Constprop", |a| {
        a.rtl_constprop
            .as_ref()
            .map(|cp| tv::validate_constprop(&a.rtl_renumber, cp))
    }),
    ("Allocation", |a| {
        Some(tv::validate_allocation(
            a.rtl_constprop.as_ref().unwrap_or(&a.rtl_renumber),
            &a.ltl,
        ))
    }),
    ("Tunneling", |a| {
        Some(tv::validate_tunneling(&a.ltl, &a.ltl_tunneled))
    }),
    ("Linearize", |a| {
        Some(tv::validate_linearize(&a.ltl_tunneled, &a.linear))
    }),
    ("CleanupLabels", |a| {
        Some(tv::validate_cleanup(&a.linear, &a.linear_clean))
    }),
    ("Stacking", |a| {
        Some(backend::validate_stacking(&a.linear_clean, &a.mach))
    }),
    ("Asmgen", |a| {
        Some(backend::validate_asmgen(&a.mach, &a.asm))
    }),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut validate: Option<Validation> = None;
    for arg in std::env::args().skip(1) {
        match arg.strip_prefix("--validate=").map(Validation::parse) {
            Some(Some(mode)) => validate = Some(mode),
            _ => {
                eprintln!("usage: ir_dump [--validate=static|diff|both]");
                std::process::exit(2);
            }
        }
    }
    // sum(n) — a small function with a loop, a local, a call and a print.
    let sum = Function {
        params: vec!["n".into()],
        vars: vec!["acc".into()],
        body: Stmt::seq([
            Stmt::Assign(E::var("acc"), E::Const(0)),
            Stmt::while_loop(
                E::bin(Binop::Lt, E::Const(0), E::temp("n")),
                Stmt::seq([
                    Stmt::Assign(E::var("acc"), E::add(E::var("acc"), E::temp("n"))),
                    Stmt::Set("n".into(), E::bin(Binop::Sub, E::temp("n"), E::Const(1))),
                ]),
            ),
            Stmt::Return(Some(E::var("acc"))),
        ]),
    };
    let main_fn = Function::simple(Stmt::seq([
        Stmt::Call(
            Some("t".into()),
            "sum".into(),
            vec![E::bin(Binop::Mul, E::Const(2), E::Const(5))],
        ),
        Stmt::Print(E::temp("t")),
        Stmt::Return(Some(E::temp("t"))),
    ]));
    let m = ClightModule::new([("main", main_fn), ("sum", sum)]);

    let arts = compile_with_artifacts(&m)?;
    println!("{}", dump_artifacts(&arts));

    println!("=== RTL after the Constprop extension ===");
    println!("{}", rtl_module(&constprop(&arts.rtl_renumber)));
    println!("(note `2 * 5` folded to 10 before reaching the call)");

    println!("=== Static footprints (ccc-analysis) ===\n");
    let cs = infer_clight(&m);
    println!("Clight summaries (regions each function may read/write):");
    for (name, fp) in &cs.funcs {
        println!("  {name}: {fp}");
    }
    let rs = infer_rtl(&arts.rtl);
    println!("\nRTL, with the inferred footprint next to each memory-touching node:");
    for (name, r) in &rs.funcs {
        println!("  {name}:");
        for (n, instr) in &arts.rtl.funcs[name].code {
            let fp = &r.per_node[n];
            if fp.is_emp() {
                println!("    {n:>3}: {instr:?}");
            } else {
                println!("    {n:>3}: {instr:?}   ; {fp}");
            }
        }
        println!("    summary: {}", r.summary);
    }
    println!("\n(`stack` is the thread-private area; a dynamic run can only touch");
    println!("addresses inside these regions — checked for every corpus program.)");

    if let Some(mode) = validate {
        println!("\n=== Translation validation (--validate={mode:?}) ===\n");
        let ge = GlobalEnv::new();

        // Per-stage summary: each checker's verdict and the wall-clock
        // it spent on that stage alone.
        let run_static = mode != Validation::Differential;
        let run_diff = mode != Validation::Static;
        println!("  {:<17} {:>22} {:>26}", "stage", "static", "differential");
        for (stage, validate_stage) in STAGES {
            let static_cell = if run_static {
                let t = Instant::now();
                let w = validate_stage(&arts);
                let dt = t.elapsed();
                match w {
                    Some(w) => {
                        let verdict = match w.verdict {
                            Verdict::Validated => "validated",
                            Verdict::Rejected => "REJECTED",
                            Verdict::Unsupported => "unsupported",
                        };
                        format!("{verdict} {:>8.3} ms", dt.as_secs_f64() * 1000.0)
                    }
                    None => "(stage not run)".to_string(),
                }
            } else {
                "—".to_string()
            };
            let diff_cell = if run_diff && (stage != "Constprop" || arts.rtl_constprop.is_some()) {
                let t = Instant::now();
                let pv = verify_passes_filtered(&arts, &ge, "main", &|p| p == stage);
                let dt = t.elapsed();
                let ok = pv.ok();
                format!(
                    "{} {:>8.3} ms",
                    if ok { "simulated OK" } else { "FAILED" },
                    dt.as_secs_f64() * 1000.0
                )
            } else {
                "—".to_string()
            };
            println!("  {stage:<17} {static_cell:>22} {diff_cell:>26}");
        }

        let report = validate_with_mode(&arts, &ge, "main", mode);
        if let Some(w) = &report.witness {
            println!("\nSymbolic validator (per-pass SimWitness):");
            for sw in &w.witnesses {
                println!("  {sw}");
            }
            if mode == Validation::Static {
                println!(
                    "  (differential fallback: {})",
                    if report.differential.is_none() {
                        "none — every stage judged statically".to_string()
                    } else {
                        format!("ran for {:?}", w.unsupported_passes())
                    }
                );
            }
        }
        if report.disagreements.is_empty() {
            println!(
                "\nverdict: {}",
                if report.ok() { "accepted" } else { "REJECTED" }
            );
        } else {
            println!("\nstatic/differential DISAGREEMENTS:");
            for d in &report.disagreements {
                println!("  {d}");
            }
        }

        // The module's rely-guarantee certificate — the per-module
        // interference summary the link-time RgCompatible obligation
        // consumes (ccc_analysis::rg_cert). A sequential module like
        // this one publishes an empty guarantee: it touches only its
        // own stack, so any environment is a valid rely.
        let entries = vec!["main".to_string()];
        let model = ccc_analysis::LockModel::default();
        let cert = ccc_analysis::infer_rg_cert("ir_dump", &m, &entries, &model);
        let admitted = ccc_analysis::rg_cert_violation(&cert, &m, &entries, &model).is_none();
        println!("\nRG certificate (static interference summary):");
        println!(
            "  guarantee: {} action(s)   rely: {} clause(s)   self-stable: {}   scoped: {}",
            cert.guarantee.len(),
            cert.rely.len(),
            cert.self_stable,
            cert.scoped
        );
        for a in &cert.guarantee {
            println!(
                "    {} {} locks={:?} atomic={}",
                if a.write { "write" } else { "read" },
                a.region,
                a.locks,
                a.atomic
            );
        }
        println!(
            "  verdict: {}   trusted checker: {}",
            if cert.is_stable() {
                "Stable"
            } else {
                "MayInterfere"
            },
            if admitted { "admitted" } else { "REJECTED" }
        );
    }
    Ok(())
}
