//! The TTAS spin lock of Fig. 10 under x86-TSO (§7.3 of the paper):
//!
//! 1. shows the store-buffering litmus test exhibiting genuinely relaxed
//!    (non-SC) behaviour on our TSO machine;
//! 2. shows the racy lock implementation `π_lock` nevertheless refining
//!    its atomic CImp specification `γ_lock` for a DRF client — the
//!    strengthened DRF-guarantee theorem (Lem. 16);
//! 3. shows what goes wrong without confinement (the same litmus as a
//!    "client", where the guarantee's premises fail).
//!
//! Run with: `cargo run -p ccc-examples --example spinlock_tso`

use ccc_core::lang::{Event, Prog};
use ccc_core::mem::{GlobalEnv, Val};
use ccc_core::refine::{collect_traces, ExploreCfg, Preemptive, Terminal};
use ccc_core::world::Loaded;
use ccc_machine::{AsmFunc, AsmModule, Instr, MemArg, Operand, Reg, X86Sc, X86Tso};
use ccc_sync::drf_guarantee::{check_drf_guarantee, SyncObject};
use ccc_sync::lock::{lock_impl, lock_spec};

fn sb_clients() -> (AsmModule, GlobalEnv, Vec<String>) {
    let mk = |mine: &str, theirs: &str| AsmFunc {
        code: vec![
            Instr::Store(MemArg::Global(mine.into(), 0), Operand::Imm(1)),
            Instr::Load(Reg::Ecx, MemArg::Global(theirs.into(), 0)),
            Instr::Print(Reg::Ecx),
            Instr::Mov(Reg::Eax, Operand::Imm(0)),
            Instr::Ret,
        ],
        frame_slots: 0,
        arity: 0,
    };
    let mut ge = GlobalEnv::new();
    ge.define("sbx", Val::Int(0));
    ge.define("sby", Val::Int(0));
    (
        AsmModule::new([("t1", mk("sbx", "sby")), ("t2", mk("sby", "sbx"))]),
        ge,
        vec!["t1".into(), "t2".into()],
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ExploreCfg {
        fuel: 300,
        max_states: 3_000_000,
        ..Default::default()
    };

    // 1. The SB litmus: TSO is really relaxed.
    println!("== 1. Store-buffering litmus (x := 1; read y ∥ y := 1; read x) ==");
    let (sb, sb_ge, sb_entries) = sb_clients();
    let zero_zero = |ts: &ccc_core::refine::TraceSet| {
        ts.traces
            .iter()
            .any(|t| t.end == Terminal::Done && t.events == vec![Event::Print(0), Event::Print(0)])
    };
    let sc = Loaded::new(Prog::new(
        X86Sc,
        vec![(sb.clone(), sb_ge.clone())],
        sb_entries.clone(),
    ))?;
    let tso = Loaded::new(Prog::new(
        X86Tso,
        vec![(sb.clone(), sb_ge.clone())],
        sb_entries.clone(),
    ))?;
    let sc_traces = collect_traces(&Preemptive(&sc), &cfg)?;
    let tso_traces = collect_traces(&Preemptive(&tso), &cfg)?;
    println!(
        "  under x86-SC : 0/0 observable = {}",
        zero_zero(&sc_traces)
    );
    println!(
        "  under x86-TSO: 0/0 observable = {}",
        zero_zero(&tso_traces)
    );
    assert!(!zero_zero(&sc_traces) && zero_zero(&tso_traces));

    // 2. The TTAS lock: racy, yet correct for DRF clients.
    println!("\n== 2. TTAS spin lock under TSO (Fig. 10 + Lem. 16) ==");
    let (spec, spec_ge) = lock_spec("L");
    let (imp, imp_ge) = lock_impl("L");
    println!("γ_lock (CImp spec):\n{spec}");
    println!("π_lock (x86-TSO, note the unfenced release store):\n{imp}");
    let obj = SyncObject {
        spec,
        spec_ge,
        impl_asm: imp,
        impl_ge: imp_ge,
    };
    let client = AsmFunc {
        code: vec![
            Instr::Call("lock".into(), 0),
            Instr::Load(Reg::Ecx, MemArg::Global("x".into(), 0)),
            Instr::Mov(Reg::Ebx, Operand::Reg(Reg::Ecx)),
            Instr::Add(Reg::Ebx, Operand::Imm(1)),
            Instr::Store(MemArg::Global("x".into(), 0), Operand::Reg(Reg::Ebx)),
            Instr::Call("unlock".into(), 0),
            Instr::Print(Reg::Ecx),
            Instr::Mov(Reg::Eax, Operand::Imm(0)),
            Instr::Ret,
        ],
        frame_slots: 0,
        arity: 0,
    };
    let clients = AsmModule::new([("t1", client.clone()), ("t2", client)]);
    let mut client_ge = GlobalEnv::new();
    client_ge.define("x", Val::Int(0));
    let entries = vec!["t1".to_string(), "t2".to_string()];
    let report = check_drf_guarantee(&clients, &client_ge, &entries, &obj, &cfg)?;
    println!("  Safe(P_sc) = {}", report.safe_sc);
    println!("  DRF(P_sc)  = {}", report.drf_sc);
    println!(
        "  P_tso ⊑′ P_sc = {}   ({} TSO traces vs {} SC traces)",
        report.refines, report.tso_traces, report.sc_traces
    );
    assert!(report.holds());

    // 3. Without confinement the guarantee fails.
    println!("\n== 3. Unconfined races: the premise is load-bearing ==");
    let report = check_drf_guarantee(&sb, &sb_ge, &sb_entries, &obj, &ExploreCfg::default())?;
    println!("  DRF(P_sc)  = {} (the SB clients race)", report.drf_sc);
    println!("  P_tso ⊑′ P_sc = {} (TSO exhibits 0/0)", report.refines);
    assert!(!report.drf_sc && !report.refines);

    println!("\nConfined benign races are fine; unconfined races are not.");
    Ok(())
}
