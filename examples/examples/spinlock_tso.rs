//! The TTAS spin lock of Fig. 10 under x86-TSO (§7.3 of the paper):
//!
//! 1. shows the store-buffering litmus test exhibiting genuinely relaxed
//!    (non-SC) behaviour on our TSO machine;
//! 2. shows the racy lock implementation `π_lock` nevertheless refining
//!    its atomic CImp specification `γ_lock` for a DRF client — the
//!    strengthened DRF-guarantee theorem (Lem. 16);
//! 3. shows what goes wrong without confinement (the same litmus as a
//!    "client", where the guarantee's premises fail);
//! 4. runs the *static* robustness analysis of `ccc-analysis` alongside
//!    each dynamic check: SB is flagged `MayViolateSC` with the exact
//!    store→load pair as witness and repaired by `insert_fences`; the
//!    linked TTAS-lock clients are `Robust` (every acquire drains
//!    through `lock cmpxchg`), while a client peeking at shared data
//!    outside the lock is flagged — and one fence in the shared
//!    `unlock` body repairs both threads at once.
//!
//! Run with: `cargo run -p ccc-examples --example spinlock_tso`

use ccc_analysis::tso_robust::{analyze, insert_fences};
use ccc_core::lang::{Event, Prog};
use ccc_core::mem::{GlobalEnv, Val};
use ccc_core::refine::{collect_traces, ExploreCfg, Preemptive, Terminal};
use ccc_core::world::Loaded;
use ccc_machine::{AsmFunc, AsmModule, Instr, MemArg, Operand, Reg, X86Sc, X86Tso};
use ccc_sync::drf_guarantee::{check_drf_guarantee, SyncObject};
use ccc_sync::lock::{lock_impl, lock_spec};

fn sb_clients() -> (AsmModule, GlobalEnv, Vec<String>) {
    let mk = |mine: &str, theirs: &str| AsmFunc {
        code: vec![
            Instr::Store(MemArg::Global(mine.into(), 0), Operand::Imm(1)),
            Instr::Load(Reg::Ecx, MemArg::Global(theirs.into(), 0)),
            Instr::Print(Reg::Ecx),
            Instr::Mov(Reg::Eax, Operand::Imm(0)),
            Instr::Ret,
        ],
        frame_slots: 0,
        arity: 0,
    };
    let mut ge = GlobalEnv::new();
    ge.define("sbx", Val::Int(0));
    ge.define("sby", Val::Int(0));
    (
        AsmModule::new([("t1", mk("sbx", "sby")), ("t2", mk("sby", "sbx"))]),
        ge,
        vec!["t1".into(), "t2".into()],
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ExploreCfg {
        fuel: 300,
        max_states: 3_000_000,
        ..Default::default()
    };

    // 1. The SB litmus: TSO is really relaxed.
    println!("== 1. Store-buffering litmus (x := 1; read y ∥ y := 1; read x) ==");
    let (sb, sb_ge, sb_entries) = sb_clients();
    let zero_zero = |ts: &ccc_core::refine::TraceSet| {
        ts.traces
            .iter()
            .any(|t| t.end == Terminal::Done && t.events == vec![Event::Print(0), Event::Print(0)])
    };
    let sc = Loaded::new(Prog::new(
        X86Sc,
        vec![(sb.clone(), sb_ge.clone())],
        sb_entries.clone(),
    ))?;
    let tso = Loaded::new(Prog::new(
        X86Tso,
        vec![(sb.clone(), sb_ge.clone())],
        sb_entries.clone(),
    ))?;
    let sc_traces = collect_traces(&Preemptive(&sc), &cfg)?;
    let tso_traces = collect_traces(&Preemptive(&tso), &cfg)?;
    println!(
        "  under x86-SC : 0/0 observable = {}",
        zero_zero(&sc_traces)
    );
    println!(
        "  under x86-TSO: 0/0 observable = {}",
        zero_zero(&tso_traces)
    );
    assert!(!zero_zero(&sc_traces) && zero_zero(&tso_traces));

    // The static analysis sees it without running anything.
    let report = analyze(&sb, &sb_entries);
    println!("  static verdict: {report}");
    assert!(!report.is_robust());
    let fenced = insert_fences(&sb, &sb_entries);
    println!(
        "  insert_fences: {} mfence(s) at {:?}",
        fenced.inserted.len(),
        fenced
            .inserted
            .iter()
            .map(|p| format!("{}:{}", p.func, p.at))
            .collect::<Vec<_>>()
    );
    let tso_fenced = Loaded::new(Prog::new(
        X86Tso,
        vec![(fenced.module.clone(), sb_ge.clone())],
        sb_entries.clone(),
    ))?;
    let tso_fenced_traces = collect_traces(&Preemptive(&tso_fenced), &cfg)?;
    println!(
        "  fenced SB under TSO: 0/0 observable = {}  (static: {})",
        zero_zero(&tso_fenced_traces),
        if analyze(&fenced.module, &sb_entries).is_robust() {
            "Robust"
        } else {
            "MayViolateSC"
        }
    );
    assert!(!zero_zero(&tso_fenced_traces));

    // 2. The TTAS lock: racy, yet correct for DRF clients.
    println!("\n== 2. TTAS spin lock under TSO (Fig. 10 + Lem. 16) ==");
    let (spec, spec_ge) = lock_spec("L");
    let (imp, imp_ge) = lock_impl("L");
    println!("γ_lock (CImp spec):\n{spec}");
    println!("π_lock (x86-TSO, note the unfenced release store):\n{imp}");
    let obj = SyncObject {
        spec,
        spec_ge,
        impl_asm: imp,
        impl_ge: imp_ge,
    };
    let client = AsmFunc {
        code: vec![
            Instr::Call("lock".into(), 0),
            Instr::Load(Reg::Ecx, MemArg::Global("x".into(), 0)),
            Instr::Mov(Reg::Ebx, Operand::Reg(Reg::Ecx)),
            Instr::Add(Reg::Ebx, Operand::Imm(1)),
            Instr::Store(MemArg::Global("x".into(), 0), Operand::Reg(Reg::Ebx)),
            Instr::Call("unlock".into(), 0),
            Instr::Print(Reg::Ecx),
            Instr::Mov(Reg::Eax, Operand::Imm(0)),
            Instr::Ret,
        ],
        frame_slots: 0,
        arity: 0,
    };
    let clients = AsmModule::new([("t1", client.clone()), ("t2", client)]);
    let mut client_ge = GlobalEnv::new();
    client_ge.define("x", Val::Int(0));
    let entries = vec!["t1".to_string(), "t2".to_string()];
    let report = check_drf_guarantee(&clients, &client_ge, &entries, &obj, &cfg)?;
    println!("  Safe(P_sc) = {}", report.safe_sc);
    println!("  DRF(P_sc)  = {}", report.drf_sc);
    println!(
        "  P_tso ⊑′ P_sc = {}   ({} TSO traces vs {} SC traces)",
        report.refines, report.tso_traces, report.sc_traces
    );
    assert!(report.holds());

    // 3. Without confinement the guarantee fails.
    println!("\n== 3. Unconfined races: the premise is load-bearing ==");
    let report = check_drf_guarantee(&sb, &sb_ge, &sb_entries, &obj, &ExploreCfg::default())?;
    println!("  DRF(P_sc)  = {} (the SB clients race)", report.drf_sc);
    println!("  P_tso ⊑′ P_sc = {} (TSO exhibits 0/0)", report.refines);
    assert!(!report.drf_sc && !report.refines);

    // 4. Static robustness of the linked lock programs. The locked
    // client is Robust — every acquire drains the buffer through its
    // lock-prefixed cmpxchg, so the unfenced release store never gets
    // to overtake a later shared load (Owens' observation that
    // TAS-lock-synchronized programs are TSO-robust). Exploration
    // confirms: every SC trace is a TSO trace and every TSO trace is
    // SC-explainable up to divergence. (Strict trace equality fails for
    // spin-loop programs for a reason that has nothing to do with
    // reordering: under an unfair schedule the releasing thread can be
    // starved with its release store still buffered while the other
    // spins — the very artifact for which §7.3 of the paper makes its
    // refinement `⊑′` termination-insensitive. No fence placement
    // helps a thread that never runs.) A client that *peeks* at shared
    // data outside the lock, by contrast, is flagged: the unfenced
    // release lets the critical-section store be delayed past the
    // unguarded load. The verdict is about SC-equality, not
    // correctness — Lem. 16 certifies the racy lock regardless.
    println!("\n== 4. Static robustness of the linked lock programs ==");
    let linked = clients.link(&obj.impl_asm).expect("no symbol clashes");
    let linked_ge = ccc_core::mem::GlobalEnv::link([&client_ge, &obj.impl_ge]).expect("envs agree");
    let report = analyze(&linked, &entries);
    println!(
        "  one critical section per thread:  {}",
        if report.is_robust() {
            "Robust"
        } else {
            "MayViolateSC"
        }
    );
    assert!(report.is_robust());
    let sc = Loaded::new(Prog::new(
        X86Sc,
        vec![(linked.clone(), linked_ge.clone())],
        entries.clone(),
    ))?;
    let tso = Loaded::new(Prog::new(
        X86Tso,
        vec![(linked.clone(), linked_ge.clone())],
        entries.clone(),
    ))?;
    let sc_t = collect_traces(&Preemptive(&sc), &cfg)?;
    let tso_t = collect_traces(&Preemptive(&tso), &cfg)?;
    let sc_in_tso = ccc_core::refine::trace_refines(&sc_t, &tso_t);
    let tso_in_sc = ccc_core::refine::trace_refines_nonterm(&tso_t, &sc_t);
    println!("  exploration agrees: SC ⊆ TSO = {sc_in_tso}, TSO ⊑′ SC = {tso_in_sc}");
    assert!(sc_in_tso && tso_in_sc);

    // Two critical sections per thread: still robust — each re-acquire
    // drains through `lock cmpxchg` before any shared load.
    let two_rounds = AsmFunc {
        code: vec![
            Instr::Call("lock".into(), 0),
            Instr::Store(MemArg::Global("x".into(), 0), Operand::Imm(1)),
            Instr::Call("unlock".into(), 0),
            Instr::Call("lock".into(), 0),
            Instr::Load(Reg::Ecx, MemArg::Global("x".into(), 0)),
            Instr::Call("unlock".into(), 0),
            Instr::Mov(Reg::Eax, Operand::Imm(0)),
            Instr::Ret,
        ],
        frame_slots: 0,
        arity: 0,
    };
    let clients2 = AsmModule::new([("t1", two_rounds.clone()), ("t2", two_rounds)]);
    let linked2 = clients2.link(&obj.impl_asm).expect("no symbol clashes");
    let report2 = analyze(&linked2, &entries);
    println!(
        "  two critical sections per thread: {} (every acquire drains)",
        if report2.is_robust() {
            "Robust"
        } else {
            "MayViolateSC"
        }
    );
    assert!(report2.is_robust());

    // Peeking outside the lock: t1 stores x under the lock then reads y
    // unguarded; t2 symmetrically. This is SB with an unfenced release
    // in between — flagged.
    let peek = |mine: &str, theirs: &str| AsmFunc {
        code: vec![
            Instr::Call("lock".into(), 0),
            Instr::Store(MemArg::Global(mine.into(), 0), Operand::Imm(1)),
            Instr::Call("unlock".into(), 0),
            Instr::Load(Reg::Ecx, MemArg::Global(theirs.into(), 0)),
            Instr::Print(Reg::Ecx),
            Instr::Mov(Reg::Eax, Operand::Imm(0)),
            Instr::Ret,
        ],
        frame_slots: 0,
        arity: 0,
    };
    let clients3 = AsmModule::new([("t1", peek("x", "y")), ("t2", peek("y", "x"))]);
    let linked3 = clients3.link(&obj.impl_asm).expect("no symbol clashes");
    let report3 = analyze(&linked3, &entries);
    println!(
        "  peek outside the lock:            {} ({} reorderable pair(s), {} cycle(s))",
        if report3.is_robust() {
            "Robust"
        } else {
            "MayViolateSC"
        },
        report3.pairs.len(),
        report3.witnesses().len()
    );
    if let Some(w) = report3.witnesses().first() {
        println!("  witness: {}", w.pair);
    }
    assert!(!report3.is_robust());
    let fenced3 = insert_fences(&linked3, &entries);
    println!(
        "  insert_fences repairs it with {} mfence(s); re-analysis: {}",
        fenced3.inserted.len(),
        if analyze(&fenced3.module, &entries).is_robust() {
            "Robust"
        } else {
            "MayViolateSC"
        }
    );
    assert!(analyze(&fenced3.module, &entries).is_robust());
    println!("  non-robust ≠ incorrect: Lem. 16 certifies the lock either way.");

    println!("\nConfined benign races are fine; unconfined races are not.");
    Ok(())
}
