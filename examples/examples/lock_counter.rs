//! The lock-synchronized counter of the paper's example (2.2) and
//! Fig. 10(c): concurrent Clight threads increment a shared counter
//! inside `lock()`/`unlock()` critical sections provided by the CImp
//! object `γ_lock`, are compiled with CompCert, and the compiled
//! program is validated against the source.
//!
//! Run with: `cargo run -p ccc-examples --example lock_counter`

use ccc_cimp::CImpLang;
use ccc_clight::ClightLang;
use ccc_compiler::driver::compile;
use ccc_core::framework::validate_fig2;
use ccc_core::lang::{ModuleDecl, Prog, Sum, SumLang};
use ccc_core::race::{check_drf, check_npdrf};
use ccc_core::refine::ExploreCfg;
use ccc_core::world::Loaded;
use ccc_machine::X86Sc;
use ccc_sync::lock::{counter_client, lock_spec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Example (2.2): lock-synchronized counter ==\n");

    // Client: Fig. 10(c)'s inc(), two threads.
    let (client, client_ge, entries) = counter_client("x", 2);
    // Object: Fig. 10(a)'s CImp lock specification.
    let (lock, lock_ge) = lock_spec("L");

    // The source program P: Clight clients + CImp object, cross-language.
    type SrcLang = SumLang<ClightLang, CImpLang>;
    let src: Prog<SrcLang> = Prog {
        lang: SumLang(ClightLang, CImpLang),
        modules: vec![
            ModuleDecl {
                code: Sum::L(client.clone()),
                ge: client_ge.clone(),
            },
            ModuleDecl {
                code: Sum::R(lock.clone()),
                ge: lock_ge.clone(),
            },
        ],
        entries: entries.clone(),
    };
    let src = Loaded::new(src)?;

    let cfg = ExploreCfg {
        fuel: 260,
        ..Default::default()
    };
    let drf = check_drf(&src, &cfg)?;
    let npdrf = check_npdrf(&src, &cfg)?;
    println!(
        "DRF(P)   = {}  ({} preemptive worlds explored)",
        drf.is_drf(),
        drf.states
    );
    println!(
        "NPDRF(P) = {}  ({} non-preemptive worlds explored)",
        npdrf.is_drf(),
        npdrf.states
    );
    assert!(drf.is_drf() && npdrf.is_drf());

    // Compile the *client* module only (separate compilation!); the
    // object goes through IdTrans.
    let client_asm = compile(&client)?;
    println!("\nCompiled client (x86):\n{}", client_asm);
    type TgtLang = SumLang<X86Sc, CImpLang>;
    let tgt: Prog<TgtLang> = Prog {
        lang: SumLang(X86Sc, CImpLang),
        modules: vec![
            ModuleDecl {
                code: Sum::L(client_asm),
                ge: client_ge,
            },
            ModuleDecl {
                code: Sum::R(lock),
                ge: lock_ge,
            },
        ],
        entries,
    };
    let tgt = Loaded::new(tgt)?;

    // Validate the whole Fig. 2 framework on this program pair.
    let report = validate_fig2(&src, &tgt, &cfg)?;
    println!("Fig. 2 validation: all_hold = {}", report.all_hold());
    if !report.all_hold() {
        println!("  failures: {:?}", report.failures());
    }
    assert!(report.all_hold());
    println!(
        "\nEvery interleaving prints 0 then 1 (each thread observes the\n\
         counter before its own increment): critical sections serialize."
    );
    Ok(())
}
