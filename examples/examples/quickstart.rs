//! Quickstart: compile a concurrent Clight program with the full
//! CompCert-shaped pipeline and check, end to end, that the machine
//! program preserves its behaviour — the headline capability of
//! CASCompCert (Thm. 14 of the paper).
//!
//! Run with: `cargo run -p ccc-examples --example quickstart`

use ccc_clight::ast::{Expr as E, Function, Stmt};
use ccc_clight::{ClightLang, ClightModule};
use ccc_compiler::driver::{compile_with_artifacts, PASS_NAMES};
use ccc_compiler::verif::{verify_end_to_end, verify_passes};
use ccc_core::framework::validate_fig2;
use ccc_core::lang::Prog;
use ccc_core::mem::{GlobalEnv, Val};
use ccc_core::race::check_drf;
use ccc_core::refine::ExploreCfg;
use ccc_core::world::Loaded;
use ccc_machine::X86Sc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-thread Clight program over a shared global `x`. Each thread
    // works on private data, then publishes through `x` — but carefully,
    // each thread writes a distinct global, so the program is DRF even
    // without locks (locked clients are in the lock_counter example).
    let mut ge = GlobalEnv::new();
    ge.define("x", Val::Int(0));
    ge.define("y", Val::Int(0));
    let worker = |mine: &str, start: i64| {
        Function::simple(Stmt::seq([
            Stmt::Set("a".into(), E::Const(start)),
            Stmt::Set("a".into(), E::add(E::temp("a"), E::Const(1))),
            Stmt::Assign(E::var(mine), E::temp("a")),
            Stmt::Print(E::var(mine)),
            Stmt::Return(None),
        ]))
    };
    let module = ClightModule::new([("t1", worker("x", 10)), ("t2", worker("y", 20))]);

    println!("== CASCompCert quickstart ==\n");
    println!("Compiling a 2-thread Clight module through all passes:");
    let arts = compile_with_artifacts(&module)?;
    for name in PASS_NAMES {
        println!("  - {name}");
    }
    println!("\nGenerated x86:\n{}", arts.asm);

    // Per-pass validation against the footprint-preserving simulation
    // (the executable Correct(CompCert), Lem. 13).
    println!("Per-pass simulation checks (Defs. 2-3):");
    for (entry, _) in module.funcs.iter() {
        for v in verify_passes(&arts, &ge, entry) {
            println!(
                "  {:<18} {:<4} {}",
                v.pass,
                entry,
                if v.ok() { "OK" } else { "FAILED" }
            );
            assert!(v.ok());
        }
    }
    let e2e = verify_end_to_end(&arts, &ge, "t1")?;
    println!(
        "End-to-end Clight 4 x86 simulation: OK ({} switch points, {} src / {} tgt steps)\n",
        e2e.switch_points, e2e.src_steps, e2e.tgt_steps
    );

    // Whole-program validation of the Fig. 2 framework: DRF source,
    // equivalences between preemptive and non-preemptive semantics,
    // DRF preservation, and the final trace equivalence.
    let entries = ["t1", "t2"];
    let src = Loaded::new(Prog::new(ClightLang, vec![(module, ge.clone())], entries))?;
    let tgt = Loaded::new(Prog::new(X86Sc, vec![(arts.asm.clone(), ge)], entries))?;
    let cfg = ExploreCfg::default();
    println!("DRF(source) = {}", check_drf(&src, &cfg)?.is_drf());
    let report = validate_fig2(&src, &tgt, &cfg)?;
    println!("Fig. 2 framework validation:");
    println!(
        "  DRF(src) {}   NPDRF(src) {}",
        report.drf_src, report.npdrf_src
    );
    println!(
        "  DRF(tgt) {}   NPDRF(tgt) {}",
        report.drf_tgt, report.npdrf_tgt
    );
    println!("  src preemptive ≈ non-preemptive: {}", report.src_np_equiv);
    println!("  tgt preemptive ≈ non-preemptive: {}", report.tgt_np_equiv);
    println!("  target ⊑ source (np): {}", report.np_refines);
    println!("  preemptive target ≈ source: {}", report.preemptive_equiv);
    assert!(report.all_hold(), "failures: {:?}", report.failures());
    println!("\nAll arrows of Fig. 2 validated — compilation preserved the");
    println!("concurrent semantics of the source.");
    Ok(())
}
