//! Data-race detection by footprint prediction (§5, Fig. 9 of the
//! paper): runs the DRF and NPDRF checkers over a small gallery of
//! racy and race-free concurrent programs and shows the two notions
//! agreeing (steps ⑥/⑧ of Fig. 2), including the race *witnesses* the
//! predictor finds.
//!
//! A second gallery pits the *static* lockset analysis of
//! `ccc-analysis` against the exploration: generated Clight clients
//! sharing globals through the CImp lock object, with and without the
//! lock calls, verdicts side by side — plus the interval-sharpened
//! variant dropping a certified false positive (a write hidden in a
//! branch the abstract interpretation proves dead).
//!
//! A third gallery does the same for the *TSO robustness* analysis:
//! each litmus program of `ccc_machine::litmus` gets its static
//! `Robust`/`MayViolateSC` verdict next to the machine's actual
//! TSO-observability, plus the number of fences `insert_fences` needs
//! to repair the non-robust ones.
//!
//! Run with: `cargo run -p ccc-examples --example race_detector`

use ccc_analysis::tso_robust::{analyze, insert_fences};
use ccc_analysis::{
    check_static_race, check_static_race_sharp, infer_lock_model, LockModel, StaticVerdict,
};
use ccc_cimp::CImpLang;
use ccc_clight::gen::gen_concurrent_client;
use ccc_clight::ClightLang;
use ccc_core::lang::{ModuleDecl, Prog, Sum, SumLang};
use ccc_core::mem::{GlobalEnv, Val};
use ccc_core::race::{check_drf, check_npdrf};
use ccc_core::refine::{count_states, ExploreCfg, NonPreemptive, Preemptive};
use ccc_core::toy::{toy_globals, toy_module, ToyInstr as I, ToyLang};
use ccc_core::world::Loaded;
use ccc_sync::lock::lock_spec;

fn program(
    name: &str,
    funcs: &[(&str, Vec<I>)],
    globals: &[(&str, i64)],
) -> (String, Loaded<ToyLang>) {
    let (m, _) = toy_module(funcs, &[]);
    let entries: Vec<String> = funcs.iter().map(|(n, _)| n.to_string()).collect();
    (
        name.to_string(),
        Loaded::new(Prog::new(ToyLang, vec![(m, toy_globals(globals))], entries)).expect("link"),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ExploreCfg::default();

    let unsync_write = vec![I::Const(1), I::StoreG("x".into()), I::Ret(0)];
    let atomic_inc = vec![
        I::EntAtom,
        I::LoadG("x".into()),
        I::Add(1),
        I::StoreG("x".into()),
        I::ExtAtom,
        I::Ret(0),
    ];
    let reader = vec![I::LoadG("x".into()), I::Ret(0)];
    let local_work = vec![
        I::AllocLocal,
        I::Const(5),
        I::StoreL(0),
        I::LoadL(0),
        I::RetAcc,
    ];
    let atomic_writer = vec![
        I::EntAtom,
        I::Const(1),
        I::StoreG("x".into()),
        I::ExtAtom,
        I::Ret(0),
    ];

    let gallery = [
        program(
            "unsynchronized writers (racy)",
            &[("a", unsync_write.clone()), ("b", unsync_write.clone())],
            &[("x", 0)],
        ),
        program(
            "write vs read (racy)",
            &[("w", unsync_write.clone()), ("r", reader.clone())],
            &[("x", 0)],
        ),
        program(
            "atomic vs plain access (racy)",
            &[("w", atomic_writer), ("r", reader.clone())],
            &[("x", 0)],
        ),
        program(
            "atomic increments (race-free)",
            &[("a", atomic_inc.clone()), ("b", atomic_inc.clone())],
            &[("x", 0)],
        ),
        program(
            "read/read sharing (race-free)",
            &[("a", reader.clone()), ("b", reader)],
            &[("x", 0)],
        ),
        program(
            "thread-local work (race-free)",
            &[("a", local_work.clone()), ("b", local_work)],
            &[],
        ),
    ];

    println!(
        "{:<38} {:>6} {:>7} {:>9} {:>9}",
        "program", "DRF", "NPDRF", "P-states", "NP-states"
    );
    println!("{}", "-".repeat(74));
    for (name, loaded) in &gallery {
        let drf = check_drf(loaded, &cfg)?;
        let npdrf = check_npdrf(loaded, &cfg)?;
        let p = count_states(&Preemptive(loaded), &cfg)?;
        let np = count_states(&NonPreemptive(loaded), &cfg)?;
        println!(
            "{:<38} {:>6} {:>7} {:>9} {:>9}",
            name,
            drf.is_drf(),
            npdrf.is_drf(),
            p.states,
            np.states
        );
        assert_eq!(drf.is_drf(), npdrf.is_drf(), "DRF ⟺ NPDRF violated");
        if let Some(w) = &drf.race {
            println!(
                "        witness: thread {} {:?} ⌢ thread {} {:?}",
                w.t1, w.fp1.fp, w.t2, w.fp2.fp
            );
        }
    }
    println!("\nDRF and NPDRF agree on every program (steps 6/8 of Fig. 2),");
    println!("and the non-preemptive state space is consistently smaller.");

    println!("\nStatic lockset analysis vs exploration (Clight clients + CImp lock):\n");
    println!(
        "{:<34} {:>10} {:>10} {:>9}",
        "client", "static", "explored", "states"
    );
    println!("{}", "-".repeat(67));
    for (desc, racy) in [
        ("2 threads, lock() around `s`", false),
        ("2 threads, no locking", true),
    ] {
        let (client, ge, entries) = gen_concurrent_client(0, 2, &["s0", "s1"], racy);
        let (lock, lock_ge) = lock_spec("L");
        let model = infer_lock_model(&lock);
        let report = check_static_race(&client, &entries, &model);
        let loaded = Loaded::new(Prog {
            lang: SumLang(ClightLang, CImpLang),
            modules: vec![
                ModuleDecl {
                    code: Sum::L(client),
                    ge,
                },
                ModuleDecl {
                    code: Sum::R(lock),
                    ge: lock_ge,
                },
            ],
            entries,
        })
        .expect("client and lock object link");
        let drf = check_drf(&loaded, &cfg)?;
        println!(
            "{:<34} {:>10} {:>10} {:>9}",
            desc,
            if report.is_drf() {
                "StaticDrf"
            } else {
                "MayRace"
            },
            if drf.is_drf() { "drf" } else { "race" },
            drf.states
        );
        assert_eq!(report.is_drf(), drf.is_drf(), "static and dynamic disagree");
        if let StaticVerdict::MayRace(pairs) = &report.verdict {
            let p = &pairs[0];
            println!(
                "        static witness: {} {} `{}` in {}  ⌢  {} {} `{}` in {}",
                p.first.thread,
                if p.first.write { "writes" } else { "reads" },
                p.first.region,
                p.first.func,
                p.second.thread,
                if p.second.write { "writes" } else { "reads" },
                p.second.region,
                p.second.func,
            );
        }
    }
    println!("\nThe lockset analysis reaches the exploration's verdict without");
    println!("enumerating a single interleaving.");

    // The same clients through the compositional rely-guarantee
    // certifier: each module gets a serializable certificate (guarantee
    // = its own action summaries, rely = the complement), the untrusted
    // inference is re-checked by the trusted checker, and link-time
    // compatibility is a pairwise guarantee-vs-rely check — the static
    // analogue of the paper's rely-guarantee side conditions.
    println!("\nRely-guarantee certificates (ccc-analysis::rg_cert):\n");
    {
        use ccc_analysis::{
            infer_rg_cert, rg_cert_from_json, rg_cert_to_json, rg_cert_violation,
            rg_incompatibilities,
        };
        let (lock, _lock_ge) = lock_spec("L");
        let model = infer_lock_model(&lock);
        println!(
            "{:<34} {:>13} {:>8} {:>6} {:>9}",
            "module", "verdict", "actions", "rely", "checker"
        );
        println!("{}", "-".repeat(75));
        let mut certs = Vec::new();
        for (desc, name, racy) in [
            ("2 threads, lock() around `s`", "locked", false),
            ("2 threads, no locking", "racy", true),
        ] {
            let (client, _ge, entries) = gen_concurrent_client(0, 2, &["s0", "s1"], racy);
            let cert = infer_rg_cert(name, &client, &entries, &model);
            let admitted = rg_cert_violation(&cert, &client, &entries, &model).is_none();
            assert!(admitted, "fresh certificate must pass its own checker");
            // Certificates survive the wire format the witness cache
            // stores them in.
            let back = rg_cert_from_json(&rg_cert_to_json(&cert)).expect("cert round-trips");
            assert_eq!(back.module_hash, cert.module_hash);
            println!(
                "{:<34} {:>13} {:>8} {:>6} {:>9}",
                desc,
                if cert.is_stable() {
                    "Stable"
                } else {
                    "MayInterfere"
                },
                cert.guarantee.len(),
                cert.rely.len(),
                "admitted"
            );
            certs.push(cert);
        }
        assert!(certs[0].is_stable() && !certs[1].is_stable());

        // Link-time compatibility: a second locked module over disjoint
        // globals composes with the first (every guarantee falls in the
        // other's rely); the racy module does not.
        let (other, _ge2, entries2) = gen_concurrent_client(1, 2, &["t0", "t1"], false);
        let other_cert = infer_rg_cert("locked2", &other, &entries2, &model);
        let compat = rg_incompatibilities(&[certs[0].clone(), other_cert.clone()]);
        let incompat = rg_incompatibilities(&[certs[0].clone(), certs[1].clone()]);
        println!(
            "\n  link [locked ∥ locked2]: {}",
            if compat.is_empty() {
                "RgCompatible — certified composition, no exploration"
            } else {
                "INCOMPATIBLE"
            }
        );
        println!(
            "  link [locked ∥ racy]:    {} obligation failure(s), e.g.",
            incompat.len()
        );
        if let Some(d) = incompat.first() {
            println!("    {d}");
        }
        assert!(compat.is_empty() && !incompat.is_empty());
    }
    println!("\n  The certificate is the module's whole interference interface:");
    println!("  linking re-checks certificates, never re-analyses module bodies.");

    // The interval-sharpened variant: a write hidden in a branch the
    // abstract interpretation proves dead is a false positive of the
    // plain lockset analysis — the sharp walker never records it, the
    // escape analysis certifies the global thread-local, and the
    // exhaustive exploration confirms the program is race-free.
    println!("\nInterval-sharpened lockset (ccc-analysis::absint):\n");
    {
        use ccc_clight::ast::{Binop, Expr, Function, Stmt};
        use ccc_clight::ClightModule;

        let mut ge = GlobalEnv::new();
        ge.define("s", Val::Int(0));
        let t0 = Function::simple(Stmt::Assign(Expr::var("s"), Expr::Const(1)));
        let t1 = Function::simple(Stmt::seq([
            Stmt::Set("t".into(), Expr::Const(3)),
            Stmt::If(
                Expr::bin(Binop::Lt, Expr::temp("t"), Expr::Const(2)),
                Box::new(Stmt::Assign(Expr::var("s"), Expr::Const(2))),
                Box::new(Stmt::Skip),
            ),
        ]));
        let client = ClightModule::new([("t0", t0), ("t1", t1)]);
        let entries = vec!["t0".to_string(), "t1".to_string()];
        let model = LockModel::default();
        let base = check_static_race(&client, &entries, &model);
        let sharp = check_static_race_sharp(&client, &entries, &model);
        let loaded =
            Loaded::new(Prog::new(ClightLang, vec![(client, ge)], entries)).expect("client links");
        let drf = check_drf(&loaded, &cfg)?;
        println!("  t1: t = 3; if (t < 2) {{ s = 2; }}   // branch is interval-dead");
        println!(
            "  baseline lockset: {:<9}  sharp: {:<9}  explored: {} ({} states)",
            if base.is_drf() {
                "StaticDrf"
            } else {
                "MayRace"
            },
            if sharp.is_drf() {
                "StaticDrf"
            } else {
                "MayRace"
            },
            if drf.is_drf() { "drf" } else { "race" },
            drf.states
        );
        println!(
            "  pruned pairs: {}   escape class of `s`: {:?}",
            sharp.pruned.len(),
            sharp.escape.globals.get("s").expect("`s` classified")
        );
        assert!(!base.is_drf() && sharp.is_drf() && drf.is_drf());
        println!("\n  The pruned pair is certified, not guessed: the branch is proved");
        println!("  dead by the same interval facts the transval ValueRange");
        println!("  obligations re-check, and the verdict matches the exploration.");
    }

    println!("\nStatic TSO-robustness verdicts on the litmus corpus:\n");
    println!(
        "{:<11} {:<13} {:>5} {:>7} {:>7} | {:>8}   witness",
        "litmus", "static", "pairs", "cycles", "fences", "tso-weak"
    );
    println!("{}", "-".repeat(86));
    for l in ccc_machine::litmus::corpus() {
        let report = analyze(&l.module, &l.entries);
        let fenced = insert_fences(&l.module, &l.entries);
        println!(
            "{:<11} {:<13} {:>5} {:>7} {:>7} | {:>8}   {}",
            l.name,
            if report.is_robust() {
                "Robust"
            } else {
                "MayViolateSC"
            },
            report.pairs.len(),
            report.witnesses().len(),
            fenced.inserted.len(),
            l.tso_observable,
            report
                .witnesses()
                .first()
                .map(|w| w.pair.to_string())
                .unwrap_or_else(|| "—".to_string()),
        );
        // The static verdict coincides with the machine's observability
        // on every corpus program, and fencing always restores
        // robustness.
        assert_eq!(report.is_robust(), !l.tso_observable, "{}", l.name);
        assert!(
            analyze(&fenced.module, &l.entries).is_robust(),
            "{}",
            l.name
        );
    }
    println!("\nThe robustness analysis flags exactly the TSO-observable tests (SB, R)");
    println!("and repairs them with minimal fences — no interleaving enumerated here");
    println!("either; see the `tso_robustness` bench for the measured speedup.");
    Ok(())
}
