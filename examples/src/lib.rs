//! Shared helpers for the example binaries (see the `examples/` files).
